//! Dynamic Offcode loading strategies.
//!
//! Paper §4.2 weighs two designs and HYDRA supports both:
//!
//! 1. **Host-side linking** — the host calls the device's
//!    `AllocateOffcodeMemory`, links the object at the returned address,
//!    and transfers a ready image. Cheap for the device, all link work on
//!    the host.
//! 2. **Device-side loading** — the host ships the relocatable object
//!    as-is and the device's loader (itself a pseudo-Offcode) performs the
//!    link. Costs device cycles and extra device memory for the object
//!    file and symbol tables.
//!
//! Both paths produce the same [`LinkedImage`]; [`LoadPlan`] records where
//! the work landed so the `loader_ablation` bench can compare them.

use crate::linker::{ExportTable, LinkError, LinkedImage, Linker};
use crate::object::HofObject;

/// A bump allocator for a device's Offcode memory region, implementing
/// the `AllocateOffcodeMemory` interface the device loader exports.
///
/// # Examples
///
/// ```
/// use hydra_link::loader::DeviceMemoryAllocator;
///
/// let mut alloc = DeviceMemoryAllocator::new(0x1_0000, 64 * 1024);
/// let base = alloc.allocate(4096).unwrap();
/// assert_eq!(base, 0x1_0000);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceMemoryAllocator {
    base: u64,
    capacity: u64,
    used: u64,
}

/// Error when a device cannot satisfy an Offcode memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

impl DeviceMemoryAllocator {
    /// Creates an allocator over `[base, base + capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        DeviceMemoryAllocator {
            base,
            capacity,
            used: 0,
        }
    }

    /// Bytes not yet allocated.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Bytes handed out.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Allocates `size` bytes (16-byte aligned), returning the base
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfDeviceMemory`] when the region is exhausted.
    pub fn allocate(&mut self, size: u64) -> Result<u64, OutOfDeviceMemory> {
        let aligned = size.div_ceil(16) * 16;
        if aligned > self.available() {
            return Err(OutOfDeviceMemory {
                requested: size,
                available: self.available(),
            });
        }
        let addr = self.base + self.used;
        self.used += aligned;
        Ok(addr)
    }

    /// Releases everything (device reset / Offcode teardown).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

/// Which strategy loaded the Offcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadStrategy {
    /// Link on the host, ship the finished image.
    HostSideLink,
    /// Ship the object file, link on the device.
    DeviceSideLink,
}

/// Cost accounting of a completed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPlan {
    /// Strategy used.
    pub strategy: LoadStrategy,
    /// Host CPU work, in abstract link-units (relocations processed plus
    /// bytes laid out; convert to cycles with the host's per-unit cost).
    pub host_work_units: u64,
    /// Device CPU work in the same units.
    pub device_work_units: u64,
    /// Bytes that crossed the bus.
    pub transfer_bytes: u64,
    /// Device memory consumed (image + any transient object storage).
    pub device_memory_bytes: u64,
    /// Relocations the linker patched (wherever the link ran).
    pub relocations_applied: u64,
}

fn link_work_units(objects: &[HofObject]) -> u64 {
    let relocs = relocation_count(objects);
    let syms: u64 = objects.iter().map(|o| o.symbols.len() as u64).sum();
    let bytes: u64 = objects.iter().map(|o| u64::from(o.load_size())).sum();
    // Weights: symbols require table insertion/lookup, relocations a patch,
    // layout a copy per byte (dominated by memcpy throughput).
    syms * 50 + relocs * 20 + bytes / 8
}

fn relocation_count(objects: &[HofObject]) -> u64 {
    objects.iter().map(|o| o.relocations.len() as u64).sum()
}

/// Loads an Offcode using host-side linking.
///
/// # Errors
///
/// Fails if the device is out of memory or the link fails.
pub fn load_host_side(
    objects: &[HofObject],
    allocator: &mut DeviceMemoryAllocator,
    exports: &ExportTable,
) -> Result<(LinkedImage, LoadPlan), LoadError> {
    let total: u64 = objects.iter().map(|o| u64::from(o.load_size())).sum();
    // Alignment padding between objects is bounded by 16 per object.
    let base = allocator.allocate(total + 16 * objects.len() as u64)?;
    let image = Linker::new().link(objects, base, exports)?;
    let plan = LoadPlan {
        strategy: LoadStrategy::HostSideLink,
        host_work_units: link_work_units(objects),
        device_work_units: image.bytes.len() as u64 / 64, // just the copy-in
        transfer_bytes: image.bytes.len() as u64,
        device_memory_bytes: image.memory_size,
        relocations_applied: relocation_count(objects),
    };
    Ok((image, plan))
}

/// Loads an Offcode by shipping the object files and linking on the
/// device.
///
/// # Errors
///
/// Fails if the device is out of memory or the link fails.
pub fn load_device_side(
    objects: &[HofObject],
    allocator: &mut DeviceMemoryAllocator,
    exports: &ExportTable,
) -> Result<(LinkedImage, LoadPlan), LoadError> {
    // The device must hold the encoded objects *and* the final image.
    let encoded: u64 = objects.iter().map(|o| o.encode().len() as u64).sum();
    let total: u64 = objects.iter().map(|o| u64::from(o.load_size())).sum();
    let base = allocator.allocate(encoded + total + 16 * objects.len() as u64)?;
    // The image region begins after the staged object files.
    let image_base = (base + encoded).div_ceil(16) * 16;
    let image = Linker::new().link(objects, image_base, exports)?;
    let plan = LoadPlan {
        strategy: LoadStrategy::DeviceSideLink,
        host_work_units: encoded / 64, // just streaming the file out
        device_work_units: link_work_units(objects),
        transfer_bytes: encoded,
        device_memory_bytes: encoded + image.memory_size,
        relocations_applied: relocation_count(objects),
    };
    Ok((image, plan))
}

/// Errors from either loading path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Device memory exhausted.
    Memory(OutOfDeviceMemory),
    /// Link failure.
    Link(LinkError),
}

impl From<OutOfDeviceMemory> for LoadError {
    fn from(e: OutOfDeviceMemory) -> Self {
        LoadError::Memory(e)
    }
}

impl From<LinkError> for LoadError {
    fn from(e: LinkError) -> Self {
        LoadError::Link(e)
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Memory(e) => write!(f, "{e}"),
            LoadError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Section, Symbol, SymbolKind};

    fn sample_objects() -> Vec<HofObject> {
        vec![HofObject::new("m")
            .with_section(Section::text(vec![0x90; 4096]))
            .with_section(Section::bss(1024))
            .with_symbol(Symbol {
                name: "entry".into(),
                kind: SymbolKind::Defined {
                    section: 0,
                    offset: 0,
                },
            })]
    }

    #[test]
    fn allocator_alignment_and_exhaustion() {
        let mut a = DeviceMemoryAllocator::new(0x100, 64);
        assert_eq!(a.allocate(10).unwrap(), 0x100);
        assert_eq!(a.allocate(10).unwrap(), 0x110); // 16-aligned
        assert_eq!(a.available(), 32);
        let err = a.allocate(100).unwrap_err();
        assert_eq!(err.available, 32);
        a.reset();
        assert_eq!(a.available(), 64);
    }

    #[test]
    fn both_strategies_produce_equivalent_symbols() {
        let objs = sample_objects();
        let exports = ExportTable::new();
        let mut a1 = DeviceMemoryAllocator::new(0x10_000, 1 << 20);
        let mut a2 = DeviceMemoryAllocator::new(0x10_000, 1 << 20);
        let (img1, plan1) = load_host_side(&objs, &mut a1, &exports).unwrap();
        let (img2, plan2) = load_device_side(&objs, &mut a2, &exports).unwrap();
        // Same bytes modulo the base shift.
        assert_eq!(img1.bytes, img2.bytes);
        assert_eq!(plan1.strategy, LoadStrategy::HostSideLink);
        assert_eq!(plan2.strategy, LoadStrategy::DeviceSideLink);
        assert!(img1.symbol("entry").is_some());
        assert!(img2.symbol("entry").is_some());
    }

    #[test]
    fn host_side_puts_work_on_host() {
        let objs = sample_objects();
        let mut a = DeviceMemoryAllocator::new(0, 1 << 20);
        let (_, plan) = load_host_side(&objs, &mut a, &ExportTable::new()).unwrap();
        assert!(plan.host_work_units > plan.device_work_units);
    }

    #[test]
    fn device_side_puts_work_on_device() {
        let objs = sample_objects();
        let mut a = DeviceMemoryAllocator::new(0, 1 << 20);
        let (_, plan) = load_device_side(&objs, &mut a, &ExportTable::new()).unwrap();
        assert!(plan.device_work_units > plan.host_work_units);
    }

    #[test]
    fn device_side_needs_more_device_memory() {
        let objs = sample_objects();
        let mut a1 = DeviceMemoryAllocator::new(0, 1 << 20);
        let mut a2 = DeviceMemoryAllocator::new(0, 1 << 20);
        let (_, p1) = load_host_side(&objs, &mut a1, &ExportTable::new()).unwrap();
        let (_, p2) = load_device_side(&objs, &mut a2, &ExportTable::new()).unwrap();
        assert!(p2.device_memory_bytes > p1.device_memory_bytes);
    }

    #[test]
    fn transfer_bytes_differ_between_strategies() {
        // Host-side ships the materialized image (no BSS); device-side
        // ships the encoded object (with headers/symbols but also no BSS
        // contents).
        let objs = sample_objects();
        let mut a1 = DeviceMemoryAllocator::new(0, 1 << 20);
        let mut a2 = DeviceMemoryAllocator::new(0, 1 << 20);
        let (img, p1) = load_host_side(&objs, &mut a1, &ExportTable::new()).unwrap();
        let (_, p2) = load_device_side(&objs, &mut a2, &ExportTable::new()).unwrap();
        assert_eq!(p1.transfer_bytes, img.bytes.len() as u64);
        assert!(p2.transfer_bytes > 0);
    }

    #[test]
    fn oom_surfaces_as_load_error() {
        let objs = sample_objects();
        let mut tiny = DeviceMemoryAllocator::new(0, 128);
        assert!(matches!(
            load_host_side(&objs, &mut tiny, &ExportTable::new()),
            Err(LoadError::Memory(_))
        ));
    }

    #[test]
    fn link_errors_surface() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(Symbol {
                name: "missing".into(),
                kind: SymbolKind::Undefined,
            })
            .with_relocation(crate::object::Relocation {
                section: 0,
                offset: 0,
                symbol: 0,
                addend: 0,
                kind: crate::object::RelocKind::Abs64,
            });
        let mut a = DeviceMemoryAllocator::new(0, 1 << 20);
        assert!(matches!(
            load_host_side(&[obj], &mut a, &ExportTable::new()),
            Err(LoadError::Link(LinkError::Unresolved(_)))
        ));
    }
}
