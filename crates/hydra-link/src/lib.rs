//! # hydra-link — object format, linker, and dynamic Offcode loading
//!
//! The firmware-toolchain substrate of the reproduction: the HOF
//! relocatable object format with a complete binary encoding ([`object`]),
//! a host-side linker with cross-object symbol resolution, firmware-export
//! tables and Abs64/Rel32 relocations ([`linker`]), and the paper's two
//! dynamic-loading strategies with cost accounting ([`loader`]).
//!
//! Real HYDRA linked Offcodes against a programmable NIC's firmware; this
//! crate reproduces the mechanism — `AllocateOffcodeMemory`, base-adjusted
//! linking, pseudo-Offcode export tables — over simulated device memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linker;
pub mod loader;
pub mod object;

pub use linker::{ExportTable, LinkError, LinkedImage, Linker};
pub use loader::{
    load_device_side, load_host_side, DeviceMemoryAllocator, LoadError, LoadPlan, LoadStrategy,
    OutOfDeviceMemory,
};
pub use object::{
    HofError, HofObject, RelocKind, Relocation, Section, SectionKind, Symbol, SymbolKind,
};
