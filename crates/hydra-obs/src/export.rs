//! Exporters over a frozen [`MetricsSnapshot`].
//!
//! The flight recorder's event chains are most useful on a timeline. This
//! module renders them in the **Chrome trace-event format** — the JSON
//! that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly:
//!
//! - every trace event becomes a complete (`"ph":"X"`) slice whose `ts`
//!   is the event's **simulation time in microseconds** (exact integer
//!   arithmetic, rendered as `micros.frac`),
//! - the **device id is the "pid"** (0 = host), so each device gets its
//!   own process track and a cross-device request visibly migrates
//!   between tracks,
//! - the trace id is the "tid", giving each logical request its own row,
//! - flow events (`"ph":"s"/"t"/"f"`, id = trace id) stitch the slices of
//!   one trace into a connected arrow chain across devices.
//!
//! The output is byte-identical across identical runs: events are emitted
//! in record order, device metadata in sorted order, and every number is
//! produced by integer arithmetic.

use std::collections::BTreeSet;

use crate::snapshot::{MetricsSnapshot, TraceEventSample};

/// The Perfetto process a telemetry track attaches to: labels of the
/// form `device-N` map to that device's pid, everything else (including
/// `host`) to the host's pid 0 — so counter tracks land on the same
/// process rows as the device's trace slices.
fn track_pid(label: &str) -> u64 {
    label
        .strip_prefix("device-")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

fn track_name(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// Duration charged to a slice when the event is the last of its trace or
/// its successor shares the same instant (µs) — keeps zero-width slices
/// visible in the viewer.
const MIN_SLICE_NANOS: u64 = 1_000;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nanoseconds rendered as fractional microseconds (`"12.345"`), the
/// trace-event `ts`/`dur` unit, via pure integer arithmetic.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn process_name(device: u64) -> String {
    if device == 0 {
        "host".to_owned()
    } else {
        format!("device-{device}")
    }
}

/// The slice duration for event `i`: up to the next event on the same
/// trace, floored at [`MIN_SLICE_NANOS`].
fn slice_dur(events: &[TraceEventSample], i: usize) -> u64 {
    let e = &events[i];
    events[i + 1..]
        .iter()
        .find(|n| n.trace == e.trace)
        .map_or(0, |n| n.at_nanos.saturating_sub(e.at_nanos))
        .max(MIN_SLICE_NANOS)
}

/// Renders the snapshot's flight-recorder events as Chrome trace-event
/// JSON (loadable in `chrome://tracing` or Perfetto).
///
/// # Examples
///
/// ```
/// use hydra_obs::{export::chrome_trace, Recorder};
/// use hydra_sim::time::SimTime;
///
/// let rec = Recorder::new();
/// let ctx = rec.trace_begin("channel.send", "dma", 0, SimTime::ZERO, 64);
/// let ctx = rec.trace_hop(ctx, "provider.ring", "dma", 1, SimTime::from_micros(3), 64);
/// rec.trace_recv(ctx, "channel.recv", "dma", 1, SimTime::from_micros(5), 64);
/// let json = chrome_trace(&rec.snapshot());
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace(snapshot: &MetricsSnapshot) -> String {
    let events = &snapshot.events;
    let mut out = String::with_capacity(256 + events.len() * 192);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"events_dropped\":{},\"source\":\"hydra-obs flight recorder\"",
        snapshot.events_dropped
    ));
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, first: &mut bool| -> String {
        let sep = if *first { "" } else { "," };
        *first = false;
        format!("{sep}{s}")
    };

    // Process-name metadata, one per device, sorted for stability. The
    // telemetry windows' counter tracks attach to device processes too,
    // so their pids also need naming.
    let mut devices: BTreeSet<u64> = events.iter().map(|e| e.device).collect();
    for w in &snapshot.windows {
        devices.extend(w.counters.iter().map(|t| track_pid(&t.label)));
        devices.extend(w.levels.iter().map(|l| track_pid(&l.label)));
    }
    let mut body = String::new();
    for d in devices {
        body.push_str(&push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{d},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                json_str(&process_name(d))
            ),
            &mut first,
        ));
    }

    // Slices + flows, in record order. The first event of a trace opens
    // the flow ("s"), the last closes it ("f"), middles step ("t").
    for (i, e) in events.iter().enumerate() {
        let dur = slice_dur(events, i);
        let parent = match e.parent {
            Some(p) => p.to_string(),
            None => "null".to_owned(),
        };
        body.push_str(&push(
            format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace\":{},\"event\":{},\"parent\":{},\"label\":{},\"bytes\":{}}}}}",
                json_str(e.name),
                json_str(e.kind),
                micros(e.at_nanos),
                micros(dur),
                e.device,
                e.trace,
                e.trace,
                e.id,
                parent,
                json_str(&e.label),
                e.bytes
            ),
            &mut first,
        ));
        let is_root = e.parent.is_none()
            || !events
                .iter()
                .any(|o| o.trace == e.trace && Some(o.id) == e.parent);
        let has_child = events[i + 1..].iter().any(|o| o.parent == Some(e.id));
        let ph = if is_root && has_child {
            "s"
        } else if has_child {
            "t"
        } else if is_root {
            // A one-event trace needs no flow arrow.
            continue;
        } else {
            "f"
        };
        let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
        body.push_str(&push(
            format!(
                "{{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}{bp}}}",
                e.trace,
                micros(e.at_nanos),
                e.device,
                e.trace
            ),
            &mut first,
        ));
    }
    // Telemetry windows as Perfetto counter tracks ("ph":"C"): one
    // sample per window at its closing edge — counter deltas as rates,
    // levels as instantaneous values. Window order then (name, label)
    // order keeps the rendering byte-stable.
    for w in &snapshot.windows {
        let ts = micros(w.end_nanos);
        for t in &w.counters {
            body.push_str(&push(
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":{},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                    json_str(&track_name(t.name, &t.label)),
                    track_pid(&t.label),
                    t.delta
                ),
                &mut first,
            ));
        }
        for l in &w.levels {
            body.push_str(&push(
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":{},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                    json_str(&track_name(l.name, &l.label)),
                    track_pid(&l.label),
                    l.value
                ),
                &mut first,
            ));
        }
    }
    out.push_str(&body);
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use hydra_sim::time::SimTime;

    fn chain() -> MetricsSnapshot {
        let rec = Recorder::new();
        let ctx = rec.trace_begin("channel.send", "dma", 0, SimTime::ZERO, 64);
        let ctx = rec.trace_hop(ctx, "provider.ring", "dma", 1, SimTime::from_micros(3), 64);
        rec.trace_recv(ctx, "channel.recv", "dma", 1, SimTime::from_micros(5), 64);
        rec.snapshot()
    }

    #[test]
    fn empty_snapshot_is_valid_and_stable() {
        let json = chrome_trace(&MetricsSnapshot::default());
        assert_eq!(
            json,
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"events_dropped\":0,\
             \"source\":\"hydra-obs flight recorder\"},\"traceEvents\":[]}"
        );
    }

    #[test]
    fn chain_renders_slices_and_flows() {
        let json = chrome_trace(&chain());
        // Two device processes, named.
        assert!(json.contains("\"args\":{\"name\":\"host\"}"));
        assert!(json.contains("\"args\":{\"name\":\"device-1\"}"));
        // Three slices with sim-time µs timestamps.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"ts\":5.000"));
        // A full flow: start, step, finish.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"t\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
    }

    #[test]
    fn identical_chains_render_byte_identical_json() {
        assert_eq!(chrome_trace(&chain()), chrome_trace(&chain()));
    }

    #[test]
    fn slice_durations_span_to_next_event_on_trace() {
        let snap = chain();
        // send at 0 -> hop at 3µs: dur 3µs; hop -> recv: 2µs; recv: floor.
        let json = chrome_trace(&snap);
        assert!(json.contains("\"dur\":3.000"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"dur\":1.000"));
    }

    #[test]
    fn windows_render_as_perfetto_counter_tracks() {
        let rec = Recorder::new();
        rec.counter_add("device.busy_ns", "device-2", 400_000);
        rec.level_set("channel.queue_depth", "figure3", 3);
        rec.sample_window(SimTime::from_millis(1));
        let json = chrome_trace(&rec.snapshot());
        // The busy track attaches to device 2's process, which gets
        // named even though no trace slice ran there.
        assert!(json.contains("\"args\":{\"name\":\"device-2\"}"));
        assert!(json.contains(
            "{\"name\":\"device.busy_ns{device-2}\",\"ph\":\"C\",\"ts\":1000.000,\
             \"pid\":2,\"tid\":0,\"args\":{\"value\":400000}}"
        ));
        assert!(json.contains(
            "{\"name\":\"channel.queue_depth{figure3}\",\"ph\":\"C\",\"ts\":1000.000,\
             \"pid\":0,\"tid\":0,\"args\":{\"value\":3}}"
        ));
        assert_eq!(chrome_trace(&rec.snapshot()), json, "byte-stable");
    }

    #[test]
    fn truncated_trace_head_does_not_emit_flow_start_twice() {
        // Simulate a ring that lost the root: the surviving head is
        // treated as the flow start.
        let rec = Recorder::new();
        rec.set_flight_capacity(2);
        let ctx = rec.trace_begin("a", "", 0, SimTime::ZERO, 0);
        let ctx = rec.trace_hop(ctx, "b", "", 1, SimTime::from_micros(1), 0);
        rec.trace_recv(ctx, "c", "", 1, SimTime::from_micros(2), 0);
        let snap = rec.snapshot();
        assert_eq!(snap.events_dropped, 1);
        let json = chrome_trace(&snap);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert!(json.contains("\"events_dropped\":1"));
    }
}
