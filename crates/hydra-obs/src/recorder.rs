//! The [`Recorder`]: a clonable handle to a metrics registry.
//!
//! Every instrumentation point in the runtime holds a clone of one
//! `Recorder`; all clones feed the same registry. The handle is cheap to
//! clone (an `Arc`) and interior-mutable, so instrumented code does not
//! need `&mut` plumbing.
//!
//! # Determinism
//!
//! Nothing in here reads the wall clock. Span timestamps are the
//! simulation instants the caller passes in, span "durations" are modeled
//! work units supplied by the caller, and all iteration for snapshots runs
//! over `BTreeMap`s so two identical executions render byte-identical
//! reports.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use hydra_sim::time::SimTime;

use crate::histogram::Histogram;
use crate::snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SpanSample, TraceEventSample,
};
use crate::timeline::{WindowLevelSample, WindowSample, WindowTrackSample};
use crate::trace::{FlightRecorder, TraceCtx};

/// Identifier of a recorded span, usable as a parent for child spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One completed span: a named step with a sim-time stamp and a modeled
/// amount of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Sequence number (record order).
    pub seq: u64,
    /// The parent span, for per-item child spans.
    pub parent: Option<SpanId>,
    /// Static span name, e.g. `"deploy.solve"`.
    pub name: &'static str,
    /// Instance label, e.g. a bind name or GUID.
    pub label: String,
    /// Simulation instant the step ran at.
    pub at: SimTime,
    /// Modeled work units attributed to the step. Simulation time does
    /// not advance inside the deployment pipeline, so spans carry work
    /// units instead of elapsed-time durations.
    pub work_units: u64,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<(&'static str, String), u64>,
    gauges: BTreeMap<(&'static str, String), u64>,
    levels: BTreeMap<(&'static str, String), u64>,
    histograms: BTreeMap<(&'static str, String), Histogram>,
    spans: Vec<SpanRecord>,
    flight: FlightRecorder,
    windows: Vec<WindowSample>,
    window_base: BTreeMap<(&'static str, String), u64>,
}

/// A clonable handle to a shared metrics registry.
///
/// # Examples
///
/// ```
/// use hydra_obs::Recorder;
/// use hydra_sim::time::SimTime;
///
/// let rec = Recorder::new();
/// rec.counter_add("demo.events", "alpha", 2);
/// rec.observe("demo.size", "alpha", 100);
/// let root = rec.span("demo.step", "run-1", SimTime::ZERO, 10);
/// rec.child_span(root, "demo.substep", "item", SimTime::ZERO, 3);
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("demo.events", "alpha"), Some(2));
/// assert_eq!(snap.spans.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<Registry>>,
}

impl Recorder {
    /// A fresh recorder with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut self.inner.lock().expect("recorder registry poisoned"))
    }

    /// Adds `delta` to the counter `name{label}`.
    pub fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        self.with(|r| {
            *r.counters.entry((name, label.to_owned())).or_insert(0) += delta;
        });
    }

    /// Increments the counter `name{label}` by one.
    pub fn counter_incr(&self, name: &'static str, label: &str) {
        self.counter_add(name, label, 1);
    }

    /// Raises the high-water gauge `name{label}` to `value` if larger.
    pub fn gauge_max(&self, name: &'static str, label: &str, value: u64) {
        self.with(|r| {
            let g = r.gauges.entry((name, label.to_owned())).or_insert(0);
            *g = (*g).max(value);
        });
    }

    /// Sets the instantaneous level track `name{label}` (queue depth,
    /// ring occupancy). Unlike [`Recorder::gauge_max`], levels move both
    /// ways; the [`Sampler`](crate::Sampler) reads them at each window's
    /// closing edge.
    pub fn level_set(&self, name: &'static str, label: &str, value: u64) {
        self.with(|r| {
            *r.levels.entry((name, label.to_owned())).or_insert(0) = value;
        });
    }

    /// Raises the level track `name{label}` by `delta`.
    pub fn level_add(&self, name: &'static str, label: &str, delta: u64) {
        self.with(|r| {
            *r.levels.entry((name, label.to_owned())).or_insert(0) += delta;
        });
    }

    /// Lowers the level track `name{label}` by `delta`, saturating at 0.
    pub fn level_sub(&self, name: &'static str, label: &str, delta: u64) {
        self.with(|r| {
            let l = r.levels.entry((name, label.to_owned())).or_insert(0);
            *l = l.saturating_sub(delta);
        });
    }

    /// Closes one telemetry window at sim instant `at`: records every
    /// counter's delta since the previous window plus the current value
    /// of every level track. Normally called by an installed
    /// [`Sampler`](crate::Sampler) tick, not by hand.
    pub fn sample_window(&self, at: SimTime) {
        self.with(|r| {
            let index = r.windows.len() as u64;
            let start_nanos = r.windows.last().map_or(0, |w| w.end_nanos);
            let mut counters = Vec::new();
            for (key, &value) in &r.counters {
                let base = r.window_base.get(key).copied().unwrap_or(0);
                if value != base {
                    counters.push(WindowTrackSample {
                        name: key.0,
                        label: key.1.clone(),
                        delta: value - base,
                        total: value,
                    });
                }
            }
            r.window_base = r.counters.clone();
            let levels = r
                .levels
                .iter()
                .map(|(&(name, ref label), &value)| WindowLevelSample {
                    name,
                    label: label.clone(),
                    value,
                })
                .collect();
            r.windows.push(WindowSample {
                index,
                start_nanos,
                end_nanos: at.as_nanos(),
                counters,
                levels,
            });
        });
    }

    /// Records one observation in the histogram `name{label}`.
    pub fn observe(&self, name: &'static str, label: &str, value: u64) {
        self.with(|r| {
            r.histograms
                .entry((name, label.to_owned()))
                .or_default()
                .record(value);
        });
    }

    /// Records a root span.
    pub fn span(
        &self,
        name: &'static str,
        label: impl Into<String>,
        at: SimTime,
        work_units: u64,
    ) -> SpanId {
        self.record_span(None, name, label.into(), at, work_units)
    }

    /// Records a span nested under `parent`.
    pub fn child_span(
        &self,
        parent: SpanId,
        name: &'static str,
        label: impl Into<String>,
        at: SimTime,
        work_units: u64,
    ) -> SpanId {
        self.record_span(Some(parent), name, label.into(), at, work_units)
    }

    fn record_span(
        &self,
        parent: Option<SpanId>,
        name: &'static str,
        label: String,
        at: SimTime,
        work_units: u64,
    ) -> SpanId {
        self.with(|r| {
            let seq = r.spans.len() as u64;
            r.spans.push(SpanRecord {
                seq,
                parent,
                name,
                label,
                at,
                work_units,
            });
            SpanId(seq)
        })
    }

    /// Adds `extra` work units to an already-recorded span (for stages
    /// whose cost is only known after their children ran).
    pub fn add_span_work(&self, id: SpanId, extra: u64) {
        self.with(|r| {
            if let Some(s) = r.spans.get_mut(id.0 as usize) {
                s.work_units += extra;
            }
        });
    }

    /// Resizes the flight-recorder ring (events evicted by a shrink count
    /// as dropped, so the loss stays visible).
    pub fn set_flight_capacity(&self, capacity: usize) {
        self.with(|r| r.flight.set_capacity(capacity));
    }

    /// The flight recorder's configured capacity.
    pub fn flight_capacity(&self) -> usize {
        self.with(|r| r.flight.capacity())
    }

    /// Events evicted from the flight recorder so far.
    pub fn trace_events_dropped(&self) -> u64 {
        self.with(|r| r.flight.dropped())
    }

    /// Starts a new causal trace with a root *send* event, returning the
    /// [`TraceCtx`] to stamp onto the in-flight message.
    pub fn trace_begin(
        &self,
        name: &'static str,
        label: &str,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        self.with(|r| r.flight.begin(name, label.to_owned(), device, at, bytes))
    }

    /// Records an intermediate *hop* (provider queue, DMA descriptor ring,
    /// device firmware step) continuing `ctx`; returns the advanced
    /// context.
    pub fn trace_hop(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        self.with(|r| r.flight.hop(ctx, name, label.to_owned(), device, at, bytes))
    }

    /// Closes `ctx` with a *recv* event; returns the context positioned at
    /// the recv so post-receive device work can keep chaining.
    pub fn trace_recv(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        self.with(|r| {
            r.flight
                .recv(ctx, name, label.to_owned(), device, at, bytes)
        })
    }

    /// Closes `ctx` with a *drop* event (message lost or rejected).
    pub fn trace_drop(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) {
        self.with(|r| {
            r.flight
                .drop_event(ctx, name, label.to_owned(), device, at, bytes);
        });
    }

    /// Renders an ordering-stable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|r| MetricsSnapshot {
            counters: r
                .counters
                .iter()
                .map(|(&(name, ref label), &value)| CounterSample {
                    name,
                    label: label.clone(),
                    value,
                })
                .collect(),
            gauges: r
                .gauges
                .iter()
                .map(|(&(name, ref label), &value)| GaugeSample {
                    name,
                    label: label.clone(),
                    value,
                })
                .collect(),
            histograms: r
                .histograms
                .iter()
                .map(|(&(name, ref label), h)| HistogramSample {
                    name,
                    label: label.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    buckets: h.nonzero_buckets(),
                })
                .collect(),
            spans: r
                .spans
                .iter()
                .map(|s| SpanSample {
                    seq: s.seq,
                    parent: s.parent.map(|p| p.0),
                    name: s.name,
                    label: s.label.clone(),
                    at_nanos: s.at.as_nanos(),
                    work_units: s.work_units,
                })
                .collect(),
            events: r
                .flight
                .events()
                .map(|e| TraceEventSample {
                    id: e.id.0,
                    trace: e.trace.0,
                    parent: e.parent.map(|p| p.0),
                    kind: e.kind.as_str(),
                    name: e.name,
                    label: e.label.clone(),
                    device: e.device,
                    at_nanos: e.at.as_nanos(),
                    bytes: e.bytes,
                })
                .collect(),
            events_dropped: r.flight.dropped(),
            windows: r.windows.clone(),
            channels: Vec::new(),
        })
    }

    /// Clears the registry (e.g. between benchmark iterations). The
    /// flight recorder's configured capacity survives the reset.
    pub fn reset(&self) {
        self.with(|r| {
            let cap = r.flight.capacity();
            *r = Registry::default();
            r.flight.set_capacity(cap);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_registry() {
        let a = Recorder::new();
        let b = a.clone();
        a.counter_incr("c", "x");
        b.counter_incr("c", "x");
        assert_eq!(a.snapshot().counter("c", "x"), Some(2));
    }

    #[test]
    fn gauge_keeps_high_water() {
        let r = Recorder::new();
        r.gauge_max("g", "", 5);
        r.gauge_max("g", "", 3);
        r.gauge_max("g", "", 9);
        assert_eq!(r.snapshot().gauge("g", ""), Some(9));
    }

    #[test]
    fn spans_nest_and_accumulate_work() {
        let r = Recorder::new();
        let root = r.span("root", "", SimTime::ZERO, 0);
        let child = r.child_span(root, "child", "i0", SimTime::from_micros(5), 7);
        r.add_span_work(root, 7);
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].work_units, 7);
        assert_eq!(snap.spans[1].parent, Some(root.0));
        assert_eq!(snap.spans[1].seq, child.0);
        assert_eq!(snap.spans[1].at_nanos, 5_000);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Recorder::new();
        r.counter_incr("c", "x");
        r.observe("h", "x", 1);
        r.span("s", "", SimTime::ZERO, 1);
        r.trace_begin("t", "", 0, SimTime::ZERO, 0);
        r.set_flight_capacity(7);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_dropped, 0);
        assert_eq!(r.flight_capacity(), 7, "capacity survives reset");
    }

    #[test]
    fn trace_chain_lands_in_snapshot() {
        let r = Recorder::new();
        let ctx = r.trace_begin("channel.send", "dma", 0, SimTime::ZERO, 64);
        let ctx = r.trace_hop(ctx, "provider.ring", "dma", 1, SimTime::from_micros(2), 64);
        r.trace_recv(ctx, "channel.recv", "dma", 1, SimTime::from_micros(4), 64);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].kind, "send");
        assert_eq!(snap.events[1].parent, Some(snap.events[0].id));
        assert_eq!(snap.events[2].parent, Some(snap.events[1].id));
        assert_eq!(snap.events[2].at_nanos, 4_000);
    }

    #[test]
    fn flight_overflow_is_visible_in_snapshot() {
        let r = Recorder::new();
        r.set_flight_capacity(2);
        for _ in 0..5 {
            r.trace_begin("e", "", 0, SimTime::ZERO, 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events_dropped, 3);
    }
}
