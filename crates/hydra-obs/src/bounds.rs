//! Bound-vs-observed comparison: the observability half of the
//! certification loop.
//!
//! `hydra-verify`'s flow pass derives static worst-case bounds (queue
//! depth, latency, sustained device utilization); this module extracts
//! the *observed* counterparts from a [`MetricsSnapshot`] and checks the
//! bracket. A violated bracket is always a bug — either the bound
//! derivation is unsound or the simulator charges costs the provider
//! table does not declare — and the returned [`BoundViolation`] says
//! which metric disagreed by how much.

use std::fmt;

use crate::snapshot::MetricsSnapshot;

/// One observed value that escaped its certified bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// What was measured (metric and instance).
    pub subject: String,
    /// The observed value.
    pub observed: u64,
    /// The certified bound it had to stay within.
    pub bound: u64,
}

impl fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: observed {} exceeds certified bound {}",
            self.subject, self.observed, self.bound
        )
    }
}

/// The peak value of a level track `name{label}` across every window.
pub fn peak_level(snapshot: &MetricsSnapshot, name: &str, label: &str) -> u64 {
    snapshot
        .windows
        .iter()
        .filter_map(|w| w.level(name, label))
        .max()
        .unwrap_or(0)
}

/// The sustained busy fraction over the whole run in permille: the final
/// total of a `*_ns` busy-time counter over the horizon.
pub fn sustained_busy_permille(
    snapshot: &MetricsSnapshot,
    name: &str,
    label: &str,
    horizon_ns: u64,
) -> u64 {
    if horizon_ns == 0 {
        return 0;
    }
    let busy = u128::from(snapshot.counter(name, label).unwrap_or(0));
    u64::try_from(busy * 1000 / u128::from(horizon_ns)).unwrap_or(u64::MAX)
}

/// The busiest single window of a `*_ns` busy-time counter, in permille.
pub fn peak_window_permille(snapshot: &MetricsSnapshot, name: &str, label: &str) -> u64 {
    snapshot
        .windows
        .iter()
        .filter_map(|w| w.utilization_permille(name, label))
        .max()
        .unwrap_or(0)
}

/// Checks `observed ≤ bound`, describing the failure when it is not.
pub fn check_bound(
    subject: impl Into<String>,
    observed: u64,
    bound: u64,
) -> Result<(), BoundViolation> {
    if observed <= bound {
        Ok(())
    } else {
        Err(BoundViolation {
            subject: subject.into(),
            observed,
            bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use hydra_sim::time::SimTime;

    #[test]
    fn peaks_and_sustained_from_windows() {
        let rec = Recorder::new();
        rec.counter_add("device.busy_ns", "nic", 400_000);
        rec.level_set("channel.depth", "chan#0", 3);
        rec.sample_window(SimTime::from_nanos(1_000_000));
        rec.level_set("channel.depth", "chan#0", 7);
        rec.counter_add("device.busy_ns", "nic", 100_000);
        rec.sample_window(SimTime::from_nanos(2_000_000));
        let snap = rec.snapshot();
        assert_eq!(peak_level(&snap, "channel.depth", "chan#0"), 7);
        assert_eq!(
            sustained_busy_permille(&snap, "device.busy_ns", "nic", 2_000_000),
            250
        );
        assert_eq!(peak_window_permille(&snap, "device.busy_ns", "nic"), 400);
    }

    #[test]
    fn check_bound_reports_the_overshoot() {
        assert!(check_bound("x", 10, 10).is_ok());
        let v = check_bound("chan#0 p99", 12, 10).unwrap_err();
        assert_eq!(v.observed, 12);
        assert!(v.to_string().contains("chan#0 p99"));
    }
}
