//! Deterministic windowed telemetry: the sim-time [`Sampler`] and the
//! fixed-width windows it materializes.
//!
//! End-of-run aggregates (counters, histograms) answer "how much in
//! total?"; the fleet experiments need "how much *when*?". A [`Sampler`]
//! schedules a periodic tick inside the DES engine
//! ([`hydra_sim::Sim::every`]); each tick closes one window by
//! snapshotting every counter's delta since the previous tick plus the
//! instantaneous value of every *level* track (queue depths, ring
//! occupancy — see [`Recorder::level_set`](crate::Recorder::level_set)).
//!
//! # Window semantics
//!
//! * Windows are half-open `(start, end]` in sim time and contiguous:
//!   window `i+1` starts exactly where window `i` ended; window 0 starts
//!   at [`SimTime::ZERO`].
//! * A counter appears in a window iff its value changed during the
//!   window; the recorded delta carries the running total alongside, so
//!   the sum of deltas over all windows plus the post-final-window
//!   residue always reconciles with the end-of-run snapshot (the
//!   conservation property the proptests pin).
//! * Levels are sampled *at* the window's closing edge — they are
//!   instantaneous gauges, not integrals.
//!
//! # Determinism
//!
//! Ticks are ordinary DES events, so they interleave with model events
//! under the engine's FIFO `(time, seq)` contract; window contents
//! iterate `BTreeMap`s. Two identical runs therefore render
//! byte-identical timelines — `repro -- stats` and the CI stats-gate
//! diff exactly that.

use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;

use crate::recorder::Recorder;
use crate::snapshot::MetricsSnapshot;

/// One counter track inside a window: the change over the window and
/// the running total at its closing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTrackSample {
    /// Metric name.
    pub name: &'static str,
    /// Instance label (may be empty).
    pub label: String,
    /// Increase over this window.
    pub delta: u64,
    /// Running total at the window's closing edge.
    pub total: u64,
}

/// One level (instantaneous gauge) sampled at a window's closing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowLevelSample {
    /// Metric name.
    pub name: &'static str,
    /// Instance label (may be empty).
    pub label: String,
    /// Level at the window's closing edge.
    pub value: u64,
}

/// One closed telemetry window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSample {
    /// Window number, from 0.
    pub index: u64,
    /// Window start (exclusive) in nanoseconds.
    pub start_nanos: u64,
    /// Window end (inclusive; the sampling instant) in nanoseconds.
    pub end_nanos: u64,
    /// Counters that changed during the window, sorted by `(name, label)`.
    pub counters: Vec<WindowTrackSample>,
    /// Every level track, sorted by `(name, label)`.
    pub levels: Vec<WindowLevelSample>,
}

impl WindowSample {
    /// Window width in nanoseconds.
    pub fn width_nanos(&self) -> u64 {
        self.end_nanos - self.start_nanos
    }

    /// The window's delta for counter `name{label}` (0 when unchanged).
    pub fn delta(&self, name: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|t| t.name == name && t.label == label)
            .map_or(0, |t| t.delta)
    }

    /// The level `name{label}` at the window's closing edge.
    pub fn level(&self, name: &str, label: &str) -> Option<u64> {
        self.levels
            .iter()
            .find(|l| l.name == name && l.label == label)
            .map(|l| l.value)
    }

    /// Busy-fraction of the window in permille, reading a `*_ns`
    /// busy-time counter: `delta(name{label}) · 1000 / width`, capped at
    /// 1000. `None` for a zero-width window.
    pub fn utilization_permille(&self, name: &str, label: &str) -> Option<u64> {
        let width = self.width_nanos();
        if width == 0 {
            return None;
        }
        let busy = u128::from(self.delta(name, label));
        #[allow(clippy::cast_possible_truncation)] // capped at 1000
        Some(((busy * 1000 / u128::from(width)) as u64).min(1000))
    }
}

/// One metric extracted across every window: `(end_nanos, value)`
/// points in window order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Metric name.
    pub name: String,
    /// Instance label.
    pub label: String,
    /// `(window end in nanoseconds, value)` per window. For counters the
    /// value is the per-window delta; for levels the sampled level.
    pub points: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Extracts one counter's per-window deltas as a [`TimeSeries`]
    /// (windows where the counter did not change contribute 0).
    pub fn time_series(&self, name: &str, label: &str) -> TimeSeries {
        TimeSeries {
            name: name.to_owned(),
            label: label.to_owned(),
            points: self
                .windows
                .iter()
                .map(|w| (w.end_nanos, w.delta(name, label)))
                .collect(),
        }
    }

    /// Extracts one level track as a [`TimeSeries`] (windows without the
    /// track contribute 0).
    pub fn level_series(&self, name: &str, label: &str) -> TimeSeries {
        TimeSeries {
            name: name.to_owned(),
            label: label.to_owned(),
            points: self
                .windows
                .iter()
                .map(|w| (w.end_nanos, w.level(name, label).unwrap_or(0)))
                .collect(),
        }
    }
}

/// Schedules the periodic telemetry tick inside a [`Sim`] and closes
/// one window per tick on a shared [`Recorder`].
///
/// # Examples
///
/// ```
/// use hydra_obs::{Recorder, Sampler};
/// use hydra_sim::time::{SimDuration, SimTime};
/// use hydra_sim::Sim;
///
/// let rec = Recorder::new();
/// let mut sim: Sim<()> = Sim::new(());
/// Sampler::new(SimDuration::from_millis(1), SimTime::from_millis(3)).install(&mut sim, &rec);
/// sim.run();
/// assert_eq!(rec.snapshot().windows.len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    period: SimDuration,
    until: SimTime,
}

impl Sampler {
    /// A sampler closing a window every `period`, ticking up to and
    /// including `until`.
    ///
    /// # Panics
    ///
    /// Panics on a zero period (windows must have width).
    pub fn new(period: SimDuration, until: SimTime) -> Self {
        assert!(!period.is_zero(), "sampler period must be non-zero");
        Sampler { period, until }
    }

    /// The window width.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Installs the periodic tick on `sim`, closing windows on
    /// `recorder`. The first window closes at `period`; ticks stop after
    /// the last instant ≤ `until`.
    pub fn install<M: 'static>(&self, sim: &mut Sim<M>, recorder: &Recorder) {
        let rec = recorder.clone();
        let period = self.period;
        let until = self.until;
        sim.every(SimTime::ZERO + period, period, move |sim| {
            rec.sample_window(sim.now());
            sim.now().saturating_add(period) <= until
        });
    }
}

/// Renders a snapshot's windows as canonical CSV: header plus one row
/// per track per window, `kind` distinguishing counter deltas from
/// sampled levels. Byte-stable across identical runs.
#[must_use]
pub fn timeline_csv(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("window,start_nanos,end_nanos,kind,name,label,value,total\n");
    for w in &snapshot.windows {
        for t in &w.counters {
            out.push_str(&format!(
                "{},{},{},delta,{},{},{},{}\n",
                w.index,
                w.start_nanos,
                w.end_nanos,
                csv_field(t.name),
                csv_field(&t.label),
                t.delta,
                t.total
            ));
        }
        for l in &w.levels {
            out.push_str(&format!(
                "{},{},{},level,{},{},{},{}\n",
                w.index,
                w.start_nanos,
                w.end_nanos,
                csv_field(l.name),
                csv_field(&l.label),
                l.value,
                l.value
            ));
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_contiguous_and_carry_deltas() {
        let rec = Recorder::new();
        rec.counter_add("c", "x", 5);
        rec.sample_window(SimTime::from_millis(1));
        rec.counter_add("c", "x", 3);
        rec.counter_add("d", "", 2);
        rec.sample_window(SimTime::from_millis(2));
        rec.sample_window(SimTime::from_millis(3));
        let snap = rec.snapshot();
        assert_eq!(snap.windows.len(), 3);
        assert_eq!(snap.windows[0].start_nanos, 0);
        assert_eq!(snap.windows[0].end_nanos, 1_000_000);
        assert_eq!(snap.windows[1].start_nanos, 1_000_000);
        assert_eq!(snap.windows[0].delta("c", "x"), 5);
        assert_eq!(snap.windows[1].delta("c", "x"), 3);
        assert_eq!(snap.windows[1].counters[0].total, 8);
        assert_eq!(snap.windows[1].delta("d", ""), 2);
        // Quiet window: no counter tracks at all.
        assert!(snap.windows[2].counters.is_empty());
        // Conservation: deltas sum to the final totals.
        let summed: u64 = snap.windows.iter().map(|w| w.delta("c", "x")).sum();
        assert_eq!(Some(summed), snap.counter("c", "x"));
    }

    #[test]
    fn levels_sample_the_instantaneous_value() {
        let rec = Recorder::new();
        rec.level_set("q", "ring", 4);
        rec.sample_window(SimTime::from_millis(1));
        rec.level_add("q", "ring", 3);
        rec.level_sub("q", "ring", 5);
        rec.sample_window(SimTime::from_millis(2));
        let snap = rec.snapshot();
        assert_eq!(snap.windows[0].level("q", "ring"), Some(4));
        assert_eq!(snap.windows[1].level("q", "ring"), Some(2));
        let series = snap.level_series("q", "ring");
        assert_eq!(series.points, vec![(1_000_000, 4), (2_000_000, 2)]);
    }

    #[test]
    fn level_sub_saturates_at_zero() {
        let rec = Recorder::new();
        rec.level_add("q", "", 1);
        rec.level_sub("q", "", 9);
        rec.sample_window(SimTime::from_millis(1));
        assert_eq!(rec.snapshot().windows[0].level("q", ""), Some(0));
    }

    #[test]
    fn utilization_is_busy_fraction_in_permille() {
        let rec = Recorder::new();
        rec.counter_add("device.busy_ns", "device-1", 250_000);
        rec.sample_window(SimTime::from_millis(1));
        let snap = rec.snapshot();
        assert_eq!(
            snap.windows[0].utilization_permille("device.busy_ns", "device-1"),
            Some(250)
        );
        // Over-subscribed windows cap at 1000.
        rec.counter_add("device.busy_ns", "device-1", 9_000_000);
        rec.sample_window(SimTime::from_millis(2));
        assert_eq!(
            rec.snapshot().windows[1].utilization_permille("device.busy_ns", "device-1"),
            Some(1000)
        );
    }

    #[test]
    fn sampler_ticks_on_the_engine_clock() {
        let rec = Recorder::new();
        let mut sim: Sim<u64> = Sim::new(0);
        Sampler::new(SimDuration::from_millis(2), SimTime::from_millis(10)).install(&mut sim, &rec);
        let r2 = rec.clone();
        sim.every(
            SimTime::from_millis(1),
            SimDuration::from_millis(1),
            move |sim| {
                r2.counter_add("work", "", 1);
                sim.now() < SimTime::from_millis(7)
            },
        );
        sim.run();
        let snap = rec.snapshot();
        assert_eq!(snap.windows.len(), 5, "ticks at 2,4,6,8,10 ms");
        // Same-instant events run in schedule order (the engine's FIFO
        // tie-break): the sampler tick at 2 ms was scheduled before the
        // work event rescheduled itself onto 2 ms, so that increment
        // falls into the *next* window. Work fires at 1..=7 ms, 7 total.
        let series = snap.time_series("work", "");
        assert_eq!(
            series.points,
            vec![
                (2_000_000, 1),
                (4_000_000, 2),
                (6_000_000, 2),
                (8_000_000, 2),
                (10_000_000, 0)
            ]
        );
    }

    #[test]
    fn csv_dump_is_canonical() {
        let rec = Recorder::new();
        rec.counter_add("c", "x", 5);
        rec.level_set("q", "", 2);
        rec.sample_window(SimTime::from_micros(10));
        let csv = timeline_csv(&rec.snapshot());
        assert_eq!(
            csv,
            "window,start_nanos,end_nanos,kind,name,label,value,total\n\
             0,0,10000,delta,c,x,5,5\n\
             0,0,10000,level,q,,2,2\n"
        );
        assert_eq!(csv_field("a,b"), "\"a,b\"");
    }
}
