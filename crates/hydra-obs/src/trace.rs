//! Causal trace propagation: [`TraceCtx`] and the [`FlightRecorder`].
//!
//! A HYDRA request hops between host and programmable devices over
//! channels, which is exactly where per-process profiling goes blind. A
//! [`TraceCtx`] is a tiny, fully deterministic causal stamp — a trace id
//! plus the id of the most recent event on that trace — that instrumented
//! code carries along with a message: it is minted at `send`, threaded
//! through provider queues and DMA descriptor rings as *hop* events, and
//! closed at `recv` (or a *drop* event when the message is lost).
//!
//! Events land in the [`FlightRecorder`], a bounded ring. When the ring is
//! full the **oldest** event is discarded and a dropped-events counter is
//! bumped, so loss is always visible in the snapshot rather than silent.
//!
//! # Determinism
//!
//! Trace and event ids are per-recorder sequence numbers; timestamps are
//! caller-supplied [`SimTime`]s. Nothing reads the wall clock or an RNG,
//! so two identical executions produce identical event chains (and
//! byte-identical Chrome-trace exports — see [`crate::export`]).

use std::collections::VecDeque;
use std::fmt;

use hydra_sim::time::SimTime;

/// Identifier of one causal trace (one logical request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of one recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// The causal stamp carried by an in-flight message: which trace it
/// belongs to and which event it was last seen at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace this message belongs to.
    pub trace: TraceId,
    /// The most recent event on the trace (the parent of the next one).
    pub parent: EventId,
}

/// What happened at one point of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// A message entered the system (channel `send`).
    Send,
    /// The message crossed an intermediate stage: a provider queue, a DMA
    /// descriptor ring, a device firmware step.
    Hop,
    /// The message reached a receiver (channel `recv`).
    Recv,
    /// The message was lost (ring full, fault injection, rejection).
    Drop,
}

impl TraceEventKind {
    /// Stable lowercase name, used by the renderings.
    pub const fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Send => "send",
            TraceEventKind::Hop => "hop",
            TraceEventKind::Recv => "recv",
            TraceEventKind::Drop => "drop",
        }
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally unique (per recorder) event id, in record order.
    pub id: EventId,
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// The causally preceding event, if any (`None` for trace roots).
    pub parent: Option<EventId>,
    /// What happened.
    pub kind: TraceEventKind,
    /// Static event name, e.g. `"channel.send"` or `"nic.peer_forward"`.
    pub name: &'static str,
    /// Instance label, e.g. the winning provider's name.
    pub label: String,
    /// The device the event happened on (0 = host); the Chrome-trace
    /// exporter uses this as the "pid".
    pub device: u64,
    /// Simulation instant of the event.
    pub at: SimTime,
    /// Payload bytes associated with the event (0 when not applicable).
    pub bytes: u64,
}

/// Default flight-recorder capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// A bounded ring of trace events with drop-oldest overflow.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    next_event: u64,
    next_trace: u64,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_event: 0,
            next_trace: 0,
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the ring, evicting oldest events if it shrinks below the
    /// current length (evictions count as dropped).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Starts a new trace with a root *send* event, returning the context
    /// to stamp onto the message.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        name: &'static str,
        label: String,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        let trace = TraceId(self.next_trace);
        self.next_trace += 1;
        let id = self.push(
            trace,
            None,
            TraceEventKind::Send,
            name,
            label,
            device,
            at,
            bytes,
        );
        TraceCtx { trace, parent: id }
    }

    /// Records an intermediate hop continuing `ctx`, returning the
    /// advanced context.
    pub fn hop(
        &mut self,
        ctx: TraceCtx,
        name: &'static str,
        label: String,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        let id = self.push(
            ctx.trace,
            Some(ctx.parent),
            TraceEventKind::Hop,
            name,
            label,
            device,
            at,
            bytes,
        );
        TraceCtx {
            trace: ctx.trace,
            parent: id,
        }
    }

    /// Closes `ctx` with a *recv* event, returning the context positioned
    /// at that event (so post-receive device work can keep chaining).
    pub fn recv(
        &mut self,
        ctx: TraceCtx,
        name: &'static str,
        label: String,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        let id = self.push(
            ctx.trace,
            Some(ctx.parent),
            TraceEventKind::Recv,
            name,
            label,
            device,
            at,
            bytes,
        );
        TraceCtx {
            trace: ctx.trace,
            parent: id,
        }
    }

    /// Closes `ctx` with a *drop* event (message lost or rejected).
    pub fn drop_event(
        &mut self,
        ctx: TraceCtx,
        name: &'static str,
        label: String,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) {
        self.push(
            ctx.trace,
            Some(ctx.parent),
            TraceEventKind::Drop,
            name,
            label,
            device,
            at,
            bytes,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        trace: TraceId,
        parent: Option<EventId>,
        kind: TraceEventKind,
        name: &'static str,
        label: String,
        device: u64,
        at: SimTime,
        bytes: u64,
    ) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            id,
            trace,
            parent,
            kind,
            name,
            label,
            device,
            at,
            bytes,
        });
        id
    }

    /// Clears all events and counters (between benchmark iterations).
    pub fn reset(&mut self) {
        self.events.clear();
        self.next_event = 0;
        self.next_trace = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_hop_recv_forms_a_linked_chain() {
        let mut fr = FlightRecorder::default();
        let ctx = fr.begin("channel.send", "dma".into(), 0, SimTime::ZERO, 64);
        let ctx = fr.hop(
            ctx,
            "provider.ring",
            "dma".into(),
            1,
            SimTime::from_micros(3),
            64,
        );
        let end = fr.recv(
            ctx,
            "channel.recv",
            "dma".into(),
            1,
            SimTime::from_micros(5),
            64,
        );
        let ev: Vec<&TraceEvent> = fr.events().collect();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].parent, None);
        assert_eq!(ev[1].parent, Some(ev[0].id));
        assert_eq!(ev[2].parent, Some(ev[1].id));
        assert!(ev.iter().all(|e| e.trace == ctx.trace));
        assert_eq!(end.parent, ev[2].id);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts_exactly() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            fr.begin("e", String::new(), 0, SimTime::from_nanos(i), i);
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 6, "exactly len - capacity events dropped");
        // The survivors are the newest four, in order.
        let ids: Vec<u64> = fr.events().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn shrinking_capacity_evicts_and_counts() {
        let mut fr = FlightRecorder::with_capacity(8);
        for _ in 0..8 {
            fr.begin("e", String::new(), 0, SimTime::ZERO, 0);
        }
        fr.set_capacity(3);
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 5);
    }

    #[test]
    fn drop_event_closes_a_trace() {
        let mut fr = FlightRecorder::default();
        let ctx = fr.begin("channel.send", "p".into(), 0, SimTime::ZERO, 1);
        fr.drop_event(ctx, "channel.drop", "p".into(), 2, SimTime::ZERO, 1);
        let ev: Vec<&TraceEvent> = fr.events().collect();
        assert_eq!(ev[1].kind, TraceEventKind::Drop);
        assert_eq!(ev[1].parent, Some(ev[0].id));
    }

    #[test]
    fn reset_restarts_sequences() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.begin("e", String::new(), 0, SimTime::ZERO, 0);
        fr.begin("e", String::new(), 0, SimTime::ZERO, 0);
        fr.begin("e", String::new(), 0, SimTime::ZERO, 0);
        fr.reset();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
        let ctx = fr.begin("e", String::new(), 0, SimTime::ZERO, 0);
        assert_eq!(ctx.trace, TraceId(0));
        assert_eq!(ctx.parent, EventId(0));
    }
}
