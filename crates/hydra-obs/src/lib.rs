//! Deterministic observability for the HYDRA reproduction.
//!
//! The runtime's interesting behavior — which deployment pipeline stage
//! did how much work, which channel provider won a bid, how hard the ILP
//! solver searched — happens inside a discrete-event simulation. A
//! conventional metrics library would stamp everything with the wall
//! clock and ruin reproducibility; this crate instead records:
//!
//! - **counters** (`sent`, `dropped`, provider selections, host
//!   fallbacks),
//! - **high-water gauges** (channel backlog),
//! - **histograms** with power-of-two buckets (message latency, sizes),
//! - **spans** stamped with [`hydra_sim::time::SimTime`] and measured in
//!   modeled *work units* rather than elapsed time (sim time does not
//!   advance inside the deployment pipeline).
//!
//! - **causal trace events** ([`trace`]): a [`TraceCtx`] stamped onto a
//!   channel message at `send`, carried through provider queues and DMA
//!   rings as *hop* events, and closed at `recv`/`drop`, stored in a
//!   bounded flight-recorder ring with visible overflow accounting.
//!
//! - **telemetry windows** ([`timeline`]): a [`Sampler`] ticking on the
//!   DES engine clock closes fixed-width windows of counter deltas and
//!   instantaneous *level* tracks (queue depths), turning end-of-run
//!   aggregates into deterministic time series — per-device utilization,
//!   occupancy, and throughput over time.
//!
//! Everything is keyed by a static metric name plus an instance label and
//! stored in `BTreeMap`s, so a [`MetricsSnapshot`] — including its JSON
//! rendering — is byte-for-byte identical across identical executions.
//! `tests/obs_determinism.rs` in the workspace root holds the proof.
//!
//! Two consumers sit on top of the frozen snapshot: [`export`] renders
//! the event chains as Chrome trace-event JSON (`chrome://tracing` /
//! Perfetto), and [`budget`] checks counters against committed baselines
//! with per-counter tolerances — a metrics regression gate for CI.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod budget;
pub mod export;
pub mod histogram;
pub mod recorder;
pub mod snapshot;
pub mod timeline;
pub mod trace;

pub use bounds::{
    check_bound, peak_level, peak_window_permille, sustained_busy_permille, BoundViolation,
};
pub use budget::{check_budget, parse_budget, BudgetSpec, BudgetViolation, CounterBudget};
pub use export::chrome_trace;
pub use histogram::Histogram;
pub use recorder::{Recorder, SpanId, SpanRecord};
pub use snapshot::{
    ChannelProfileSample, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot,
    ProfileBucketSample, SpanSample, TraceEventSample,
};
pub use timeline::{
    timeline_csv, Sampler, TimeSeries, WindowLevelSample, WindowSample, WindowTrackSample,
};
pub use trace::{EventId, FlightRecorder, TraceCtx, TraceEvent, TraceEventKind, TraceId};
