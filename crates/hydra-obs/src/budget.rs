//! Metrics-budget regression gates.
//!
//! A **budget** is a committed baseline for a deployment's counters — the
//! observed value plus a tolerance — checked against a fresh
//! [`MetricsSnapshot`]. Because every snapshot in this workspace is
//! deterministic, the budgets can be tight (often tolerance 0), turning
//! the observability numbers into a regression fence: a code change that
//! silently doubles `channel.bytes` or stops selecting the zero-copy
//! provider fails the gate instead of drifting unnoticed.
//!
//! Budget files are JSON (see `budgets/*.json` at the workspace root):
//!
//! ```json
//! {
//!   "name": "demo-deployment",
//!   "counters": [
//!     {"name": "channel.sent", "label": "zero-copy-dma", "expect": 4, "tolerance": 0},
//!     {"name": "channel.bytes", "expect": 264, "tolerance": 32}
//!   ]
//! }
//! ```
//!
//! An entry **with** a `label` checks that exact `(name, label)` counter;
//! an entry **without** one checks the sum of the counter across labels
//! ([`MetricsSnapshot::counter_total`]). A missing counter reads as 0, so
//! budgets also catch instrumentation that disappears. The parser is a
//! tiny hand-rolled recursive-descent JSON reader (the workspace vendors
//! no serde), restricted to what the schema needs.

use std::fmt;

use crate::snapshot::MetricsSnapshot;

/// One counter's budget line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBudget {
    /// Counter name.
    pub name: String,
    /// Exact label to check; `None` sums the counter across labels.
    pub label: Option<String>,
    /// The committed baseline value.
    pub expect: u64,
    /// Largest allowed absolute deviation from `expect`.
    pub tolerance: u64,
}

/// A parsed budget file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Human-readable budget name (reported in violations).
    pub name: String,
    /// The counter lines.
    pub counters: Vec<CounterBudget>,
}

/// One counter outside its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetViolation {
    /// Counter name.
    pub name: String,
    /// Label, or `None` for a cross-label total.
    pub label: Option<String>,
    /// The committed baseline.
    pub expect: u64,
    /// The allowed deviation.
    pub tolerance: u64,
    /// What the snapshot actually holds.
    pub actual: u64,
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self.label.as_deref().unwrap_or("*");
        write!(
            f,
            "{}{{{}}}: actual {} outside budget {} ± {}",
            self.name, label, self.actual, self.expect, self.tolerance
        )
    }
}

/// A malformed budget file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetParseError(pub String);

impl fmt::Display for BudgetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget parse error: {}", self.0)
    }
}

impl std::error::Error for BudgetParseError {}

/// Checks `snapshot` against `budget`, returning every violated line (an
/// empty vector means the gate passes).
///
/// # Examples
///
/// ```
/// use hydra_obs::budget::{check_budget, parse_budget};
/// use hydra_obs::Recorder;
///
/// let rec = Recorder::new();
/// rec.counter_add("channel.sent", "dma", 4);
/// let budget = parse_budget(
///     r#"{"name":"demo","counters":[
///         {"name":"channel.sent","label":"dma","expect":4,"tolerance":0}]}"#,
/// )
/// .unwrap();
/// assert!(check_budget(&rec.snapshot(), &budget).is_empty());
/// ```
pub fn check_budget(snapshot: &MetricsSnapshot, budget: &BudgetSpec) -> Vec<BudgetViolation> {
    budget
        .counters
        .iter()
        .filter_map(|line| {
            let actual = match &line.label {
                Some(label) => snapshot.counter(&line.name, label).unwrap_or(0),
                None => snapshot.counter_total(&line.name),
            };
            let deviation = actual.abs_diff(line.expect);
            (deviation > line.tolerance).then(|| BudgetViolation {
                name: line.name.clone(),
                label: line.label.clone(),
                expect: line.expect,
                tolerance: line.tolerance,
                actual,
            })
        })
        .collect()
}

/// Parses a budget file (see the module docs for the schema).
///
/// # Errors
///
/// Returns [`BudgetParseError`] on malformed JSON, a missing/mistyped
/// field, or trailing garbage.
pub fn parse_budget(text: &str) -> Result<BudgetSpec, BudgetParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(BudgetParseError("trailing characters".into()));
    }
    let obj = value.as_object("budget root")?;
    let name = obj
        .get("name")
        .ok_or_else(|| BudgetParseError("missing \"name\"".into()))?
        .as_string("name")?;
    let counters = obj
        .get("counters")
        .ok_or_else(|| BudgetParseError("missing \"counters\"".into()))?
        .as_array("counters")?
        .iter()
        .map(|entry| {
            let e = entry.as_object("counter entry")?;
            Ok(CounterBudget {
                name: e
                    .get("name")
                    .ok_or_else(|| BudgetParseError("counter entry missing \"name\"".into()))?
                    .as_string("counter name")?,
                label: match e.get("label") {
                    Some(v) => Some(v.as_string("counter label")?),
                    None => None,
                },
                expect: e
                    .get("expect")
                    .ok_or_else(|| BudgetParseError("counter entry missing \"expect\"".into()))?
                    .as_u64("expect")?,
                tolerance: match e.get("tolerance") {
                    Some(v) => v.as_u64("tolerance")?,
                    None => 0,
                },
            })
        })
        .collect::<Result<Vec<_>, BudgetParseError>>()?;
    Ok(BudgetSpec { name, counters })
}

/// The minimal JSON value model the budget schema needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(u64),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<JsonObject<'_>, BudgetParseError> {
        match self {
            Json::Object(fields) => Ok(JsonObject(fields)),
            _ => Err(BudgetParseError(format!("{what} must be an object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], BudgetParseError> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(BudgetParseError(format!("{what} must be an array"))),
        }
    }

    fn as_string(&self, what: &str) -> Result<String, BudgetParseError> {
        match self {
            Json::String(s) => Ok(s.clone()),
            _ => Err(BudgetParseError(format!("{what} must be a string"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, BudgetParseError> {
        match self {
            Json::Number(n) => Ok(*n),
            _ => Err(BudgetParseError(format!(
                "{what} must be a non-negative integer"
            ))),
        }
    }
}

struct JsonObject<'a>(&'a [(String, Json)]);

impl JsonObject<'_> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Recursive-descent reader over the restricted budget grammar: objects,
/// arrays, strings (with the standard escapes), and non-negative
/// integers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, BudgetParseError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| BudgetParseError("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), BudgetParseError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(BudgetParseError(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, BudgetParseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b'0'..=b'9' => self.number(),
            other => Err(BudgetParseError(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, BudgetParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => {
                    return Err(BudgetParseError(format!(
                        "expected ',' or '}}', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, BudgetParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(BudgetParseError(format!(
                        "expected ',' or ']', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, BudgetParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| BudgetParseError("unterminated string".into()))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| BudgetParseError("unterminated escape".into()))?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => {
                            return Err(BudgetParseError(format!(
                                "unsupported escape '\\{}'",
                                other as char
                            )))
                        }
                    });
                    self.pos += 1;
                }
                _ => {
                    // Pass UTF-8 continuation bytes through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| BudgetParseError("invalid UTF-8".into()))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, BudgetParseError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Json::Number)
            .map_err(|e| BudgetParseError(format!("bad number '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    const DEMO: &str = r#"{
        "name": "demo",
        "counters": [
            {"name": "channel.sent", "label": "zero-copy-dma", "expect": 4, "tolerance": 0},
            {"name": "channel.bytes", "expect": 100, "tolerance": 16}
        ]
    }"#;

    fn snapshot(sent: u64, bytes: u64) -> MetricsSnapshot {
        let rec = Recorder::new();
        rec.counter_add("channel.sent", "zero-copy-dma", sent);
        rec.counter_add("channel.bytes", "zero-copy-dma", bytes / 2);
        rec.counter_add("channel.bytes", "kernel-copy", bytes - bytes / 2);
        rec.snapshot()
    }

    #[test]
    fn parses_the_schema() {
        let b = parse_budget(DEMO).unwrap();
        assert_eq!(b.name, "demo");
        assert_eq!(b.counters.len(), 2);
        assert_eq!(b.counters[0].label.as_deref(), Some("zero-copy-dma"));
        assert_eq!(b.counters[1].label, None);
        assert_eq!(b.counters[1].tolerance, 16);
    }

    #[test]
    fn in_budget_snapshot_passes() {
        let b = parse_budget(DEMO).unwrap();
        assert!(check_budget(&snapshot(4, 100), &b).is_empty());
        // Tolerance absorbs drift in either direction.
        assert!(check_budget(&snapshot(4, 116), &b).is_empty());
        assert!(check_budget(&snapshot(4, 84), &b).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_a_violation() {
        let b = parse_budget(DEMO).unwrap();
        let v = check_budget(&snapshot(4, 117), &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "channel.bytes");
        assert_eq!(v[0].actual, 117);
        assert!(v[0].to_string().contains("117"));
        // Zero-tolerance line trips on any change.
        let v = check_budget(&snapshot(5, 100), &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label.as_deref(), Some("zero-copy-dma"));
    }

    #[test]
    fn missing_counter_reads_as_zero() {
        let b = parse_budget(DEMO).unwrap();
        let v = check_budget(&MetricsSnapshot::default(), &b);
        assert_eq!(v.len(), 2, "vanished instrumentation trips the gate");
        assert!(v.iter().all(|x| x.actual == 0));
    }

    #[test]
    fn malformed_budgets_are_rejected() {
        assert!(parse_budget("").is_err());
        assert!(parse_budget("[]").is_err());
        assert!(parse_budget("{\"name\":\"x\"}").is_err());
        assert!(parse_budget("{\"name\":\"x\",\"counters\":[]} trailing").is_err());
        assert!(parse_budget("{\"name\":\"x\",\"counters\":[{\"name\":\"c\"}]}").is_err());
        assert!(
            parse_budget("{\"name\":\"x\",\"counters\":[{\"name\":\"c\",\"expect\":\"4\"}]}")
                .is_err()
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let b = parse_budget("{\"name\":\"a\\\"b\\\\c\\n\",\"counters\":[]}").unwrap();
        assert_eq!(b.name, "a\"b\\c\n");
    }
}
