//! The serializable, ordering-stable metrics report.
//!
//! A [`MetricsSnapshot`] is a plain-data rendering of a
//! [`Recorder`](crate::Recorder)'s registry: counters, gauges and
//! histograms sorted by `(name, label)`, spans in record order. Both the
//! `Display` form and [`MetricsSnapshot::to_json`] are hand-rolled and
//! deterministic — two identical executions produce byte-identical text,
//! which the determinism tests assert.

use std::fmt;

use crate::histogram::quantile_from_buckets;
use crate::timeline::WindowSample;

/// One counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// Instance label (may be empty).
    pub label: String,
    /// Accumulated value.
    pub value: u64,
}

/// One high-water gauge value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: &'static str,
    /// Instance label (may be empty).
    pub label: String,
    /// Largest value observed.
    pub value: u64,
}

/// One histogram rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Instance label (may be empty).
    pub label: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSample {
    /// Estimates the `pct`-th percentile (`0..=100`) by bucket-bound
    /// interpolation, matching [`crate::Histogram::quantile`]; `None`
    /// when empty.
    pub fn quantile(&self, pct: u64) -> Option<u64> {
        quantile_from_buckets(&self.buckets, self.count, self.min, self.max, pct)
    }

    /// Median estimate ([`HistogramSample::quantile`] at 50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(50)
    }

    /// 95th-percentile estimate ([`HistogramSample::quantile`] at 95).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(95)
    }

    /// 99th-percentile estimate ([`HistogramSample::quantile`] at 99).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99)
    }
}

/// One span rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSample {
    /// Record order.
    pub seq: u64,
    /// Parent span's `seq`, if nested.
    pub parent: Option<u64>,
    /// Static span name.
    pub name: &'static str,
    /// Instance label.
    pub label: String,
    /// Simulation timestamp in nanoseconds.
    pub at_nanos: u64,
    /// Modeled work units.
    pub work_units: u64,
}

/// One causal trace event rendering (see [`crate::trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEventSample {
    /// Event id (record order across all traces).
    pub id: u64,
    /// The trace (logical request) this event belongs to.
    pub trace: u64,
    /// The causally preceding event's id, if any.
    pub parent: Option<u64>,
    /// Event kind: `"send"`, `"hop"`, `"recv"` or `"drop"`.
    pub kind: &'static str,
    /// Static event name.
    pub name: &'static str,
    /// Instance label (e.g. the provider name).
    pub label: String,
    /// Device the event happened on (0 = host).
    pub device: u64,
    /// Simulation timestamp in nanoseconds.
    pub at_nanos: u64,
    /// Payload bytes associated with the event.
    pub bytes: u64,
}

/// One size bucket of a channel's live cost profile: payloads in
/// `(bucket/2, bucket]` bytes with their observed-latency quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileBucketSample {
    /// Bucket upper bound in bytes (power of two).
    pub bucket_bytes: u64,
    /// Messages observed in this bucket.
    pub count: u64,
    /// Median observed latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile observed latency in nanoseconds.
    pub p99_ns: u64,
}

/// One channel's live cost profile, as published by the runtime into
/// its metrics snapshot: the observed price of the channel (per size
/// bucket) next to the provider decision history, so online selection
/// is auditable from the same report as everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProfileSample {
    /// The channel's stable label (`chan#N`).
    pub label: String,
    /// The currently active provider.
    pub provider: String,
    /// Whether the channel re-selects its provider online.
    pub adaptive: bool,
    /// Epoch-boundary provider switches performed so far.
    pub switches: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Doorbells rung.
    pub doorbells: u64,
    /// Accumulated fixed launch charges, in nanoseconds.
    pub launch_overhead_ns: u64,
    /// EWMA of observed latency, in nanoseconds.
    pub ewma_latency_ns: u64,
    /// Observed throughput over the active span (0 until known).
    pub throughput_bytes_per_sec: u64,
    /// Observed latency quantiles per size bucket, ascending.
    pub buckets: Vec<ProfileBucketSample>,
}

/// A full metrics report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by `(name, label)`.
    pub counters: Vec<CounterSample>,
    /// High-water gauges, sorted by `(name, label)`.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by `(name, label)`.
    pub histograms: Vec<HistogramSample>,
    /// Spans, in record order.
    pub spans: Vec<SpanSample>,
    /// Flight-recorder trace events, in record order (oldest retained
    /// first — the ring drops oldest on overflow).
    pub events: Vec<TraceEventSample>,
    /// Events the bounded flight recorder had to evict; non-zero means
    /// `events` is a suffix of the true history.
    pub events_dropped: u64,
    /// Telemetry windows closed by the sampler, in time order (empty
    /// unless a [`crate::Sampler`] ran or
    /// [`crate::Recorder::sample_window`] was called).
    pub windows: Vec<WindowSample>,
    /// Live per-channel cost profiles, ascending by label (empty unless
    /// the producer publishes them — the runtime's `metrics_snapshot`
    /// does).
    pub channels: Vec<ChannelProfileSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
    }

    /// Sums every counter with `name`, across labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str, label: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label == label)
            .map(|g| g.value)
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
    }

    /// All spans with `name`, in record order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanSample> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// All trace events of one trace, in record order.
    pub fn trace_events(&self, trace: u64) -> Vec<&TraceEventSample> {
        self.events.iter().filter(|e| e.trace == trace).collect()
    }

    /// All trace events of a given kind (`"send"`, `"hop"`, `"recv"`,
    /// `"drop"`), in record order.
    pub fn events_kind(&self, kind: &str) -> Vec<&TraceEventSample> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Renders the snapshot as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"value\":{}}}",
                json_str(c.name),
                json_str(&c.label),
                c.value
            ));
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"value\":{}}}",
                json_str(g.name),
                json_str(&g.label),
                g.value
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_str(h.name),
                json_str(&h.label),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{le},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = match s.parent {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            };
            out.push_str(&format!(
                "{{\"seq\":{},\"parent\":{},\"name\":{},\"label\":{},\"at_nanos\":{},\"work_units\":{}}}",
                s.seq,
                parent,
                json_str(s.name),
                json_str(&s.label),
                s.at_nanos,
                s.work_units
            ));
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = match e.parent {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            };
            out.push_str(&format!(
                "{{\"id\":{},\"trace\":{},\"parent\":{},\"kind\":{},\"name\":{},\"label\":{},\"device\":{},\"at_nanos\":{},\"bytes\":{}}}",
                e.id,
                e.trace,
                parent,
                json_str(e.kind),
                json_str(e.name),
                json_str(&e.label),
                e.device,
                e.at_nanos,
                e.bytes
            ));
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"start_nanos\":{},\"end_nanos\":{},\"counters\":[",
                w.index, w.start_nanos, w.end_nanos
            ));
            for (j, t) in w.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"label\":{},\"delta\":{},\"total\":{}}}",
                    json_str(t.name),
                    json_str(&t.label),
                    t.delta,
                    t.total
                ));
            }
            out.push_str("],\"levels\":[");
            for (j, l) in w.levels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"label\":{},\"value\":{}}}",
                    json_str(l.name),
                    json_str(&l.label),
                    l.value
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"channels\":[");
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"provider\":{},\"adaptive\":{},\"switches\":{},\"messages\":{},\"bytes\":{},\"doorbells\":{},\"launch_overhead_ns\":{},\"ewma_latency_ns\":{},\"throughput_bytes_per_sec\":{},\"buckets\":[",
                json_str(&ch.label),
                json_str(&ch.provider),
                ch.adaptive,
                ch.switches,
                ch.messages,
                ch.bytes,
                ch.doorbells,
                ch.launch_overhead_ns,
                ch.ewma_latency_ns,
                ch.throughput_bytes_per_sec
            ));
            for (j, b) in ch.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"bucket_bytes\":{},\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                    b.bucket_bytes, b.count, b.p50_ns, b.p99_ns
                ));
            }
            out.push_str("]}");
        }
        out.push_str(&format!("],\"events_dropped\":{}}}", self.events_dropped));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics snapshot")?;
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for c in &self.counters {
                writeln!(f, "    {}{{{}}} = {}", c.name, c.label, c.value)?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  gauges (high-water):")?;
            for g in &self.gauges {
                writeln!(f, "    {}{{{}}} = {}", g.name, g.label, g.value)?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms:")?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "    {}{{{}}}: count={} sum={} min={} max={}",
                    h.name, h.label, h.count, h.sum, h.min, h.max
                )?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "  spans:")?;
            for s in &self.spans {
                let indent = if s.parent.is_some() { "      " } else { "    " };
                writeln!(
                    f,
                    "{indent}[{}] {} ({}) at={}ns work={}",
                    s.seq, s.name, s.label, s.at_nanos, s.work_units
                )?;
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            writeln!(f, "  trace events (flight recorder):")?;
            for e in &self.events {
                let parent = match e.parent {
                    Some(p) => format!("<-{p}"),
                    None => "root".to_owned(),
                };
                writeln!(
                    f,
                    "    [{}] t{} {} {} ({}) dev={} at={}ns bytes={} {}",
                    e.id, e.trace, e.kind, e.name, e.label, e.device, e.at_nanos, e.bytes, parent
                )?;
            }
            if self.events_dropped > 0 {
                writeln!(f, "    ({} older events dropped)", self.events_dropped)?;
            }
        }
        if !self.windows.is_empty() {
            writeln!(f, "  telemetry windows:")?;
            for w in &self.windows {
                writeln!(
                    f,
                    "    [{}] {}..{} ns: {} counter tracks, {} levels",
                    w.index,
                    w.start_nanos,
                    w.end_nanos,
                    w.counters.len(),
                    w.levels.len()
                )?;
            }
        }
        if !self.channels.is_empty() {
            writeln!(f, "  channel cost profiles:")?;
            for ch in &self.channels {
                writeln!(
                    f,
                    "    {} via {}{}: msgs={} bytes={} doorbells={} launch={}ns ewma={}ns switches={}",
                    ch.label,
                    ch.provider,
                    if ch.adaptive { " (adaptive)" } else { "" },
                    ch.messages,
                    ch.bytes,
                    ch.doorbells,
                    ch.launch_overhead_ns,
                    ch.ewma_latency_ns,
                    ch.switches
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = MetricsSnapshot::default();
        assert_eq!(
            s.to_json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[],\"spans\":[],\"events\":[],\"windows\":[],\"channels\":[],\"events_dropped\":0}"
        );
    }

    #[test]
    fn lookup_helpers() {
        let s = MetricsSnapshot {
            counters: vec![
                CounterSample {
                    name: "c",
                    label: "a".into(),
                    value: 2,
                },
                CounterSample {
                    name: "c",
                    label: "b".into(),
                    value: 3,
                },
            ],
            ..Default::default()
        };
        assert_eq!(s.counter("c", "a"), Some(2));
        assert_eq!(s.counter("c", "z"), None);
        assert_eq!(s.counter_total("c"), 5);
    }
}
