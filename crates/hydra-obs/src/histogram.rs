//! Power-of-two-bucketed histograms.
//!
//! Values land in bucket `i` when they need exactly `i` significant bits
//! (bucket 0 holds only zero, bucket 1 holds 1, bucket 2 holds 2–3, bucket
//! 3 holds 4–7, …). Bucketing by bit length keeps recording O(1), needs no
//! configuration, and — crucially for the determinism guarantee — involves
//! no floating point.

/// One histogram: 65 power-of-two buckets plus running aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`: its bit length.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `i` admits (`2^i - 1`, saturating).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn every_power_of_two_boundary_is_exact() {
        // For each i in 1..64: 2^i opens bucket i+1, and 2^i - 1 is the
        // last value bucket i admits. No off-by-one anywhere in 64 bits.
        for i in 1..64usize {
            let pow = 1u64 << i;
            assert_eq!(Histogram::bucket_index(pow), i + 1, "2^{i} opens a bucket");
            assert_eq!(Histogram::bucket_index(pow - 1), i, "2^{i}-1 closes one");
            assert_eq!(Histogram::bucket_bound(i), pow - 1);
        }
        // The extremes: zero is alone in bucket 0; u64::MAX tops bucket 64.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        assert_eq!(Histogram::bucket_bound(65), u64::MAX, "bounds saturate");
    }

    #[test]
    fn boundary_values_land_in_adjacent_buckets() {
        let mut h = Histogram::new();
        h.record(1023); // bucket 10 (<= 1023)
        h.record(1024); // bucket 11 (<= 2047)
        h.record(1025); // bucket 11
        assert_eq!(h.nonzero_buckets(), vec![(1023, 1), (2047, 2)]);
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 2)]);
    }

    #[test]
    fn aggregates_track_observations() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [5, 1, 9, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 24);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        // 1 -> bucket 1 (<=1); 5 -> bucket 3 (<=7); 9,9 -> bucket 4 (<=15).
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (7, 1), (15, 2)]);
    }
}
