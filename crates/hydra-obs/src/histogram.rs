//! Power-of-two-bucketed histograms.
//!
//! Values land in bucket `i` when they need exactly `i` significant bits
//! (bucket 0 holds only zero, bucket 1 holds 1, bucket 2 holds 2–3, bucket
//! 3 holds 4–7, …). Bucketing by bit length keeps recording O(1), needs no
//! configuration, and — crucially for the determinism guarantee — involves
//! no floating point.

/// One histogram: 65 power-of-two buckets plus running aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`: its bit length.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `i` admits (`2^i - 1`, saturating).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }

    /// Estimates the `pct`-th percentile (`0..=100`) by bucket-bound
    /// interpolation; `None` when empty.
    ///
    /// The estimator is integer-only: the target rank is the ceiling
    /// nearest rank `⌈pct·count/100⌉`, the containing bucket is found by
    /// cumulative count, and the value is interpolated linearly between
    /// the bucket's edges (tightened to the observed `min`/`max`). This
    /// trades the exactness of `hydra_sim::stats::Samples::percentile`
    /// (which keeps every sample and interpolates between neighbours)
    /// for O(1) recording and fixed memory: the estimate always lands in
    /// the same power-of-two bucket as the exact answer.
    pub fn quantile(&self, pct: u64) -> Option<u64> {
        quantile_from_buckets(
            &self.nonzero_buckets(),
            self.count,
            self.min(),
            self.max,
            pct,
        )
    }

    /// Median estimate ([`Histogram::quantile`] at 50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(50)
    }

    /// 95th-percentile estimate ([`Histogram::quantile`] at 95).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(95)
    }

    /// 99th-percentile estimate ([`Histogram::quantile`] at 99).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99)
    }
}

/// Shared quantile estimator over `(inclusive bound, count)` buckets in
/// ascending order — the representation both [`Histogram`] and
/// [`crate::HistogramSample`] expose.
pub(crate) fn quantile_from_buckets(
    buckets: &[(u64, u64)],
    count: u64,
    min: u64,
    max: u64,
    pct: u64,
) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let pct = pct.min(100);
    #[allow(clippy::cast_possible_truncation)] // quotient <= count, a u64
    let rank = ((u128::from(pct) * u128::from(count)).div_ceil(100) as u64).clamp(1, count);
    let mut seen = 0u64;
    for &(bound, in_bucket) in buckets {
        seen += in_bucket;
        if seen >= rank {
            // A bucket bounded by 2^i - 1 starts at 2^(i-1); bucket 0
            // (bound 0) holds only zero.
            let bucket_lo = if bound == 0 { 0 } else { bound / 2 + 1 };
            let lo = bucket_lo.max(min).min(max);
            let hi = bound.min(max).max(lo);
            let pos = rank - (seen - in_bucket); // 1..=in_bucket
            let span = u128::from(hi - lo);
            #[allow(clippy::cast_possible_truncation)] // result <= hi - lo
            return Some(lo + ((span * u128::from(pos)) / u128::from(in_bucket)) as u64);
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn every_power_of_two_boundary_is_exact() {
        // For each i in 1..64: 2^i opens bucket i+1, and 2^i - 1 is the
        // last value bucket i admits. No off-by-one anywhere in 64 bits.
        for i in 1..64usize {
            let pow = 1u64 << i;
            assert_eq!(Histogram::bucket_index(pow), i + 1, "2^{i} opens a bucket");
            assert_eq!(Histogram::bucket_index(pow - 1), i, "2^{i}-1 closes one");
            assert_eq!(Histogram::bucket_bound(i), pow - 1);
        }
        // The extremes: zero is alone in bucket 0; u64::MAX tops bucket 64.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        assert_eq!(Histogram::bucket_bound(65), u64::MAX, "bounds saturate");
    }

    #[test]
    fn boundary_values_land_in_adjacent_buckets() {
        let mut h = Histogram::new();
        h.record(1023); // bucket 10 (<= 1023)
        h.record(1024); // bucket 11 (<= 2047)
        h.record(1025); // bucket 11
        assert_eq!(h.nonzero_buckets(), vec![(1023, 1), (2047, 2)]);
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 2)]);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantiles_of_a_constant_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7);
        }
        for pct in [0, 1, 50, 95, 99, 100] {
            assert_eq!(h.quantile(pct), Some(7), "pct {pct}");
        }
    }

    #[test]
    fn quantiles_respect_power_of_two_boundaries() {
        // 99 values in bucket 10 (513..=1023) and one outlier at 4096:
        // p50/p95 must stay inside bucket 10, p100 must hit the outlier.
        let mut h = Histogram::new();
        for i in 0..99u64 {
            h.record(513 + i * 5);
        }
        h.record(4096);
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        assert!((513..=1023).contains(&p50), "p50 {p50} inside bucket");
        assert!((513..=1023).contains(&p95), "p95 {p95} inside bucket");
        assert!(p50 <= p95, "quantiles are monotone");
        assert_eq!(h.quantile(100), Some(4096), "p100 is the max");
    }

    #[test]
    fn quantile_interpolates_within_bucket_and_clamps_to_extremes() {
        // 1..=8: ranks are exact at bucket edges. p50 rank 4 falls in
        // bucket 3 (4..=7) at position 1 of 4 -> 4 + 3/4 = 4.
        let mut h = Histogram::new();
        for v in 1..=8 {
            h.record(v);
        }
        assert_eq!(h.quantile(0), Some(1), "p0 is the min");
        assert_eq!(h.p50(), Some(4));
        assert_eq!(h.quantile(100), Some(8), "p100 is the max");
        // The estimate lands in the same bucket as the exact answer 4.5.
        assert_eq!(
            Histogram::bucket_index(h.p50().unwrap()),
            Histogram::bucket_index(4)
        );
    }

    #[test]
    fn quantile_tightens_bucket_edges_to_observed_min_max() {
        // Both observations sit in bucket 10 (513..=1023); min/max pin
        // the interpolation range to [600, 700].
        let mut h = Histogram::new();
        h.record(600);
        h.record(700);
        let p99 = h.p99().unwrap();
        assert!((600..=700).contains(&p99), "p99 {p99} within min..=max");
    }

    #[test]
    fn aggregates_track_observations() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [5, 1, 9, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 24);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        // 1 -> bucket 1 (<=1); 5 -> bucket 3 (<=7); 9,9 -> bucket 4 (<=15).
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (7, 1), (15, 2)]);
    }
}
