//! UDP-lite endpoints and flow measurement.
//!
//! [`UdpStack`] is a minimal per-host datagram demultiplexer: sockets bind
//! ports, incoming packets are queued per socket, reads drain the queue.
//! [`FlowMeter`] measures what the paper's client measures: per-packet
//! inter-arrival gaps (jitter), loss, and reordering of a sequenced flow.

use std::collections::{HashMap, VecDeque};

use hydra_sim::stats::Samples;
use hydra_sim::time::SimTime;

use crate::packet::{Packet, Port};

/// Error returned by [`UdpStack::bind`] when the port is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortInUse(pub Port);

impl std::fmt::Display for PortInUse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port {} already bound", self.0)
    }
}

impl std::error::Error for PortInUse {}

/// A per-host datagram demultiplexer.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_net::packet::{MacAddr, Packet, Port, Protocol};
/// use hydra_net::udp::UdpStack;
///
/// let mut stack = UdpStack::new();
/// stack.bind(Port(5000)).unwrap();
/// let pkt = Packet::new(MacAddr(1), Port(9), MacAddr(2), Port(5000), Protocol::Udp, Bytes::new());
/// assert!(stack.deliver(pkt));
/// assert!(stack.recv(Port(5000)).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct UdpStack {
    sockets: HashMap<Port, VecDeque<Packet>>,
    delivered: u64,
    rejected: u64,
}

impl UdpStack {
    /// Creates a stack with no bound sockets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a port.
    ///
    /// # Errors
    ///
    /// Returns [`PortInUse`] if the port is already bound.
    pub fn bind(&mut self, port: Port) -> Result<(), PortInUse> {
        if self.sockets.contains_key(&port) {
            return Err(PortInUse(port));
        }
        self.sockets.insert(port, VecDeque::new());
        Ok(())
    }

    /// Releases a port, dropping any queued packets. Returns `true` if the
    /// port was bound.
    pub fn unbind(&mut self, port: Port) -> bool {
        self.sockets.remove(&port).is_some()
    }

    /// Offers an incoming packet; returns `true` if a socket accepted it.
    pub fn deliver(&mut self, packet: Packet) -> bool {
        match self.sockets.get_mut(&packet.dst_port) {
            Some(q) => {
                q.push_back(packet);
                self.delivered += 1;
                true
            }
            None => {
                self.rejected += 1;
                false
            }
        }
    }

    /// Dequeues the oldest packet for `port`, if any.
    pub fn recv(&mut self, port: Port) -> Option<Packet> {
        self.sockets.get_mut(&port)?.pop_front()
    }

    /// Number of packets queued on `port` (0 if unbound).
    pub fn pending(&self, port: Port) -> usize {
        self.sockets.get(&port).map_or(0, |q| q.len())
    }

    /// `(delivered, rejected)` lifetime counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.delivered, self.rejected)
    }
}

/// Receive-side measurement of a sequenced flow.
///
/// Records inter-arrival gaps in milliseconds — the quantity plotted in the
/// paper's Figure 9 and summarized in Table 2 — plus loss and reordering.
#[derive(Debug, Clone, Default)]
pub struct FlowMeter {
    last_arrival: Option<SimTime>,
    highest_seq: Option<u64>,
    received: u64,
    reordered: u64,
    gaps_ms: Samples,
}

impl FlowMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of sequence number `seq` at `now`.
    pub fn on_arrival(&mut self, now: SimTime, seq: u64) {
        if let Some(prev) = self.last_arrival {
            self.gaps_ms
                .record(now.saturating_duration_since(prev).as_millis_f64());
        }
        self.last_arrival = Some(now);
        match self.highest_seq {
            Some(h) if seq <= h => self.reordered += 1,
            _ => self.highest_seq = Some(seq),
        }
        self.received += 1;
    }

    /// Packets received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets that arrived after a later sequence number (reordered or
    /// duplicated).
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Packets missing, assuming sequence numbers start at 0 and the
    /// highest seen is the last sent.
    pub fn lost(&self) -> u64 {
        match self.highest_seq {
            None => 0,
            Some(h) => (h + 1).saturating_sub(self.received),
        }
    }

    /// The inter-arrival gap samples, in milliseconds.
    pub fn gaps_ms(&self) -> &Samples {
        &self.gaps_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MacAddr, Protocol};
    use bytes::Bytes;

    fn pkt(dst_port: u16, seq: u64) -> Packet {
        Packet::new(
            MacAddr(1),
            Port(9),
            MacAddr(2),
            Port(dst_port),
            Protocol::Udp,
            Bytes::new(),
        )
        .with_seq(seq)
    }

    #[test]
    fn bind_and_deliver() {
        let mut s = UdpStack::new();
        s.bind(Port(5)).unwrap();
        assert!(s.deliver(pkt(5, 0)));
        assert!(!s.deliver(pkt(6, 0)));
        assert_eq!(s.pending(Port(5)), 1);
        assert_eq!(s.counters(), (1, 1));
    }

    #[test]
    fn double_bind_fails() {
        let mut s = UdpStack::new();
        s.bind(Port(5)).unwrap();
        assert_eq!(s.bind(Port(5)), Err(PortInUse(Port(5))));
    }

    #[test]
    fn recv_is_fifo() {
        let mut s = UdpStack::new();
        s.bind(Port(5)).unwrap();
        s.deliver(pkt(5, 1));
        s.deliver(pkt(5, 2));
        assert_eq!(s.recv(Port(5)).unwrap().seq, 1);
        assert_eq!(s.recv(Port(5)).unwrap().seq, 2);
        assert!(s.recv(Port(5)).is_none());
    }

    #[test]
    fn unbind_drops_queue() {
        let mut s = UdpStack::new();
        s.bind(Port(5)).unwrap();
        s.deliver(pkt(5, 1));
        assert!(s.unbind(Port(5)));
        assert!(!s.unbind(Port(5)));
        assert_eq!(s.pending(Port(5)), 0);
        assert!(s.recv(Port(5)).is_none());
    }

    #[test]
    fn meter_measures_gaps() {
        let mut m = FlowMeter::new();
        m.on_arrival(SimTime::from_millis(0), 0);
        m.on_arrival(SimTime::from_millis(5), 1);
        m.on_arrival(SimTime::from_millis(12), 2);
        assert_eq!(m.gaps_ms().values(), &[5.0, 7.0]);
        assert_eq!(m.received(), 3);
        assert_eq!(m.lost(), 0);
        assert_eq!(m.reordered(), 0);
    }

    #[test]
    fn meter_counts_loss_and_reordering() {
        let mut m = FlowMeter::new();
        m.on_arrival(SimTime::from_millis(0), 0);
        m.on_arrival(SimTime::from_millis(5), 3); // 1, 2 missing so far
        m.on_arrival(SimTime::from_millis(9), 2); // late arrival: reordered
        assert_eq!(m.reordered(), 1);
        assert_eq!(m.lost(), 1); // seq 1 never arrived
    }
}
