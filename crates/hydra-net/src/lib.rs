//! # hydra-net — network substrate
//!
//! The wire between the TiVoPC video server and client: packets and
//! addressing ([`packet`]), serializing point-to-point links ([`link`]), a
//! learning store-and-forward switch with finite queues ([`switch`]), a
//! per-host UDP demultiplexer and flow jitter meter ([`udp`]), and the
//! NFS-lite protocol plus in-memory NAS that both the video server and the
//! "smart disk" talk to ([`nfs`]), and a sans-io TCP-lite with handshake,
//! retransmission, reordering and flow control — the protocol the TOE
//! debate the paper opens with is about ([`tcp`]).
//!
//! Like `hydra-hw`, everything here is a passive timing/accounting model
//! driven by the `hydra-sim` event loop from the machine models above it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod nfs;
pub mod packet;
pub mod switch;
pub mod tcp;
pub mod udp;

pub use link::{Link, LinkSpec};
pub use nfs::{FileHandle, NasServer, NasTiming, NfsError, NfsRequest, NfsResponse};
pub use packet::{MacAddr, Packet, Port, Protocol};
pub use switch::{ForwardOutcome, PortId, Switch, SwitchStats};
pub use tcp::{TcpEndpoint, TcpFlags, TcpSegment, TcpState, TcpStats, MSS};
pub use udp::{FlowMeter, UdpStack};
