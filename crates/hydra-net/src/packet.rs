//! Packets and addressing.
//!
//! The TiVoPC video stream is UDP over Ethernet through a gigabit switch.
//! [`Packet`] models a frame on the wire: addressing, a protocol tag, a
//! payload, and bookkeeping (sequence number, send timestamp) that the
//! jitter experiment reads on the receive side.

use std::fmt;

use bytes::Bytes;
use hydra_sim::time::SimTime;

/// A link-layer station address (a simplified MAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub u64);

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mac:{:03}", self.0)
    }
}

/// A transport-layer port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// Protocol carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Datagram traffic (the video stream).
    Udp,
    /// NFS-lite RPC (the NAS protocol).
    Nfs,
    /// HYDRA control traffic (OOB channel over the wire, if routed).
    HydraControl,
}

/// Link-layer + transport-layer header sizes we charge on the wire.
pub const HEADER_BYTES: usize = 14 + 20 + 8; // eth + ip + udp

/// A network packet.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_net::packet::{MacAddr, Packet, Port, Protocol};
/// use hydra_sim::time::SimTime;
///
/// let p = Packet::new(
///     MacAddr(1), Port(5000),
///     MacAddr(2), Port(6000),
///     Protocol::Udp,
///     Bytes::from_static(b"frame-data"),
/// ).with_seq(42).stamped(SimTime::ZERO);
/// assert_eq!(p.wire_bytes(), 10 + hydra_net::packet::HEADER_BYTES);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sender station.
    pub src: MacAddr,
    /// Sender port.
    pub src_port: Port,
    /// Destination station.
    pub dst: MacAddr,
    /// Destination port.
    pub dst_port: Port,
    /// Carried protocol.
    pub protocol: Protocol,
    /// Application payload.
    pub payload: Bytes,
    /// Application-level sequence number (0 if unused).
    pub seq: u64,
    /// When the application handed the packet to the stack.
    pub sent_at: SimTime,
}

impl Packet {
    /// Creates a packet with zero sequence number and unset timestamp.
    pub fn new(
        src: MacAddr,
        src_port: Port,
        dst: MacAddr,
        dst_port: Port,
        protocol: Protocol,
        payload: Bytes,
    ) -> Self {
        Packet {
            src,
            src_port,
            dst,
            dst_port,
            protocol,
            payload,
            seq: 0,
            sent_at: SimTime::ZERO,
        }
    }

    /// Sets the application sequence number.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the send timestamp.
    pub fn stamped(mut self, at: SimTime) -> Self {
        self.sent_at = at;
        self
    }

    /// Total bytes on the wire, including headers.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + HEADER_BYTES
    }

    /// Builds the reply skeleton: source and destination swapped, same
    /// protocol, empty payload.
    pub fn reply_to(&self) -> Packet {
        Packet::new(
            self.dst,
            self.dst_port,
            self.src,
            self.src_port,
            self.protocol,
            Bytes::new(),
        )
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} -> {}{} {:?} seq={} len={}",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.protocol,
            self.seq,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(
            MacAddr(1),
            Port(1000),
            MacAddr(2),
            Port(2000),
            Protocol::Udp,
            Bytes::from_static(&[0u8; 100]),
        )
    }

    #[test]
    fn wire_bytes_include_headers() {
        assert_eq!(pkt().wire_bytes(), 100 + HEADER_BYTES);
    }

    #[test]
    fn builders_chain() {
        let p = pkt().with_seq(9).stamped(SimTime::from_millis(3));
        assert_eq!(p.seq, 9);
        assert_eq!(p.sent_at, SimTime::from_millis(3));
    }

    #[test]
    fn reply_swaps_endpoints() {
        let r = pkt().reply_to();
        assert_eq!(r.src, MacAddr(2));
        assert_eq!(r.dst, MacAddr(1));
        assert_eq!(r.src_port, Port(2000));
        assert_eq!(r.dst_port, Port(1000));
        assert!(r.payload.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let s = pkt().to_string();
        assert!(s.contains("mac:001"));
        assert!(s.contains("Udp"));
    }
}
