//! A store-and-forward Ethernet switch.
//!
//! The testbed's Dell PowerConnect 6024 is modelled as a learning switch
//! with per-output-port queues: a frame is received completely, looked up,
//! then queued for its output link. Queueing behind cross traffic is the
//! network's contribution to packet jitter; finite queues drop frames
//! (the paper's UDP stream is deliberately unreliable).

use std::collections::HashMap;

use hydra_sim::time::{SimDuration, SimTime};

use crate::link::{Link, LinkSpec};
use crate::packet::{MacAddr, Packet};

/// A switch port identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Outcome of offering a frame to the switch.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardOutcome {
    /// The frame will be delivered out `port` and arrives at `arrival`.
    Deliver {
        /// Output port chosen by the MAC table (or flood target).
        port: PortId,
        /// Arrival instant at the far end of the output link.
        arrival: SimTime,
    },
    /// The frame was dropped because the output queue was full.
    Dropped,
    /// The destination is unknown and flooding found no other port.
    NoRoute,
}

/// Statistics of one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwitchStats {
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames dropped at full output queues.
    pub dropped: u64,
    /// Frames flooded (unknown destination).
    pub flooded: u64,
}

/// A learning store-and-forward switch.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_net::link::LinkSpec;
/// use hydra_net::packet::{MacAddr, Packet, Port, Protocol};
/// use hydra_net::switch::{ForwardOutcome, PortId, Switch};
/// use hydra_sim::time::SimTime;
///
/// let mut sw = Switch::new(LinkSpec::gigabit(), 64);
/// let a = sw.add_port(MacAddr(1));
/// let b = sw.add_port(MacAddr(2));
/// let pkt = Packet::new(MacAddr(1), Port(1), MacAddr(2), Port(2), Protocol::Udp, Bytes::new());
/// match sw.forward(SimTime::ZERO, a, &pkt) {
///     ForwardOutcome::Deliver { port, .. } => assert_eq!(port, b),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Switch {
    ports: Vec<Link>,
    stations: Vec<MacAddr>,
    mac_table: HashMap<MacAddr, PortId>,
    queue_capacity: usize,
    /// Pending departures per port, pruned lazily: (departure instant).
    in_flight: Vec<Vec<SimTime>>,
    latency: SimDuration,
    spec_template: LinkSpec,
    stats: SwitchStats,
}

impl Switch {
    /// Creates a switch whose output links all share `spec`, with
    /// `queue_capacity` frames of buffering per output port.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero.
    pub fn new(spec: LinkSpec, queue_capacity: usize) -> Self {
        assert!(
            queue_capacity > 0,
            "Switch: queue_capacity must be positive"
        );
        Switch {
            ports: Vec::new(),
            stations: Vec::new(),
            mac_table: HashMap::new(),
            queue_capacity,
            in_flight: Vec::new(),
            latency: SimDuration::from_micros(4), // store-and-forward + lookup
            spec_template: spec,
            stats: SwitchStats::default(),
        }
    }

    /// Attaches a station, returning its port.
    pub fn add_port(&mut self, station: MacAddr) -> PortId {
        let id = PortId(self.ports.len());
        self.ports.push(Link::new(self.spec_template));
        self.stations.push(station);
        self.mac_table.insert(station, id);
        self.in_flight.push(Vec::new());
        id
    }

    /// The station attached to `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn station_at(&self, port: PortId) -> MacAddr {
        self.stations[port.0]
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn queue_len(&mut self, port: PortId, now: SimTime) -> usize {
        let q = &mut self.in_flight[port.0];
        q.retain(|&dep| dep > now);
        q.len()
    }

    /// Offers a frame received on `ingress` at `now`.
    ///
    /// Learning: the source MAC is bound to `ingress`. Lookup: known
    /// destinations go out their port; unknown destinations are "flooded",
    /// which in this point-to-point model means delivered to the only
    /// other port if exactly one exists.
    pub fn forward(&mut self, now: SimTime, ingress: PortId, packet: &Packet) -> ForwardOutcome {
        self.mac_table.insert(packet.src, ingress);
        let egress = match self.mac_table.get(&packet.dst) {
            Some(&p) if p != ingress => p,
            Some(_) => return ForwardOutcome::NoRoute, // hairpin: not modelled
            None => {
                self.stats.flooded += 1;
                let candidates: Vec<PortId> = (0..self.ports.len())
                    .map(PortId)
                    .filter(|&p| p != ingress)
                    .collect();
                match candidates.as_slice() {
                    [only] => *only,
                    _ => return ForwardOutcome::NoRoute,
                }
            }
        };
        if self.queue_len(egress, now) >= self.queue_capacity {
            self.stats.dropped += 1;
            return ForwardOutcome::Dropped;
        }
        let ready = now + self.latency;
        let arrival = self.ports[egress.0].transmit(ready, packet.wire_bytes());
        self.in_flight[egress.0].push(arrival);
        self.stats.forwarded += 1;
        ForwardOutcome::Deliver {
            port: egress,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Port, Protocol};
    use bytes::Bytes;

    fn pkt(src: u64, dst: u64, len: usize) -> Packet {
        Packet::new(
            MacAddr(src),
            Port(1),
            MacAddr(dst),
            Port(2),
            Protocol::Udp,
            Bytes::from(vec![0u8; len]),
        )
    }

    fn switch() -> (Switch, PortId, PortId) {
        let mut sw = Switch::new(LinkSpec::gigabit(), 4);
        let a = sw.add_port(MacAddr(1));
        let b = sw.add_port(MacAddr(2));
        (sw, a, b)
    }

    #[test]
    fn known_destination_routes_directly() {
        let (mut sw, a, b) = switch();
        match sw.forward(SimTime::ZERO, a, &pkt(1, 2, 100)) {
            ForwardOutcome::Deliver { port, arrival } => {
                assert_eq!(port, b);
                assert!(arrival > SimTime::ZERO);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats().forwarded, 1);
    }

    #[test]
    fn unknown_destination_floods_to_single_peer() {
        let mut sw = Switch::new(LinkSpec::gigabit(), 4);
        let a = sw.add_port(MacAddr(1));
        let _b = sw.add_port(MacAddr(2));
        // Destination 9 was never learned.
        match sw.forward(SimTime::ZERO, a, &pkt(1, 9, 10)) {
            ForwardOutcome::Deliver { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats().flooded, 1);
    }

    #[test]
    fn unknown_destination_with_many_peers_is_no_route() {
        let mut sw = Switch::new(LinkSpec::gigabit(), 4);
        let a = sw.add_port(MacAddr(1));
        sw.add_port(MacAddr(2));
        sw.add_port(MacAddr(3));
        assert_eq!(
            sw.forward(SimTime::ZERO, a, &pkt(1, 9, 10)),
            ForwardOutcome::NoRoute
        );
    }

    #[test]
    fn full_queue_drops() {
        let (mut sw, a, _b) = switch(); // capacity 4
                                        // Big frames, all offered at t=0: they occupy the output queue.
        let mut outcomes = Vec::new();
        for i in 0..6 {
            outcomes.push(sw.forward(SimTime::ZERO, a, &pkt(1, 2, 9000 + i)));
        }
        let drops = outcomes
            .iter()
            .filter(|o| matches!(o, ForwardOutcome::Dropped))
            .count();
        assert_eq!(drops, 2);
        assert_eq!(sw.stats().dropped, 2);
    }

    #[test]
    fn queue_drains_over_time() {
        let (mut sw, a, _b) = switch();
        for _ in 0..4 {
            sw.forward(SimTime::ZERO, a, &pkt(1, 2, 1000));
        }
        // At t=0 the queue is full...
        assert_eq!(
            sw.forward(SimTime::ZERO, a, &pkt(1, 2, 1000)),
            ForwardOutcome::Dropped
        );
        // ...but after the frames depart it accepts again.
        let later = SimTime::from_millis(1);
        assert!(matches!(
            sw.forward(later, a, &pkt(1, 2, 1000)),
            ForwardOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn learning_rebinds_moved_station() {
        let mut sw = Switch::new(LinkSpec::gigabit(), 4);
        let a = sw.add_port(MacAddr(1));
        let b = sw.add_port(MacAddr(2));
        // Station 2 actually speaks from port a: learning rebinds it.
        sw.forward(SimTime::ZERO, a, &pkt(2, 1, 10));
        // Now traffic to 2 goes out port a, so from b it is deliverable.
        match sw.forward(SimTime::ZERO, b, &pkt(1, 2, 10)) {
            ForwardOutcome::Deliver { port, .. } => assert_eq!(port, a),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hairpin_is_no_route() {
        let (mut sw, a, _) = switch();
        // Destination on the same port it arrived from.
        sw.forward(SimTime::ZERO, a, &pkt(2, 1, 10)); // learn 2 -> a
        assert_eq!(
            sw.forward(SimTime::ZERO, a, &pkt(1, 2, 10)),
            ForwardOutcome::NoRoute
        );
    }
}
