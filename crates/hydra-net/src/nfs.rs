//! NFS-lite: a miniature network file protocol and in-memory NAS.
//!
//! The paper's testbed stores all media on a NAS: the video server reads
//! movies over NFS, and the "smart disk" (a programmable NIC exporting a
//! block device) writes the recorded stream back to the same NAS. This
//! module provides the protocol ([`NfsRequest`]/[`NfsResponse`] with a
//! compact wire encoding) and the server ([`NasServer`]) with a simple
//! service-time model.

use std::collections::HashMap;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hydra_sim::time::SimDuration;

/// An opaque file handle issued by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh:{}", self.0)
    }
}

/// A request from client to server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsRequest {
    /// Resolve a path to a handle.
    Lookup {
        /// Path to resolve.
        path: String,
    },
    /// Create (or truncate) a file and return its handle.
    Create {
        /// Path to create.
        path: String,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Target file.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Bytes requested.
        len: u32,
    },
    /// Write `data` at `offset`.
    Write {
        /// Target file.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        data: Bytes,
    },
    /// Query file size.
    GetAttr {
        /// Target file.
        fh: FileHandle,
    },
}

/// A response from server to client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsResponse {
    /// Successful lookup/create.
    Handle(FileHandle),
    /// Successful read (may be shorter than requested at EOF).
    Data(Bytes),
    /// Successful write of this many bytes.
    Written(u32),
    /// Attributes: current size in bytes.
    Attr {
        /// File size.
        size: u64,
    },
    /// Failure.
    Error(NfsError),
}

/// Protocol errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsError {
    /// Path not found on lookup.
    NotFound,
    /// Handle not recognized.
    StaleHandle,
    /// Malformed request bytes.
    BadRequest,
}

impl fmt::Display for NfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NfsError::NotFound => "path not found",
            NfsError::StaleHandle => "stale file handle",
            NfsError::BadRequest => "malformed request",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NfsError {}

const OP_LOOKUP: u8 = 1;
const OP_CREATE: u8 = 2;
const OP_READ: u8 = 3;
const OP_WRITE: u8 = 4;
const OP_GETATTR: u8 = 5;

impl NfsRequest {
    /// Encodes the request to its wire representation.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            NfsRequest::Lookup { path } => {
                b.put_u8(OP_LOOKUP);
                b.put_u16(path.len() as u16);
                b.put_slice(path.as_bytes());
            }
            NfsRequest::Create { path } => {
                b.put_u8(OP_CREATE);
                b.put_u16(path.len() as u16);
                b.put_slice(path.as_bytes());
            }
            NfsRequest::Read { fh, offset, len } => {
                b.put_u8(OP_READ);
                b.put_u64(fh.0);
                b.put_u64(*offset);
                b.put_u32(*len);
            }
            NfsRequest::Write { fh, offset, data } => {
                b.put_u8(OP_WRITE);
                b.put_u64(fh.0);
                b.put_u64(*offset);
                b.put_u32(data.len() as u32);
                b.put_slice(data);
            }
            NfsRequest::GetAttr { fh } => {
                b.put_u8(OP_GETATTR);
                b.put_u64(fh.0);
            }
        }
        b.freeze()
    }

    /// Decodes a request from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NfsError::BadRequest`] on truncated or unknown input.
    pub fn decode(mut raw: Bytes) -> Result<NfsRequest, NfsError> {
        if raw.is_empty() {
            return Err(NfsError::BadRequest);
        }
        let op = raw.get_u8();
        let take_path = |raw: &mut Bytes| -> Result<String, NfsError> {
            if raw.remaining() < 2 {
                return Err(NfsError::BadRequest);
            }
            let n = raw.get_u16() as usize;
            if raw.remaining() < n {
                return Err(NfsError::BadRequest);
            }
            let path = raw.split_to(n);
            String::from_utf8(path.to_vec()).map_err(|_| NfsError::BadRequest)
        };
        match op {
            OP_LOOKUP => Ok(NfsRequest::Lookup {
                path: take_path(&mut raw)?,
            }),
            OP_CREATE => Ok(NfsRequest::Create {
                path: take_path(&mut raw)?,
            }),
            OP_READ => {
                if raw.remaining() < 20 {
                    return Err(NfsError::BadRequest);
                }
                Ok(NfsRequest::Read {
                    fh: FileHandle(raw.get_u64()),
                    offset: raw.get_u64(),
                    len: raw.get_u32(),
                })
            }
            OP_WRITE => {
                if raw.remaining() < 20 {
                    return Err(NfsError::BadRequest);
                }
                let fh = FileHandle(raw.get_u64());
                let offset = raw.get_u64();
                let n = raw.get_u32() as usize;
                if raw.remaining() < n {
                    return Err(NfsError::BadRequest);
                }
                Ok(NfsRequest::Write {
                    fh,
                    offset,
                    data: raw.split_to(n),
                })
            }
            OP_GETATTR => {
                if raw.remaining() < 8 {
                    return Err(NfsError::BadRequest);
                }
                Ok(NfsRequest::GetAttr {
                    fh: FileHandle(raw.get_u64()),
                })
            }
            _ => Err(NfsError::BadRequest),
        }
    }
}

/// Per-operation service-time model of the NAS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasTiming {
    /// Fixed cost of any request (RPC decode, metadata).
    pub per_request: SimDuration,
    /// Additional cost per kilobyte of data moved.
    pub per_kib: SimDuration,
}

impl Default for NasTiming {
    fn default() -> Self {
        Self::typical()
    }
}

impl NasTiming {
    /// A mid-2000s NAS head with cached disks.
    pub fn typical() -> Self {
        NasTiming {
            per_request: SimDuration::from_micros(80),
            per_kib: SimDuration::from_micros(9),
        }
    }
}

/// An in-memory NAS: file store + protocol handler.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_net::nfs::{NasServer, NfsRequest, NfsResponse};
///
/// let mut nas = NasServer::new(Default::default());
/// let (resp, _t) = nas.handle(&NfsRequest::Create { path: "/movie.mpg".into() });
/// let NfsResponse::Handle(fh) = resp else { panic!() };
/// let (resp, _t) = nas.handle(&NfsRequest::Write { fh, offset: 0, data: Bytes::from_static(b"abc") });
/// assert_eq!(resp, NfsResponse::Written(3));
/// ```
#[derive(Debug, Clone)]
pub struct NasServer {
    timing: NasTiming,
    files: HashMap<FileHandle, Vec<u8>>,
    paths: HashMap<String, FileHandle>,
    next_handle: u64,
    requests: u64,
}

impl Default for NasServer {
    fn default() -> Self {
        Self::new(NasTiming::typical())
    }
}

impl NasServer {
    /// Creates an empty NAS.
    pub fn new(timing: NasTiming) -> Self {
        NasServer {
            timing,
            files: HashMap::new(),
            paths: HashMap::new(),
            next_handle: 1,
            requests: 0,
        }
    }

    /// Preloads a file (e.g. the movie the video server streams).
    pub fn preload(&mut self, path: &str, contents: Vec<u8>) -> FileHandle {
        let fh = FileHandle(self.next_handle);
        self.next_handle += 1;
        self.files.insert(fh, contents);
        self.paths.insert(path.to_owned(), fh);
        fh
    }

    /// Total requests served.
    pub fn requests_served(&self) -> u64 {
        self.requests
    }

    /// Current size of the file behind `fh`, if it exists.
    pub fn file_size(&self, fh: FileHandle) -> Option<u64> {
        self.files.get(&fh).map(|f| f.len() as u64)
    }

    /// Handles one request, returning the response and the service time.
    pub fn handle(&mut self, req: &NfsRequest) -> (NfsResponse, SimDuration) {
        self.requests += 1;
        let mut data_bytes = 0usize;
        let resp = match req {
            NfsRequest::Lookup { path } => match self.paths.get(path) {
                Some(&fh) => NfsResponse::Handle(fh),
                None => NfsResponse::Error(NfsError::NotFound),
            },
            NfsRequest::Create { path } => {
                let fh = *self.paths.entry(path.clone()).or_insert_with(|| {
                    let fh = FileHandle(self.next_handle);
                    self.next_handle += 1;
                    fh
                });
                self.files.insert(fh, Vec::new());
                NfsResponse::Handle(fh)
            }
            NfsRequest::Read { fh, offset, len } => match self.files.get(fh) {
                None => NfsResponse::Error(NfsError::StaleHandle),
                Some(f) => {
                    let start = (*offset as usize).min(f.len());
                    let end = (start + *len as usize).min(f.len());
                    data_bytes = end - start;
                    NfsResponse::Data(Bytes::copy_from_slice(&f[start..end]))
                }
            },
            NfsRequest::Write { fh, offset, data } => match self.files.get_mut(fh) {
                None => NfsResponse::Error(NfsError::StaleHandle),
                Some(f) => {
                    let end = *offset as usize + data.len();
                    if f.len() < end {
                        f.resize(end, 0);
                    }
                    f[*offset as usize..end].copy_from_slice(data);
                    data_bytes = data.len();
                    NfsResponse::Written(data.len() as u32)
                }
            },
            NfsRequest::GetAttr { fh } => match self.files.get(fh) {
                None => NfsResponse::Error(NfsError::StaleHandle),
                Some(f) => NfsResponse::Attr {
                    size: f.len() as u64,
                },
            },
        };
        let service =
            self.timing.per_request + self.timing.per_kib * (data_bytes as u64).div_ceil(1024);
        (resp, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_round_trip() {
        let mut nas = NasServer::default();
        let (r, _) = nas.handle(&NfsRequest::Create { path: "/a".into() });
        let NfsResponse::Handle(fh) = r else {
            panic!("{r:?}")
        };
        nas.handle(&NfsRequest::Write {
            fh,
            offset: 0,
            data: Bytes::from_static(b"hello world"),
        });
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 6,
            len: 5,
        });
        assert_eq!(r, NfsResponse::Data(Bytes::from_static(b"world")));
    }

    #[test]
    fn lookup_preloaded_file() {
        let mut nas = NasServer::default();
        let fh = nas.preload("/movie", vec![7; 100]);
        let (r, _) = nas.handle(&NfsRequest::Lookup {
            path: "/movie".into(),
        });
        assert_eq!(r, NfsResponse::Handle(fh));
        let (r, _) = nas.handle(&NfsRequest::GetAttr { fh });
        assert_eq!(r, NfsResponse::Attr { size: 100 });
    }

    #[test]
    fn lookup_missing_is_not_found() {
        let mut nas = NasServer::default();
        let (r, _) = nas.handle(&NfsRequest::Lookup { path: "/x".into() });
        assert_eq!(r, NfsResponse::Error(NfsError::NotFound));
    }

    #[test]
    fn stale_handle_reported() {
        let mut nas = NasServer::default();
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh: FileHandle(999),
            offset: 0,
            len: 1,
        });
        assert_eq!(r, NfsResponse::Error(NfsError::StaleHandle));
    }

    #[test]
    fn read_past_eof_truncates() {
        let mut nas = NasServer::default();
        let fh = nas.preload("/f", vec![1, 2, 3]);
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 2,
            len: 10,
        });
        assert_eq!(r, NfsResponse::Data(Bytes::from_static(&[3])));
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 50,
            len: 10,
        });
        assert_eq!(r, NfsResponse::Data(Bytes::new()));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut nas = NasServer::default();
        let fh = nas.preload("/f", vec![]);
        nas.handle(&NfsRequest::Write {
            fh,
            offset: 4,
            data: Bytes::from_static(b"x"),
        });
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 0,
            len: 5,
        });
        assert_eq!(
            r,
            NfsResponse::Data(Bytes::from_static(&[0, 0, 0, 0, b'x']))
        );
    }

    #[test]
    fn create_truncates_existing() {
        let mut nas = NasServer::default();
        let fh = nas.preload("/f", vec![1; 10]);
        let (r, _) = nas.handle(&NfsRequest::Create { path: "/f".into() });
        assert_eq!(r, NfsResponse::Handle(fh));
        assert_eq!(nas.file_size(fh), Some(0));
    }

    #[test]
    fn service_time_scales_with_data() {
        let mut nas = NasServer::new(NasTiming {
            per_request: SimDuration::from_micros(100),
            per_kib: SimDuration::from_micros(10),
        });
        let fh = nas.preload("/f", vec![0; 8192]);
        let (_, t_small) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 0,
            len: 1024,
        });
        let (_, t_large) = nas.handle(&NfsRequest::Read {
            fh,
            offset: 0,
            len: 8192,
        });
        assert_eq!(t_small, SimDuration::from_micros(110));
        assert_eq!(t_large, SimDuration::from_micros(180));
    }

    #[test]
    fn wire_round_trip_all_ops() {
        let reqs = vec![
            NfsRequest::Lookup {
                path: "/a/b".into(),
            },
            NfsRequest::Create { path: "/c".into() },
            NfsRequest::Read {
                fh: FileHandle(7),
                offset: 1024,
                len: 512,
            },
            NfsRequest::Write {
                fh: FileHandle(9),
                offset: 4096,
                data: Bytes::from_static(b"payload"),
            },
            NfsRequest::GetAttr { fh: FileHandle(3) },
        ];
        for req in reqs {
            let decoded = NfsRequest::decode(req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(NfsRequest::decode(Bytes::new()), Err(NfsError::BadRequest));
        assert_eq!(
            NfsRequest::decode(Bytes::from_static(&[99])),
            Err(NfsError::BadRequest)
        );
        // Truncated read.
        assert_eq!(
            NfsRequest::decode(Bytes::from_static(&[OP_READ, 1, 2])),
            Err(NfsError::BadRequest)
        );
        // Write with length exceeding remaining bytes.
        let mut b = BytesMut::new();
        b.put_u8(OP_WRITE);
        b.put_u64(1);
        b.put_u64(0);
        b.put_u32(100);
        b.put_slice(b"short");
        assert_eq!(NfsRequest::decode(b.freeze()), Err(NfsError::BadRequest));
    }
}
