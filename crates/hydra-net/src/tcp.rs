//! TCP-lite: a miniature but real TCP.
//!
//! The paper's §1.1 frames offloading as the generalization of the TCP
//! Offload Engine. To make that concrete, this module implements enough
//! of TCP to *be* offloadable: three-way handshake, MSS segmentation,
//! cumulative acks, out-of-order reassembly, retransmission on timeout,
//! a flow-control window, and FIN teardown. The same [`TcpEndpoint`]
//! state machine runs on the host CPU (conventional stack) or on the
//! NIC's processor (a TOE); only who pays the cycles differs.
//!
//! The implementation is deliberately sans-io: segments go in and come
//! out, time is passed explicitly, and the caller owns delivery — which
//! is what makes it host/device agnostic and exhaustively testable.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hydra_sim::time::{SimDuration, SimTime};

/// Maximum segment size (payload bytes per segment).
pub const MSS: usize = 1460;

/// Segment control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize (connection setup).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
}

/// One TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement (next expected byte), valid if
    /// `flags.ack`.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive-window advertisement, in bytes.
    pub window: u32,
    /// Payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Serialized size on the wire (16-byte header + payload).
    pub fn wire_size(&self) -> usize {
        16 + self.payload.len()
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_size());
        b.put_u32(self.seq);
        b.put_u32(self.ack);
        let mut flags = 0u8;
        if self.flags.syn {
            flags |= 1;
        }
        if self.flags.ack {
            flags |= 2;
        }
        if self.flags.fin {
            flags |= 4;
        }
        b.put_u8(flags);
        b.put_u8(0); // reserved
        b.put_u16(0); // checksum placeholder (the link is error-free)
        b.put_u32(self.window);
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Decodes from wire bytes.
    ///
    /// Returns `None` when fewer than 16 header bytes are present.
    pub fn decode(mut raw: Bytes) -> Option<TcpSegment> {
        if raw.len() < 16 {
            return None;
        }
        let seq = raw.get_u32();
        let ack = raw.get_u32();
        let flags = raw.get_u8();
        raw.advance(3);
        let window = raw.get_u32();
        Some(TcpSegment {
            seq,
            ack,
            flags: TcpFlags {
                syn: flags & 1 != 0,
                ack: flags & 2 != 0,
                fin: flags & 4 != 0,
            },
            window,
            payload: raw,
        })
    }
}

/// Connection state (the subset of RFC 793's diagram this stack walks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open; waiting for SYN.
    Listen,
    /// Active open; SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Data flows.
    Established,
    /// FIN sent, awaiting its ack (and the peer's FIN).
    FinWait,
    /// Peer's FIN received; local side may still send.
    CloseWait,
    /// Local FIN sent after CloseWait.
    LastAck,
}

/// Counters of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Segments retransmitted.
    pub retransmissions: u64,
    /// Segments received and accepted.
    pub segments_received: u64,
    /// Out-of-order segments buffered.
    pub out_of_order: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
}

/// One endpoint of a TCP-lite connection.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_net::tcp::{TcpEndpoint, TcpState};
/// use hydra_sim::time::SimTime;
///
/// let mut a = TcpEndpoint::client(1);
/// let mut b = TcpEndpoint::listener(2);
/// let syn = a.connect(SimTime::ZERO);
/// let synack = b.on_segment(&syn, SimTime::ZERO).pop().unwrap();
/// let ack = a.on_segment(&synack, SimTime::ZERO).pop().unwrap();
/// b.on_segment(&ack, SimTime::ZERO);
/// assert_eq!(a.state(), TcpState::Established);
/// assert_eq!(b.state(), TcpState::Established);
/// ```
#[derive(Debug, Clone)]
pub struct TcpEndpoint {
    state: TcpState,
    /// Next sequence number to assign to outgoing bytes.
    snd_nxt: u32,
    /// Oldest unacknowledged byte.
    snd_una: u32,
    /// Peer's advertised window.
    snd_wnd: u32,
    /// Next byte expected from the peer.
    rcv_nxt: u32,
    /// Local receive window advertisement.
    rcv_wnd: u32,
    /// Unacknowledged segments, by starting seq, with last-send time.
    inflight: BTreeMap<u32, (TcpSegment, SimTime)>,
    /// Bytes queued by the application, not yet segmented into flight.
    send_queue: Vec<u8>,
    /// Out-of-order received segments, by seq.
    reorder: BTreeMap<u32, Bytes>,
    /// In-order bytes ready for the application.
    deliverable: Vec<u8>,
    /// Retransmission timeout.
    rto: SimDuration,
    /// FIN has been queued by the application.
    fin_pending: bool,
    /// Our FIN's sequence number, once sent.
    fin_seq: Option<u32>,
    stats: TcpStats,
}

impl TcpEndpoint {
    fn new(state: TcpState, isn: u32) -> Self {
        TcpEndpoint {
            state,
            snd_nxt: isn,
            snd_una: isn,
            snd_wnd: 64 * 1024,
            rcv_nxt: 0,
            rcv_wnd: 64 * 1024,
            inflight: BTreeMap::new(),
            send_queue: Vec::new(),
            reorder: BTreeMap::new(),
            deliverable: Vec::new(),
            rto: SimDuration::from_millis(200),
            fin_pending: false,
            fin_seq: None,
            stats: TcpStats::default(),
        }
    }

    /// Creates an active opener with the given initial sequence number.
    pub fn client(isn: u32) -> Self {
        Self::new(TcpState::Closed, isn)
    }

    /// Creates a passive listener.
    pub fn listener(isn: u32) -> Self {
        Self::new(TcpState::Listen, isn)
    }

    /// The connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The counters.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Bytes accepted from the peer and ready for the application.
    pub fn take_deliverable(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.deliverable)
    }

    /// True when every sent byte (and FIN) has been acknowledged and the
    /// send queue is empty.
    pub fn all_acked(&self) -> bool {
        self.inflight.is_empty() && self.send_queue.is_empty() && !self.fin_pending
    }

    fn mk_segment(&self, seq: u32, flags: TcpFlags, payload: Bytes) -> TcpSegment {
        TcpSegment {
            seq,
            ack: self.rcv_nxt,
            flags: TcpFlags { ack: true, ..flags },
            window: self.rcv_wnd,
            payload,
        }
    }

    /// Starts an active open, returning the SYN to transmit.
    ///
    /// # Panics
    ///
    /// Panics unless the endpoint is freshly created ([`TcpState::Closed`]).
    pub fn connect(&mut self, now: SimTime) -> TcpSegment {
        assert_eq!(self.state, TcpState::Closed, "connect on used endpoint");
        self.state = TcpState::SynSent;
        let seg = TcpSegment {
            seq: self.snd_nxt,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            window: self.rcv_wnd,
            payload: Bytes::new(),
        };
        self.inflight.insert(self.snd_nxt, (seg.clone(), now));
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN occupies one seq
        self.stats.segments_sent += 1;
        seg
    }

    /// Queues application data for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the connection is not open for sending.
    pub fn send(&mut self, data: &[u8]) {
        assert!(
            matches!(self.state, TcpState::Established | TcpState::CloseWait),
            "send in {:?}",
            self.state
        );
        assert!(!self.fin_pending, "send after close");
        self.send_queue.extend_from_slice(data);
    }

    /// Queues a FIN after any pending data.
    pub fn close(&mut self) {
        self.fin_pending = true;
    }

    /// Emits as many new segments as the window allows (call after
    /// `send`/`close` or when acks open the window).
    pub fn pump_output(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait | TcpState::LastAck
        ) {
            return out;
        }
        // Bytes in flight right now.
        let in_flight = self.snd_nxt.wrapping_sub(self.snd_una);
        let mut budget = (self.snd_wnd.saturating_sub(in_flight)) as usize;
        while !self.send_queue.is_empty() && budget > 0 {
            let n = self.send_queue.len().min(MSS).min(budget);
            let payload = Bytes::from(self.send_queue.drain(..n).collect::<Vec<u8>>());
            let seg = self.mk_segment(self.snd_nxt, TcpFlags::default(), payload);
            self.inflight.insert(self.snd_nxt, (seg.clone(), now));
            self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
            self.stats.segments_sent += 1;
            budget -= n;
            out.push(seg);
        }
        if self.fin_pending && self.send_queue.is_empty() && self.fin_seq.is_none() {
            let seg = self.mk_segment(
                self.snd_nxt,
                TcpFlags {
                    fin: true,
                    ..TcpFlags::default()
                },
                Bytes::new(),
            );
            self.inflight.insert(self.snd_nxt, (seg.clone(), now));
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_pending = false;
            self.stats.segments_sent += 1;
            self.state = match self.state {
                TcpState::CloseWait => TcpState::LastAck,
                _ => TcpState::FinWait,
            };
            out.push(seg);
        }
        out
    }

    /// Processes one incoming segment, returning segments to transmit in
    /// response (acks, handshake steps, and any newly window-permitted
    /// data).
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        self.stats.segments_received += 1;
        self.snd_wnd = seg.window;

        match self.state {
            TcpState::Listen if seg.flags.syn => {
                self.rcv_nxt = seg.seq.wrapping_add(1);
                self.state = TcpState::SynReceived;
                let synack = TcpSegment {
                    seq: self.snd_nxt,
                    ack: self.rcv_nxt,
                    flags: TcpFlags {
                        syn: true,
                        ack: true,
                        fin: false,
                    },
                    window: self.rcv_wnd,
                    payload: Bytes::new(),
                };
                self.inflight.insert(self.snd_nxt, (synack.clone(), now));
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.stats.segments_sent += 1;
                out.push(synack);
                return out;
            }
            TcpState::SynSent if seg.flags.syn && seg.flags.ack => {
                self.rcv_nxt = seg.seq.wrapping_add(1);
                self.process_ack(seg.ack);
                self.state = TcpState::Established;
                let ack = self.mk_segment(self.snd_nxt, TcpFlags::default(), Bytes::new());
                self.stats.segments_sent += 1;
                out.push(ack);
                return out;
            }
            TcpState::SynReceived if seg.flags.ack => {
                self.process_ack(seg.ack);
                if self.inflight.is_empty() {
                    self.state = TcpState::Established;
                }
                // Fall through: the ack may carry data.
            }
            _ => {}
        }

        if seg.flags.ack {
            self.process_ack(seg.ack);
            if self.state == TcpState::FinWait
                && self.fin_seq.is_some_and(|f| seg.ack.wrapping_sub(f) == 1)
            {
                // Our FIN acked; stay in FinWait until the peer's FIN.
            }
            if self.state == TcpState::LastAck && self.inflight.is_empty() {
                self.state = TcpState::Closed;
            }
        }

        let mut should_ack = false;
        if !seg.payload.is_empty() {
            should_ack = true;
            self.accept_data(seg.seq, seg.payload.clone());
        }
        if seg.flags.fin {
            // The FIN is in-sequence only once all data before it arrived.
            if seg.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                should_ack = true;
                self.state = match self.state {
                    TcpState::FinWait => TcpState::Closed,
                    TcpState::Established | TcpState::SynReceived => TcpState::CloseWait,
                    s => s,
                };
            } else {
                // FIN past a hole: ack what we have; sender retransmits.
                should_ack = true;
            }
        }
        if should_ack {
            let ack = self.mk_segment(self.snd_nxt, TcpFlags::default(), Bytes::new());
            self.stats.segments_sent += 1;
            out.push(ack);
        }
        // Acks may have opened the window for queued data.
        out.extend(self.pump_output(now));
        out
    }

    fn process_ack(&mut self, ack: u32) {
        // Remove fully acknowledged segments.
        let acked: Vec<u32> = self
            .inflight
            .iter()
            .filter(|(&seq, (seg, _))| {
                let len =
                    seg.payload.len() as u32 + u32::from(seg.flags.syn) + u32::from(seg.flags.fin);
                // seq + len <= ack, with wrapping arithmetic.
                ack.wrapping_sub(seq) >= len && ack.wrapping_sub(seq) <= u32::MAX / 2
            })
            .map(|(&seq, _)| seq)
            .collect();
        for seq in acked {
            self.inflight.remove(&seq);
        }
        if ack.wrapping_sub(self.snd_una) <= u32::MAX / 2 {
            self.snd_una = ack;
        }
    }

    fn accept_data(&mut self, seq: u32, payload: Bytes) {
        if seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.deliverable.extend_from_slice(&payload);
            // Drain contiguous out-of-order segments.
            while let Some(next) = self.reorder.remove(&self.rcv_nxt) {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(next.len() as u32);
                self.deliverable.extend_from_slice(&next);
            }
        } else if seq.wrapping_sub(self.rcv_nxt) <= u32::MAX / 2 {
            // Future segment: buffer it.
            if self.reorder.insert(seq, payload).is_none() {
                self.stats.out_of_order += 1;
            }
        } else {
            // Old duplicate.
            self.stats.duplicates += 1;
        }
    }

    /// Retransmits any segment whose RTO expired. Call periodically.
    pub fn tick(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        let rto = self.rto;
        for (seg, sent_at) in self.inflight.values_mut() {
            if now.saturating_duration_since(*sent_at) >= rto {
                *sent_at = now;
                self.stats.segments_sent += 1;
                self.stats.retransmissions += 1;
                // Refresh the cumulative ack before retransmitting.
                let mut retx = seg.clone();
                retx.ack = self.rcv_nxt;
                out.push(retx);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_sim::rng::DetRng;

    /// Runs segments between two endpoints until quiescent, with an
    /// optional per-segment drop predicate.
    fn exchange(
        a: &mut TcpEndpoint,
        b: &mut TcpEndpoint,
        initial: Vec<(bool, TcpSegment)>, // (from_a, segment)
        mut drop: impl FnMut(&TcpSegment) -> bool,
    ) {
        let mut queue = initial;
        let mut now = SimTime::ZERO;
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 10_000, "exchange did not quiesce");
            if let Some((from_a, seg)) = queue.pop() {
                if drop(&seg) {
                    continue;
                }
                let replies = if from_a {
                    b.on_segment(&seg, now)
                } else {
                    a.on_segment(&seg, now)
                };
                for r in replies {
                    queue.push((!from_a, r));
                }
                continue;
            }
            // Queue empty: advance time and fire retransmissions.
            now += SimDuration::from_millis(250);
            let mut progressed = false;
            for seg in a.tick(now) {
                queue.push((true, seg));
                progressed = true;
            }
            for seg in b.tick(now) {
                queue.push((false, seg));
                progressed = true;
            }
            if !progressed {
                return;
            }
        }
    }

    fn connected() -> (TcpEndpoint, TcpEndpoint) {
        let mut a = TcpEndpoint::client(1000);
        let mut b = TcpEndpoint::listener(5000);
        let syn = a.connect(SimTime::ZERO);
        exchange(&mut a, &mut b, vec![(true, syn)], |_| false);
        assert_eq!(a.state(), TcpState::Established);
        assert_eq!(b.state(), TcpState::Established);
        (a, b)
    }

    #[test]
    fn three_way_handshake() {
        connected();
    }

    #[test]
    fn segment_wire_round_trip() {
        let seg = TcpSegment {
            seq: 7,
            ack: 9,
            flags: TcpFlags {
                syn: true,
                ack: true,
                fin: true,
            },
            window: 1234,
            payload: Bytes::from_static(b"data"),
        };
        assert_eq!(TcpSegment::decode(seg.encode()), Some(seg.clone()));
        assert_eq!(seg.wire_size(), 20);
        assert_eq!(TcpSegment::decode(Bytes::from_static(&[0; 8])), None);
    }

    #[test]
    fn bulk_transfer_no_loss() {
        let (mut a, mut b) = connected();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        a.send(&data);
        let initial: Vec<_> = a
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (true, s))
            .collect();
        exchange(&mut a, &mut b, initial, |_| false);
        assert_eq!(b.take_deliverable(), data);
        assert!(a.all_acked());
        assert_eq!(a.stats().retransmissions, 0);
    }

    #[test]
    fn transfer_survives_heavy_loss() {
        let (mut a, mut b) = connected();
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
        a.send(&data);
        let initial: Vec<_> = a
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (true, s))
            .collect();
        let mut rng = DetRng::new(7);
        exchange(&mut a, &mut b, initial, |_| rng.chance(0.3));
        assert_eq!(b.take_deliverable(), data);
        assert!(a.all_acked());
        assert!(a.stats().retransmissions > 0, "loss must cause retx");
    }

    #[test]
    fn out_of_order_reassembly() {
        let (mut a, mut b) = connected();
        a.send(&[1u8; MSS]);
        a.send(&[2u8; MSS]);
        a.send(&[3u8; MSS]);
        let mut segs = a.pump_output(SimTime::ZERO);
        assert_eq!(segs.len(), 3);
        segs.reverse(); // deliver 3, 2, 1
        for s in &segs {
            b.on_segment(s, SimTime::ZERO);
        }
        let got = b.take_deliverable();
        assert_eq!(got.len(), 3 * MSS);
        assert!(got[..MSS].iter().all(|&x| x == 1));
        assert!(got[2 * MSS..].iter().all(|&x| x == 3));
        assert_eq!(b.stats().out_of_order, 2);
    }

    #[test]
    fn duplicates_are_discarded() {
        let (mut a, mut b) = connected();
        a.send(b"hello");
        let segs = a.pump_output(SimTime::ZERO);
        b.on_segment(&segs[0], SimTime::ZERO);
        b.on_segment(&segs[0], SimTime::ZERO); // duplicate
        assert_eq!(b.take_deliverable(), b"hello");
        assert_eq!(b.stats().duplicates, 1);
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut a, mut b) = connected();
        a.send(b"ping from a");
        b.send(b"pong from b");
        let mut initial: Vec<_> = a
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (true, s))
            .collect();
        initial.extend(b.pump_output(SimTime::ZERO).into_iter().map(|s| (false, s)));
        exchange(&mut a, &mut b, initial, |_| false);
        assert_eq!(b.take_deliverable(), b"ping from a");
        assert_eq!(a.take_deliverable(), b"pong from b");
    }

    #[test]
    fn graceful_close_both_ways() {
        let (mut a, mut b) = connected();
        a.send(b"last words");
        a.close();
        let initial: Vec<_> = a
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (true, s))
            .collect();
        exchange(&mut a, &mut b, initial, |_| false);
        assert_eq!(b.state(), TcpState::CloseWait);
        assert_eq!(b.take_deliverable(), b"last words");
        // B closes too.
        b.close();
        let initial: Vec<_> = b
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (false, s))
            .collect();
        exchange(&mut a, &mut b, initial, |_| false);
        assert_eq!(a.state(), TcpState::Closed);
        assert_eq!(b.state(), TcpState::Closed);
    }

    #[test]
    fn close_with_loss_still_terminates() {
        let (mut a, mut b) = connected();
        a.send(&[9u8; 5000]);
        a.close();
        let initial: Vec<_> = a
            .pump_output(SimTime::ZERO)
            .into_iter()
            .map(|s| (true, s))
            .collect();
        let mut rng = DetRng::new(3);
        exchange(&mut a, &mut b, initial, |_| rng.chance(0.25));
        assert_eq!(b.take_deliverable(), vec![9u8; 5000]);
        assert_eq!(b.state(), TcpState::CloseWait);
    }

    #[test]
    fn window_limits_inflight_bytes() {
        let (mut a, b) = connected();
        // Shrink B's advertised window via a handcrafted ack.
        let small_window = TcpSegment {
            seq: b.snd_nxt,
            ack: a.snd_nxt,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            window: 2 * MSS as u32,
            payload: Bytes::new(),
        };
        a.on_segment(&small_window, SimTime::ZERO);
        a.send(&vec![1u8; 10 * MSS]);
        let segs = a.pump_output(SimTime::ZERO);
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert_eq!(sent, 2 * MSS, "window must cap the burst");
    }

    #[test]
    #[should_panic(expected = "send after close")]
    fn send_after_close_panics() {
        let (mut a, _) = connected();
        a.close();
        a.send(b"too late");
    }
}
