//! Point-to-point links.
//!
//! A [`Link`] is one direction of a full-duplex cable: it serializes frames
//! at line rate, adds propagation delay, and queues behind earlier frames.
//! Two links back-to-back with a [`Switch`] in between reproduce the
//! paper's host ↔ Dell PowerConnect ↔ host topology.
//!
//! [`Switch`]: crate::switch::Switch

use hydra_sim::time::{SimDuration, SimTime};

/// Static parameters of a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bits_per_sec: u64,
    /// Propagation delay (cable + PHY).
    pub propagation: SimDuration,
}

impl LinkSpec {
    /// Gigabit Ethernet with a few hundred nanoseconds of PHY latency.
    pub fn gigabit() -> Self {
        LinkSpec {
            bits_per_sec: 1_000_000_000,
            propagation: SimDuration::from_nanos(300),
        }
    }

    /// 100 Mb/s Ethernet.
    pub fn fast_ethernet() -> Self {
        LinkSpec {
            bits_per_sec: 100_000_000,
            propagation: SimDuration::from_micros(1),
        }
    }

    /// Time to clock `bytes` onto the wire.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 8 * 1_000_000_000).div_ceil(u128::from(self.bits_per_sec));
        SimDuration::from_nanos(ns as u64)
    }
}

/// One direction of a cable, with serialization queueing.
///
/// # Examples
///
/// ```
/// use hydra_net::link::{Link, LinkSpec};
/// use hydra_sim::time::SimTime;
///
/// let mut l = Link::new(LinkSpec::gigabit());
/// let arrival = l.transmit(SimTime::ZERO, 1250); // 10 microseconds at 1 Gb/s
/// assert_eq!(arrival.as_micros(), 10); // + 0.3us propagation rounds down
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    busy_until: SimTime,
    frames: u64,
    bytes: u64,
    busy_ns: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            busy_until: SimTime::ZERO,
            frames: 0,
            bytes: 0,
            busy_ns: 0,
        }
    }

    /// The static parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Frames transmitted.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Payload bytes transmitted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Instant the link finishes its queued frames.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Cumulative wire occupancy: total serialization time clocked onto
    /// the link, in nanoseconds. Windowed deltas of this counter over the
    /// window width are the link's utilization timeline (propagation is
    /// pipeline latency, not occupancy, so it is excluded).
    pub fn busy_nanos(&self) -> u64 {
        self.busy_ns
    }

    /// Transmits a frame of `bytes` starting no earlier than `now`,
    /// returning the instant the last bit *arrives* at the far end.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = self.busy_until.max(now);
        let serialization = self.spec.serialization(bytes);
        let done_sending = start + serialization;
        self.busy_until = done_sending;
        self.frames += 1;
        self.bytes += bytes as u64;
        self.busy_ns += serialization.as_nanos();
        done_sending + self.spec.propagation
    }

    /// Transmits a burst of frames back-to-back starting no earlier than
    /// `now`: one queueing decision for the whole burst, frames clocked
    /// out with no inter-frame gap. Returns the per-frame arrival
    /// instants (same wire timing as sequential [`Link::transmit`] calls,
    /// but stats and `busy_until` are updated once).
    pub fn transmit_batch(&mut self, now: SimTime, frames: &[usize]) -> Vec<SimTime> {
        let start = self.busy_until.max(now);
        let mut cursor = start;
        let mut arrivals = Vec::with_capacity(frames.len());
        let mut total = 0u64;
        for &bytes in frames {
            cursor += self.spec.serialization(bytes);
            total += bytes as u64;
            arrivals.push(cursor + self.spec.propagation);
        }
        if !frames.is_empty() {
            self.busy_until = cursor;
            self.frames += frames.len() as u64;
            self.bytes += total;
            self.busy_ns += cursor.duration_since(start).as_nanos();
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_line_rate() {
        let s = LinkSpec::gigabit();
        assert_eq!(s.serialization(125), SimDuration::from_micros(1));
        assert_eq!(s.serialization(0), SimDuration::ZERO);
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let mut l = Link::new(LinkSpec {
            bits_per_sec: 8_000_000_000, // 1 byte/ns
            propagation: SimDuration::from_nanos(50),
        });
        let a1 = l.transmit(SimTime::ZERO, 100);
        let a2 = l.transmit(SimTime::ZERO, 100);
        assert_eq!(a1, SimTime::from_nanos(150));
        assert_eq!(a2, SimTime::from_nanos(250));
        assert_eq!(l.frames(), 2);
        assert_eq!(l.bytes(), 200);
        assert_eq!(l.busy_nanos(), 200, "occupancy excludes propagation");
    }

    #[test]
    fn batched_and_sequential_occupancy_agree() {
        let spec = LinkSpec {
            bits_per_sec: 8_000_000_000, // 1 byte/ns
            propagation: SimDuration::from_nanos(50),
        };
        let mut seq = Link::new(spec);
        let mut batched = Link::new(spec);
        let frames = [100usize, 200, 50];
        for &b in &frames {
            seq.transmit(SimTime::ZERO, b);
        }
        batched.transmit_batch(SimTime::ZERO, &frames);
        assert_eq!(seq.busy_nanos(), 350);
        assert_eq!(batched.busy_nanos(), seq.busy_nanos());
    }

    #[test]
    fn batched_transmit_matches_sequential_wire_timing() {
        let spec = LinkSpec {
            bits_per_sec: 8_000_000_000, // 1 byte/ns
            propagation: SimDuration::from_nanos(50),
        };
        let mut seq = Link::new(spec);
        let mut batched = Link::new(spec);
        let frames = [100usize, 200, 50];
        let expected: Vec<SimTime> = frames
            .iter()
            .map(|&b| seq.transmit(SimTime::ZERO, b))
            .collect();
        let arrivals = batched.transmit_batch(SimTime::ZERO, &frames);
        assert_eq!(arrivals, expected, "wire is serialized either way");
        assert_eq!(batched.frames(), 3);
        assert_eq!(batched.bytes(), 350);
        assert_eq!(batched.busy_until(), seq.busy_until());
        assert!(batched.transmit_batch(SimTime::ZERO, &[]).is_empty());
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = Link::new(LinkSpec::gigabit());
        let arrival = l.transmit(SimTime::from_millis(10), 125);
        assert_eq!(
            arrival,
            SimTime::from_millis(10) + SimDuration::from_micros(1) + SimDuration::from_nanos(300)
        );
    }
}
