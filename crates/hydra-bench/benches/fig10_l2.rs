//! Bench for Figure 10 / Table 3: server-side L2 and CPU accounting.
//! Prints the normalized L2 slowdown it regenerates.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::bench_suite;
use hydra_tivo::experiments::fig10_tab3;
use hydra_tivo::server::ServerKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_suite();
    let r = fig10_tab3(&cfg);
    for kind in ServerKind::all() {
        println!(
            "fig10 {:<18} normalized L2 {:.3}x, cpu {:.2}%",
            kind.label(),
            r.normalized_l2(kind),
            r.runs
                .iter()
                .find(|x| x.kind == kind)
                .expect("all kinds present")
                .cpu_util
                .summary()
                .mean
                * 100.0
        );
    }
    let mut g = c.benchmark_group("fig10_l2");
    g.sample_size(10);
    g.bench_function("four_scenarios", |b| b.iter(|| black_box(fig10_tab3(&cfg))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
