//! Ablation: dynamic-loading strategy (§4.2) — host-side linking vs
//! device-side loading across Offcode sizes. Prints where each strategy's
//! work and transfer bytes land, then benches both paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::offcode::synthetic_object;
use hydra_link::linker::ExportTable;
use hydra_link::loader::{load_device_side, load_host_side, DeviceMemoryAllocator};
use std::hint::black_box;

fn exports() -> ExportTable {
    let mut e = ExportTable::new();
    e.insert("hydra_heap_alloc", 0xF000);
    e.insert("hydra_channel_write", 0xF010);
    e.insert("hydra_channel_read", 0xF020);
    e
}

fn bench(c: &mut Criterion) {
    println!("loader_ablation: cost split per strategy");
    for code_kb in [4usize, 64, 512] {
        let obj = synthetic_object("bench.Offcode", code_kb * 1024, 4096);
        let exports = exports();
        let mut a1 = DeviceMemoryAllocator::new(0, 1 << 30);
        let mut a2 = DeviceMemoryAllocator::new(0, 1 << 30);
        let (_, host) =
            load_host_side(std::slice::from_ref(&obj), &mut a1, &exports).expect("load succeeds");
        let (_, dev) =
            load_device_side(std::slice::from_ref(&obj), &mut a2, &exports).expect("load succeeds");
        println!(
            "  {:>4} kB text: host-link(host {} / dev {} units, {} B xfer) \
             device-link(host {} / dev {} units, {} B xfer)",
            code_kb,
            host.host_work_units,
            host.device_work_units,
            host.transfer_bytes,
            dev.host_work_units,
            dev.device_work_units,
            dev.transfer_bytes
        );
    }

    let mut g = c.benchmark_group("loader_ablation");
    for code_kb in [4usize, 64] {
        let obj = synthetic_object("bench.Offcode", code_kb * 1024, 4096);
        let exports = exports();
        g.bench_with_input(BenchmarkId::new("host_side", code_kb), &obj, |b, obj| {
            b.iter(|| {
                let mut alloc = DeviceMemoryAllocator::new(0, 1 << 30);
                black_box(
                    load_host_side(std::slice::from_ref(obj), &mut alloc, &exports)
                        .expect("load succeeds"),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("device_side", code_kb), &obj, |b, obj| {
            b.iter(|| {
                let mut alloc = DeviceMemoryAllocator::new(0, 1 << 30);
                black_box(
                    load_device_side(std::slice::from_ref(obj), &mut alloc, &exports)
                        .expect("load succeeds"),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
