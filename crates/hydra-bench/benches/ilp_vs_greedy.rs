//! Bench for §5: exact branch-and-bound ILP vs the greedy heuristic on
//! layout graphs of increasing size. Prints the quality comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::layout::Objective;
use hydra_sim::rng::DetRng;
use hydra_tivo::experiments::{ilp_vs_greedy, random_layout};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let quality = ilp_vs_greedy(42, 30);
    println!(
        "ilp_vs_greedy: ILP strictly better in {:.0}% of cases, mean improvement {:.1}%",
        quality.improvement_fraction() * 100.0,
        quality.mean_improvement() * 100.0
    );

    let mut g = c.benchmark_group("ilp_vs_greedy");
    for n in [4usize, 8, 12, 16] {
        let mut rng = DetRng::new(7);
        let graph = random_layout(&mut rng, n, 3);
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![8.0; 4],
        };
        g.bench_with_input(BenchmarkId::new("ilp", n), &n, |b, _| {
            b.iter(|| black_box(graph.resolve_ilp(&obj).expect("feasible")));
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| black_box(graph.resolve_greedy(&obj)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
