//! Ablation: channel buffering policy (zero-copy DMA rings vs staged
//! kernel copies) across message sizes — the design choice behind the
//! paper's §4.1 zero-copy channel architecture.
//!
//! Prints the modelled per-message latency of each provider so the
//! crossover is visible, then benches the executive's send path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hydra_core::channel::{
    Buffering, ChannelConfig, ChannelExecutive, ChannelProvider, KernelCopyProvider,
    ZeroCopyDmaProvider,
};
use hydra_core::device::DeviceId;
use hydra_sim::time::SimTime;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let zc = ZeroCopyDmaProvider;
    let kc = KernelCopyProvider;
    println!("channel_ablation: modelled latency per message");
    for bytes in [64usize, 1024, 16 * 1024, 256 * 1024] {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut copied = cfg;
        copied.buffering = Buffering::Copied;
        println!(
            "  {:>8} B: zero-copy {} vs kernel-copy {}",
            bytes,
            zc.cost(&cfg).latency(bytes),
            kc.cost(&copied).latency(bytes),
        );
    }

    let mut g = c.benchmark_group("channel_ablation");
    for bytes in [1024usize, 16 * 1024] {
        g.throughput(Throughput::Bytes(bytes as u64));
        for buffering in [Buffering::ZeroCopy, Buffering::Copied] {
            let label = match buffering {
                Buffering::ZeroCopy => "zero_copy",
                Buffering::Copied => "copied",
            };
            g.bench_with_input(BenchmarkId::new(label, bytes), &bytes, |b, &bytes| {
                let mut exec = ChannelExecutive::with_default_providers();
                let mut cfg = ChannelConfig::figure3(DeviceId(1));
                cfg.buffering = buffering;
                cfg.capacity = 1 << 20;
                let id = exec.create_channel(cfg).expect("provider available");
                exec.get_mut(id)
                    .expect("channel exists")
                    .connect_endpoint()
                    .expect("first endpoint");
                let payload = Bytes::from(vec![0u8; bytes]);
                let mut now = SimTime::ZERO;
                b.iter(|| {
                    let ch = exec.get_mut(id).expect("channel exists");
                    let t = ch.send(now, payload.clone()).expect("capacity is huge");
                    // Drain to keep the ring empty.
                    black_box(ch.recv(t, 0));
                    now = t;
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
