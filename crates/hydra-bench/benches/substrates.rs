//! Microbenchmarks of the substrates the reproduction is built on: the
//! cache simulator, the codec, the XML/ODF parser, call marshaling, and
//! the discrete-event engine. These guard the harness's own performance —
//! a 10-minute simulated run must stay cheap in wall-clock terms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hydra_core::call::{Call, Value};
use hydra_hw::cache::{AccessKind, Cache, CacheConfig};
use hydra_media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
use hydra_media::frame::SyntheticVideo;
use hydra_odf::odf::OdfDocument;
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("stream_4k_lines", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l2());
        b.iter(|| {
            for i in 0..4096u64 {
                black_box(cache.access(i * 64, AccessKind::Read));
            }
        });
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let video = SyntheticVideo::new(96, 64);
    let frames: Vec<_> = (0..9).map(|i| video.frame(i)).collect();
    let cfg = CodecConfig {
        quantizer: 6,
        gop: GopConfig::ibbp(),
    };
    let encoded = Encoder::new(cfg).encode_sequence(&frames);
    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_9_frames_96x64", |b| {
        b.iter(|| black_box(Encoder::new(cfg).encode_sequence(&frames)));
    });
    g.bench_function("decode_9_frames_96x64", |b| {
        b.iter(|| {
            let mut d = Decoder::new();
            let mut out = Vec::new();
            for f in &encoded {
                out.extend(d.push(f).expect("valid stream"));
            }
            out.extend(d.flush());
            black_box(out)
        });
    });
    g.finish();
}

fn bench_odf(c: &mut Criterion) {
    let odf = hydra_tivo::components::tivo_client_odfs()
        .pop()
        .expect("non-empty");
    let xml = odf.to_xml();
    c.bench_function("odf_parse", |b| {
        b.iter(|| black_box(OdfDocument::parse(&xml).expect("valid odf")));
    });
}

fn bench_call(c: &mut Criterion) {
    let call = Call::new(hydra_odf::odf::Guid(7), "push")
        .with_arg(Value::Bytes(bytes::Bytes::from(vec![0u8; 1024])))
        .with_arg(Value::U64(9));
    let wire = call.encode();
    let mut g = c.benchmark_group("call");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_1k", |b| b.iter(|| black_box(call.encode())));
    g.bench_function("decode_1k", |b| {
        b.iter(|| black_box(Call::decode(wire.clone()).expect("valid call")));
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            sim.every(SimTime::ZERO, SimDuration::from_micros(10), |sim| {
                *sim.model_mut() += 1;
                *sim.model() < 100_000
            });
            sim.run();
            black_box(sim.events_executed())
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_codec,
    bench_odf,
    bench_call,
    bench_engine
);
criterion_main!(benches);
