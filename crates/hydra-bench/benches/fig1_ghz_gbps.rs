//! Bench for Figure 1: the GHz/Gbps sweep (transmit + receive).
//!
//! Also prints the series it regenerates, so `cargo bench` output carries
//! the figure's data alongside the timing.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_tivo::tcpmodel::{GhzGbpsModel, TcpDirection};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = GhzGbpsModel::paper_setup();
    // Print the regenerated figure once.
    for dir in [TcpDirection::Transmit, TcpDirection::Receive] {
        let pts = model.sweep(dir);
        println!("fig1 {dir:?}:");
        for p in &pts {
            println!(
                "  {:>6} B -> {:.3} GHz/Gbps",
                p.packet_bytes, p.ghz_per_gbps
            );
        }
    }
    let mut g = c.benchmark_group("fig1");
    g.bench_function("sweep_transmit", |b| {
        b.iter(|| black_box(model.sweep(TcpDirection::Transmit)));
    });
    g.bench_function("sweep_receive", |b| {
        b.iter(|| black_box(model.sweep(TcpDirection::Receive)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
