//! Bench for Figure 9 / Table 2: the jitter experiment, one short run per
//! server variant. Prints the regenerated Table 2 rows.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_sim::time::SimDuration;
use hydra_tivo::server::{run_server, ServerConfig, ServerKind};
use std::hint::black_box;

fn cfg(kind: ServerKind) -> ServerConfig {
    let mut c = ServerConfig::paper(kind, 42);
    c.duration = SimDuration::from_secs(6);
    c
}

fn bench(c: &mut Criterion) {
    for kind in [
        ServerKind::Simple,
        ServerKind::Sendfile,
        ServerKind::Offloaded,
    ] {
        let run = run_server(cfg(kind));
        let s = run.jitter_ms.summary();
        println!(
            "tab2 {:<18} median {:.2} ms, avg {:.2} ms, std {:.4} ms",
            kind.label(),
            s.median,
            s.mean,
            s.std_dev
        );
    }
    let mut g = c.benchmark_group("fig9_jitter");
    g.sample_size(10);
    for kind in [
        ServerKind::Simple,
        ServerKind::Sendfile,
        ServerKind::Offloaded,
    ] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_server(cfg(kind))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
