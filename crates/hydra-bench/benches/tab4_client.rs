//! Bench for Table 4 + client L2: the client-side scenarios.
//! Prints the regenerated Table 4 rows.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_sim::time::SimDuration;
use hydra_tivo::client::{run_client, ClientConfig, ClientKind};
use std::hint::black_box;

fn cfg(kind: ClientKind) -> ClientConfig {
    let mut c = ClientConfig::paper(kind, 42);
    c.duration = SimDuration::from_secs(6);
    c
}

fn bench(c: &mut Criterion) {
    for kind in ClientKind::all() {
        let run = run_client(cfg(kind));
        println!(
            "tab4 {:<18} cpu {:.2}%, {} packets, {} frames",
            kind.label(),
            run.cpu_util.summary().mean * 100.0,
            run.packets,
            run.frames_decoded
        );
    }
    let mut g = c.benchmark_group("tab4_client");
    g.sample_size(10);
    for kind in ClientKind::all() {
        g.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_client(cfg(kind))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
