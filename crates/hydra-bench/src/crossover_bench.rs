//! Deterministic provider-crossover benchmarks: PIO vs doorbell-batched
//! DMA vs synchronous DMA, plus the cost-adaptive channel.
//!
//! For every message size in [`SIZES`] the bench creates a fresh
//! Figure-3 channel on the tivo demo deployment's runtime, pinned to
//! each provider in [`PROVIDERS`] via
//! [`hydra_core::runtime::Runtime::create_channel_forced`], bursts
//! [`MESSAGES`] messages at `t = 0`, and records the sim-time at which
//! the last one delivers. The same burst then runs on a cost-adaptive
//! channel ([`hydra_core::runtime::Runtime::create_channel_adaptive`])
//! that auctions every size bucket online from its live
//! [`hydra_core::CostProfile`].
//!
//! Out of the forced runs fall the two crossover points the paper's §4
//! cost model predicts: the size where the doorbell-batched ring
//! overtakes programmed I/O, and the size where synchronous DMA's wire
//! rate overtakes the ring. Both are pinned (with a tolerance band) in
//! `budgets/bench_crossover.json`; the rendered [`render_json`] report
//! is the committed `BENCH_crossover.json`. All timing is simulated, so
//! the report has no `wall_` lines at all — CI byte-diffs the whole
//! thing.
//!
//! The final scenario feeds the same [`hydra_core::ChannelCost`] numbers
//! into the §5 layout objective via
//! [`hydra_core::layout::bus_price`]: repriced from live channel costs,
//! the ILP gives the device slot to the bulk streamer, not the chatty
//! control-plane Offcode.

use bytes::Bytes;
use hydra_core::channel::{AdaptivePolicy, ChannelConfig, ChannelProvider, ZeroCopyDmaProvider};
use hydra_core::device::DeviceId;
use hydra_core::layout::{bus_price, LayoutGraph, LayoutNode};
use hydra_core::providers::install_extras;
use hydra_core::Objective;
use hydra_obs::budget::{check_budget, parse_budget, BudgetParseError, BudgetViolation};
use hydra_obs::{MetricsSnapshot, Recorder};
use hydra_odf::Guid;
use hydra_sim::time::SimTime;
use hydra_tivo::demo::demo_deployment;

use crate::report::{self, num, text, Report};

/// Messages burst through the channel per scenario, all at `t = 0`.
pub const MESSAGES: usize = 48;

/// Message sizes swept, in bytes: one cacheline up to a jumbo payload.
pub const SIZES: &[usize] = &[64, 128, 256, 1024, 4096, 16_384, 65_536, 262_144];

/// The forced providers, in report order.
pub const PROVIDERS: &[&str] = &["pio", "doorbell-batch", "zero-copy-dma"];

/// One provider x size scenario (all sim-time, fully deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossoverResult {
    /// Scenario name (`pio_64`, `adaptive_4096`, ...).
    pub name: String,
    /// The requested provider, or `adaptive`.
    pub provider: String,
    /// Payload bytes per message.
    pub bytes_per_message: usize,
    /// Messages burst at `t = 0`.
    pub messages: usize,
    /// Sim-time of the last delivery.
    pub elapsed_ns: u64,
    /// `elapsed_ns / messages`.
    pub ns_per_message: u64,
    /// `bytes * 1e9 / elapsed_ns`, integer math.
    pub throughput_bytes_per_sec: u64,
    /// The provider the channel ended on (adaptive may switch).
    pub final_provider: String,
    /// Online provider switches performed (0 for forced channels).
    pub switches: u64,
}

/// The crossover points extracted from the forced sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossoverSummary {
    /// Winning forced provider per size, in [`SIZES`] order.
    pub winners: Vec<(usize, String)>,
    /// Smallest swept size where PIO stops winning (the doorbell-batched
    /// ring takes over). 0 if PIO never loses.
    pub pio_to_doorbell_bytes: u64,
    /// Smallest swept size where synchronous DMA wins outright. 0 if it
    /// never does.
    pub doorbell_to_dma_bytes: u64,
}

/// The §5 layout-repricing exercise: two Offcodes, one device slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepriceResult {
    /// Effective DMA throughput at the chatty size (the §5 price feed).
    pub chatty_price_bps: u64,
    /// Effective DMA throughput at the bulk size.
    pub bulk_price_bps: u64,
    /// Device the ILP gives the bulk streamer (expects the NIC, id 1).
    pub bulk_device: u64,
    /// Device the chatty node falls back to (expects the host, id 0).
    pub chatty_device: u64,
}

/// The full crossover report: every scenario plus the two summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossoverReport {
    /// Forced and adaptive scenarios, sweep order.
    pub results: Vec<CrossoverResult>,
    /// Crossover points from the forced sweeps.
    pub crossover: CrossoverSummary,
    /// The layout-repricing exercise.
    pub reprice: RepriceResult,
}

/// Runs the full sweep: every forced provider x size, then the adaptive
/// channel per size, then the crossover extraction and the layout
/// repricing exercise.
#[must_use]
pub fn run_crossover_bench() -> CrossoverReport {
    let mut results = Vec::new();
    for &size in SIZES {
        for &provider in PROVIDERS {
            results.push(run_scenario(Some(provider), size));
        }
        results.push(run_scenario(None, size));
    }
    let crossover = extract_crossover(&results);
    CrossoverReport {
        results,
        crossover,
        reprice: run_reprice(),
    }
}

fn run_scenario(forced: Option<&str>, size: usize) -> CrossoverResult {
    // Fresh demo runtime per scenario: same deployment CI already pins,
    // plus the two extra providers — registered after the deployment is
    // built, so none of its existing channels re-auction.
    let mut rt = demo_deployment();
    install_extras(rt.executive_mut());
    let config = ChannelConfig::figure3(DeviceId(1));
    let chan = match forced {
        Some(p) => rt
            .create_channel_forced(config, p)
            .expect("forced bench channel on the NIC"),
        None => rt
            .create_channel_adaptive(config, AdaptivePolicy::default())
            .expect("adaptive bench channel on the NIC"),
    };
    let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
    let ep = ch.connect_endpoint().expect("fresh channel has room");
    let payload = Bytes::from(vec![0x5Au8; size]);

    let mut last = SimTime::ZERO;
    for _ in 0..MESSAGES {
        last = ch
            .send(SimTime::ZERO, payload.clone())
            .expect("burst fits the figure-3 ring");
    }
    let drained = ch.recv_batch(last, ep, usize::MAX).len();
    assert_eq!(drained, MESSAGES, "every message delivered and drained");

    let provider = forced.unwrap_or("adaptive");
    let elapsed_ns = last.as_nanos();
    let bytes = (MESSAGES * size) as u64;
    CrossoverResult {
        name: format!("{provider}_{size}"),
        provider: provider.to_owned(),
        bytes_per_message: size,
        messages: MESSAGES,
        elapsed_ns,
        ns_per_message: elapsed_ns / MESSAGES as u64,
        throughput_bytes_per_sec: (u128::from(bytes) * 1_000_000_000
            / u128::from(elapsed_ns.max(1))) as u64,
        final_provider: ch.provider_name().to_owned(),
        switches: ch.provider_switches(),
    }
}

/// The forced winner at one size (ties: first in [`PROVIDERS`] order,
/// which is the same deterministic first-wins rule the executive uses).
fn winner_at(results: &[CrossoverResult], size: usize) -> &CrossoverResult {
    results
        .iter()
        .filter(|r| r.bytes_per_message == size && r.provider != "adaptive")
        .min_by_key(|r| r.elapsed_ns)
        .expect("every size has forced runs")
}

fn extract_crossover(results: &[CrossoverResult]) -> CrossoverSummary {
    let winners: Vec<(usize, String)> = SIZES
        .iter()
        .map(|&s| (s, winner_at(results, s).provider.clone()))
        .collect();
    let pio_to_doorbell_bytes = winners
        .iter()
        .find(|(_, w)| w != "pio")
        .map_or(0, |&(s, _)| s as u64);
    let doorbell_to_dma_bytes = winners
        .iter()
        .find(|(_, w)| w == "zero-copy-dma")
        .map_or(0, |&(s, _)| s as u64);
    CrossoverSummary {
        winners,
        pio_to_doorbell_bytes,
        doorbell_to_dma_bytes,
    }
}

fn reprice_node(guid: u64, bind_name: &str) -> LayoutNode {
    LayoutNode {
        guid: Guid(guid),
        bind_name: bind_name.to_owned(),
        compat: vec![true, true],
        price: 1.0,
    }
}

fn run_reprice() -> RepriceResult {
    let cfg = ChannelConfig::figure3(DeviceId(1));
    let dma = ZeroCopyDmaProvider.cost(&cfg);
    let chatty_bytes = 128;
    let bulk_bytes = 65_536;

    // Two Offcodes compete for the one NIC slot; repriced from the live
    // channel cost model, the bulk streamer's effective bandwidth wins
    // it and the chatty node stays on the host.
    let mut g = LayoutGraph::new();
    let chatty = g.add_node(reprice_node(101, "bench.chatty"));
    let bulk = g.add_node(reprice_node(102, "bench.bulk"));
    g.reprice_from_cost(chatty, &dma, chatty_bytes);
    g.reprice_from_cost(bulk, &dma, bulk_bytes);
    let objective = Objective::MaximizeBusUsage {
        capacities: vec![f64::INFINITY, bus_price(&dma, bulk_bytes) + 1.0],
    };
    let placement = g.resolve_ilp(&objective).expect("two-node ILP solves");
    g.check(&placement).expect("placement is feasible");
    RepriceResult {
        chatty_price_bps: dma.effective_throughput(chatty_bytes),
        bulk_price_bps: dma.effective_throughput(bulk_bytes),
        bulk_device: u64::from(placement.device_of(bulk).0),
        chatty_device: u64::from(placement.device_of(chatty).0),
    }
}

/// Renders the report as the `BENCH_crossover.json` artifact through the
/// shared [`crate::report`] serializer. Every field is sim-time or
/// structural — no `wall_` lines, so CI byte-diffs the entire file.
#[must_use]
pub fn render_json(report: &CrossoverReport) -> String {
    let mut scenarios: Vec<Vec<report::Field>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                text("name", &r.name),
                text("provider", &r.provider),
                num("bytes_per_message", r.bytes_per_message as u64),
                num("messages", r.messages as u64),
                num("elapsed_ns", r.elapsed_ns),
                num("ns_per_message", r.ns_per_message),
                num("throughput_bytes_per_sec", r.throughput_bytes_per_sec),
                text("final_provider", &r.final_provider),
                num("switches", r.switches),
            ]
        })
        .collect();
    for (size, winner) in &report.crossover.winners {
        scenarios.push(vec![
            text("name", &format!("winner_{size}")),
            num("bytes_per_message", *size as u64),
            text("winner", winner),
        ]);
    }
    scenarios.push(vec![
        text("name", "crossover"),
        num(
            "pio_to_doorbell_bytes",
            report.crossover.pio_to_doorbell_bytes,
        ),
        num(
            "doorbell_to_dma_bytes",
            report.crossover.doorbell_to_dma_bytes,
        ),
    ]);
    scenarios.push(vec![
        text("name", "layout_reprice"),
        num("chatty_price_bps", report.reprice.chatty_price_bps),
        num("bulk_price_bps", report.reprice.bulk_price_bps),
        num("bulk_device", report.reprice.bulk_device),
        num("chatty_device", report.reprice.chatty_device),
    ]);
    report::render(&Report {
        bench: "crossover",
        config: vec![
            num("messages", MESSAGES as u64),
            text(
                "sizes",
                &SIZES
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            text("providers", &PROVIDERS.join(",")),
        ],
        scenarios,
    })
}

/// Re-expresses the report as a [`MetricsSnapshot`] (scenario name as
/// the counter label) so the budget comparator can gate on it.
#[must_use]
pub fn bench_snapshot(report: &CrossoverReport) -> MetricsSnapshot {
    let rec = Recorder::new();
    for r in &report.results {
        rec.counter_add("bench.elapsed_ns", &r.name, r.elapsed_ns);
        if r.provider == "adaptive" {
            rec.counter_add("bench.switches", &r.name, r.switches);
        }
    }
    rec.counter_add(
        "bench.crossover_bytes",
        "pio_to_doorbell",
        report.crossover.pio_to_doorbell_bytes,
    );
    rec.counter_add(
        "bench.crossover_bytes",
        "doorbell_to_dma",
        report.crossover.doorbell_to_dma_bytes,
    );
    rec.counter_add("bench.reprice_device", "bulk", report.reprice.bulk_device);
    rec.counter_add(
        "bench.reprice_device",
        "chatty",
        report.reprice.chatty_device,
    );
    rec.snapshot()
}

/// Checks a fresh report against a committed baseline (the contents of
/// `budgets/bench_crossover.json`), returning every violated line.
///
/// # Errors
///
/// Fails if the baseline JSON is malformed.
pub fn check_bench(
    report: &CrossoverReport,
    baseline_json: &str,
) -> Result<Vec<BudgetViolation>, BudgetParseError> {
    let budget = parse_budget(baseline_json)?;
    Ok(check_budget(&bench_snapshot(report), &budget))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_deterministic() {
        let a = run_crossover_bench();
        let b = run_crossover_bench();
        assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn crossover_has_the_predicted_shape() {
        let rep = run_crossover_bench();
        let smallest = SIZES[0];
        let largest = *SIZES.last().unwrap();
        assert_eq!(winner_at(&rep.results, smallest).provider, "pio");
        assert_eq!(winner_at(&rep.results, largest).provider, "zero-copy-dma");
        // The doorbell-batched ring owns a non-empty middle band.
        assert!(rep
            .crossover
            .winners
            .iter()
            .any(|(_, w)| w == "doorbell-batch"));
        assert!(rep.crossover.pio_to_doorbell_bytes > 0);
        assert!(
            rep.crossover.doorbell_to_dma_bytes > rep.crossover.pio_to_doorbell_bytes,
            "DMA takes over after the ring"
        );
    }

    #[test]
    fn adaptive_never_loses_to_the_worst_static_choice() {
        let rep = run_crossover_bench();
        for &size in SIZES {
            let adaptive = rep
                .results
                .iter()
                .find(|r| r.provider == "adaptive" && r.bytes_per_message == size)
                .unwrap();
            let worst = rep
                .results
                .iter()
                .filter(|r| r.provider != "adaptive" && r.bytes_per_message == size)
                .map(|r| r.elapsed_ns)
                .max()
                .unwrap();
            assert!(
                adaptive.elapsed_ns <= worst,
                "{size} B: adaptive {} > worst static {worst}",
                adaptive.elapsed_ns
            );
        }
    }

    #[test]
    fn adaptive_switches_toward_the_ring_at_mid_sizes() {
        let rep = run_crossover_bench();
        let mid = rep
            .results
            .iter()
            .find(|r| r.name == "adaptive_4096")
            .unwrap();
        assert_eq!(mid.final_provider, "doorbell-batch");
        assert!(mid.switches >= 1);
    }

    #[test]
    fn reprice_gives_the_device_slot_to_the_bulk_streamer() {
        let rep = run_reprice();
        assert_eq!(rep.bulk_device, 1);
        assert_eq!(rep.chatty_device, 0);
        assert!(rep.bulk_price_bps > rep.chatty_price_bps);
    }

    #[test]
    fn snapshot_carries_one_line_per_scenario() {
        let rep = run_crossover_bench();
        let snap = bench_snapshot(&rep);
        for r in &rep.results {
            assert_eq!(
                snap.counter("bench.elapsed_ns", &r.name),
                Some(r.elapsed_ns)
            );
        }
        assert!(snap
            .counter("bench.crossover_bytes", "pio_to_doorbell")
            .is_some());
    }
}
