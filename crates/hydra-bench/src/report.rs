//! Shared serializer for the committed `BENCH_*.json` reports.
//!
//! Both bench reports (`BENCH_channel.json`, `BENCH_engine.json`) go
//! through [`render`], so they share one wire format:
//!
//! * a leading `"schema"` version field ([`SCHEMA_VERSION`]), so a
//!   future layout change can be detected instead of silently
//!   mis-diffed;
//! * **one key per line** inside every object. That layout is what lets
//!   CI byte-diff only the *deterministic* fields of a report: wall-clock
//!   keys carry a `wall_` prefix, and `grep -v '"wall_'` (or
//!   [`sim_fields`]) strips exactly those lines, leaving a byte-stable
//!   rest;
//! * integers and strings only — no floats, no locale, no hash-order.
//!
//! The workspace vendors no serde, so values are pre-rendered JSON
//! fragments built with [`num`] / [`text`].

use std::fmt::Write as _;

/// Version of the report layout. Bump when the shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One `"key": value` line; the value is already-rendered JSON.
pub type Field = (&'static str, String);

/// Renders an integer field.
#[must_use]
pub fn num(key: &'static str, value: u64) -> Field {
    (key, value.to_string())
}

/// Renders a string field.
#[must_use]
pub fn text(key: &'static str, value: &str) -> Field {
    (key, format!("\"{value}\""))
}

/// A bench report: name, flat config object, list of scenario objects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Report name (the `"bench"` field).
    pub bench: &'static str,
    /// The `"config"` object, in emission order.
    pub config: Vec<Field>,
    /// The `"scenarios"` array, one field list per scenario.
    pub scenarios: Vec<Vec<Field>>,
}

fn push_fields(out: &mut String, fields: &[Field], indent: &str) {
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        let _ = writeln!(out, "{indent}\"{key}\": {value}{comma}");
    }
}

/// Renders the report: stable key order, one key per line, trailing
/// newline — two runs with identical field values are byte-identical.
#[must_use]
pub fn render(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"bench\": \"{}\",", report.bench);
    out.push_str("  \"config\": {\n");
    push_fields(&mut out, &report.config, "    ");
    out.push_str("  },\n  \"scenarios\": [\n");
    for (i, scenario) in report.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        push_fields(&mut out, scenario, "      ");
        out.push_str(if i + 1 == report.scenarios.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strips every line holding a `wall_`-prefixed key — the report's
/// nondeterministic wall-clock measurements — leaving only the fields
/// two runs must reproduce byte-for-byte. The same filter CI applies
/// with `grep -v '"wall_'`.
#[must_use]
pub fn sim_fields(rendered: &str) -> String {
    let mut out = String::with_capacity(rendered.len());
    for line in rendered.lines().filter(|line| !line.contains("\"wall_")) {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Reads the `"schema"` version back out of a rendered report (`None`
/// if the field is missing or malformed) — the round-trip check gates
/// on this before byte-diffing anything.
#[must_use]
pub fn schema_version(rendered: &str) -> Option<u32> {
    let rest = rendered.split("\"schema\":").nth(1)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Reads a named integer field back out of a rendered report (the first
/// occurrence). Lets gates assert on committed headline numbers without
/// a JSON parser.
#[must_use]
pub fn read_u64(rendered: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = rendered.split(&needle).nth(1)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            bench: "sample",
            config: vec![num("items", 3), text("mode", "fast")],
            scenarios: vec![
                vec![
                    text("name", "a"),
                    num("events", 10),
                    num("wall_elapsed_ns", 12345),
                ],
                vec![text("name", "b"), num("events", 20)],
            ],
        }
    }

    #[test]
    fn round_trips_schema_and_fields() {
        let rendered = render(&sample());
        assert_eq!(schema_version(&rendered), Some(SCHEMA_VERSION));
        assert_eq!(read_u64(&rendered, "events"), Some(10));
        assert_eq!(read_u64(&rendered, "wall_elapsed_ns"), Some(12345));
        assert!(rendered.contains("\"bench\": \"sample\""));
        assert!(rendered.contains("\"mode\": \"fast\""));
    }

    #[test]
    fn sim_fields_drops_exactly_the_wall_lines() {
        let rendered = render(&sample());
        let filtered = sim_fields(&rendered);
        assert!(!filtered.contains("wall_elapsed_ns"));
        assert!(filtered.contains("\"events\": 10"));
        // Deterministic rest is unchanged by re-rendering with a
        // different wall-clock measurement.
        let mut other = sample();
        other.scenarios[0][2] = num("wall_elapsed_ns", 999);
        assert_eq!(filtered, sim_fields(&render(&other)));
        assert_ne!(rendered, render(&other));
    }

    #[test]
    fn one_key_per_line_keeps_grep_filter_valid_json_shape() {
        let rendered = render(&sample());
        for (key, _) in &sample().config {
            assert_eq!(
                rendered
                    .lines()
                    .filter(|l| l.contains(&format!("\"{key}\"")))
                    .count(),
                1
            );
        }
        assert!(rendered.ends_with("}\n"));
    }
}
