//! `repro -- certify` — quantitative deployment certification.
//!
//! Where [`lint`](crate::lint) runs the structural verifier passes,
//! this sub-command runs the full six-pass certification: structure
//! plus the flow pass (arrival/service-curve propagation into
//! worst-case queue-depth, latency and utilization bounds, HV040–HV044)
//! and the ring-sharing race pass (HV050–HV051). Service curves come
//! from [`hydra_tivo::certify_service_table`] — the Channel Executive's
//! own exported cost tables — so the certificate and the runtime can
//! never disagree on message costs.
//!
//! With no arguments the three built-in sets (`demo`, `tivo`, `stats`)
//! are certified; the `stats` set carries its committed fault plan's
//! disruption overlay, so its bounds are already widened for the
//! faulted variant. Arguments name either a built-in set or a
//! deployment-file path (the `lint` file format). Output is canonical
//! JSON — diagnostics plus the bound certificate — byte-identical
//! across runs over the same inputs.

use std::fs;

use hydra_tivo::certify::{certify_service_table, certify_set};
use hydra_verify::{Certification, CertifyInput, Severity, VerifyInput};

use crate::lint::{parse_deployment_file, testbed_table};

/// One certified deployment: a name (built-in set or file path) and the
/// six-pass certification for it.
#[derive(Debug, Clone)]
pub struct CertifyResult {
    /// Built-in set name (`demo`, `tivo`, `stats`) or the file path as
    /// given on the command line.
    pub name: String,
    /// The combined report and bound certificate.
    pub certification: Certification,
}

fn certify_odfs(
    odfs: &[hydra_odf::odf::OdfDocument],
    overlay: Option<&hydra_verify::FaultOverlay>,
) -> Certification {
    let table = testbed_table();
    let services = certify_service_table();
    hydra_verify::certify(&CertifyInput {
        verify: VerifyInput {
            odfs,
            devices: &table,
            demands: None,
            roots: None,
        },
        services: &services,
        overlay,
    })
}

/// Certifies one deployment file from disk. Unreadable files and parse
/// failures become `HV009` diagnostics in a `parse` pass, never a
/// panic; whatever parsed is still certified.
pub fn certify_file(path: &str) -> CertifyResult {
    let (odfs, parse_diags) = match fs::read_to_string(path) {
        Ok(text) => parse_deployment_file(&text),
        Err(e) => (
            Vec::new(),
            vec![hydra_verify::Diagnostic::new(
                hydra_verify::HvCode::ParseError,
                hydra_verify::Loc::Set,
                format!("cannot read file: {e}"),
            )],
        ),
    };
    let mut certification = certify_odfs(&odfs, None);
    if !parse_diags.is_empty() {
        certification.report.absorb("parse", 1, parse_diags);
    }
    CertifyResult {
        name: path.to_owned(),
        certification,
    }
}

/// Certifies the built-in declared-traffic sets: the demo pipeline, the
/// TiVo client, and the synthetic stats-scenario set (under its
/// committed fault overlay).
#[must_use]
pub fn certify_builtin() -> Vec<CertifyResult> {
    ["demo", "tivo", "stats"]
        .into_iter()
        .map(|name| {
            let (odfs, overlay) = certify_set(name).expect("built-in certify set");
            CertifyResult {
                name: name.to_owned(),
                certification: certify_odfs(&odfs, overlay.as_ref()),
            }
        })
        .collect()
}

/// Certifies the named built-in sets and/or deployment files; with no
/// arguments, all three built-in sets.
#[must_use]
pub fn run_certify(args: &[&str]) -> Vec<CertifyResult> {
    if args.is_empty() {
        return certify_builtin();
    }
    args.iter()
        .map(|arg| match certify_set(arg) {
            Some((odfs, overlay)) => CertifyResult {
                name: (*arg).to_owned(),
                certification: certify_odfs(&odfs, overlay.as_ref()),
            },
            None => certify_file(arg),
        })
        .collect()
}

/// True when any certified deployment has an error-severity diagnostic
/// — the condition under which `repro -- certify` exits non-zero.
#[must_use]
pub fn any_errors(results: &[CertifyResult]) -> bool {
    results.iter().any(|r| r.certification.report.has_errors())
}

/// Renders the combined results as canonical JSON — the diagnostics
/// report plus the quantitative certificate per deployment,
/// deterministic for a given input set.
#[must_use]
pub fn render_json(results: &[CertifyResult]) -> String {
    let mut out = String::from("{\"deployments\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"summary\":\"{}\",\"report\":{},\"certificate\":{}}}",
            json_escape(&r.name),
            json_escape(&r.certification.report.summary()),
            r.certification.report.to_json(),
            r.certification.certificate.to_json()
        ));
    }
    let errors: usize = results
        .iter()
        .map(|r| r.certification.report.count(Severity::Error))
        .sum();
    let warnings: usize = results
        .iter()
        .map(|r| r.certification.report.count(Severity::Warning))
        .sum();
    out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
    out
}

/// Renders the results as human-readable lines: the verifier findings
/// followed by the certificate's per-ring and per-device bounds.
#[must_use]
pub fn render_human(results: &[CertifyResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!("== {} ==\n", r.name));
        out.push_str(&r.certification.report.render_human());
        for c in &r.certification.certificate.channels {
            let latency = c
                .latency_bound_ns
                .map_or_else(|| "unbounded".to_owned(), |v| format!("{v} ns"));
            out.push_str(&format!(
                "ring {}: writers {}, queue <= {}/{}, latency <= {}\n",
                c.bind_name, c.writers, c.queue_bound, c.ring_capacity, latency
            ));
        }
        for d in &r.certification.certificate.devices {
            out.push_str(&format!(
                "device {} ({}): utilization <= {} permille\n",
                d.index, d.name, d.permille
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sets_certify_clean() {
        let results = certify_builtin();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                !r.certification.report.has_errors(),
                "{} must certify clean: {}",
                r.name,
                r.certification.report.render_human()
            );
            assert!(!r.certification.certificate.channels.is_empty());
        }
    }

    #[test]
    fn certify_json_is_deterministic() {
        assert_eq!(
            render_json(&certify_builtin()),
            render_json(&certify_builtin())
        );
    }

    #[test]
    fn named_sets_and_missing_files_dispatch() {
        let results = run_certify(&["demo", "/nonexistent/deployment.xml"]);
        assert_eq!(results.len(), 2);
        assert!(!results[0].certification.report.has_errors());
        assert!(results[1].certification.report.has_errors());
        assert!(any_errors(&results));
    }

    #[test]
    fn human_rendering_carries_the_bounds() {
        let text = render_human(&run_certify(&["demo"]));
        assert!(text.contains("ring tivo.Decoder"));
        assert!(text.contains("utilization <="));
    }
}
