//! `repro -- lint` — static verification of deployments.
//!
//! With no arguments the built-in deployments are linted (the
//! observability demo plus the TiVo client and server ODF sets), each
//! against the full simulated testbed (host + programmable NIC + smart
//! disk + GPU). With paths, each file is parsed as either a single
//! `<offcode>` ODF or a `<deployment>` wrapper holding several
//! `<offcode>` children, and linted as one ODF set. Files that fail to
//! parse produce an `HV009` error diagnostic instead of aborting the
//! run.
//!
//! Output is the verifier's canonical JSON, wrapped per deployment, and
//! byte-identical across runs over the same inputs.

use std::fs;

use hydra_core::device::{DeviceDescriptor, DeviceRegistry};
use hydra_odf::odf::OdfDocument;
use hydra_odf::xml;
use hydra_verify::{Diagnostic, HvCode, Loc, Report, Severity, VerifyInput};

/// One linted deployment: a name (built-in target or file path) and the
/// verifier's report for it.
#[derive(Debug, Clone)]
pub struct LintResult {
    /// Built-in target name (`demo`, `tivo-client`, `tivo-server`) or
    /// the fixture path as given on the command line.
    pub name: String,
    /// The verifier's findings for this deployment.
    pub report: Report,
}

/// The full simulated testbed every deployment is linted against: host
/// CPU, programmable NIC, smart disk, and GPU — the same registry the
/// demo deployment and the paper's experiments use.
pub(crate) fn testbed_table() -> hydra_verify::DeviceTable {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    reg.verify_table()
}

fn verify_set(odfs: &[OdfDocument]) -> Report {
    let table = testbed_table();
    hydra_verify::verify(&VerifyInput {
        odfs,
        devices: &table,
        demands: None,
        roots: None,
    })
}

/// Parses a lint input file: either a single `<offcode>` document or a
/// `<deployment>` element wrapping several of them. Documents that fail
/// to parse become `HV009` diagnostics; the rest are still verified.
pub(crate) fn parse_deployment_file(text: &str) -> (Vec<OdfDocument>, Vec<Diagnostic>) {
    let mut odfs = Vec::new();
    let mut diags = Vec::new();
    match xml::parse(text) {
        Err(e) => diags.push(Diagnostic::new(
            HvCode::ParseError,
            Loc::Set,
            format!("not well-formed XML: {e}"),
        )),
        Ok(root) if root.name == "deployment" => {
            for (i, el) in root.children_named("offcode").enumerate() {
                match OdfDocument::from_element(el) {
                    Ok(odf) => odfs.push(odf),
                    Err(e) => diags.push(Diagnostic::new(
                        HvCode::ParseError,
                        Loc::Odf {
                            bind_name: format!("offcode[{i}]"),
                        },
                        format!("invalid ODF: {e}"),
                    )),
                }
            }
            if odfs.is_empty() && diags.is_empty() {
                diags.push(Diagnostic::new(
                    HvCode::ParseError,
                    Loc::Set,
                    "<deployment> holds no <offcode> elements".to_owned(),
                ));
            }
        }
        Ok(root) => match OdfDocument::from_element(&root) {
            Ok(odf) => odfs.push(odf),
            Err(e) => diags.push(Diagnostic::new(
                HvCode::ParseError,
                Loc::Set,
                format!("invalid ODF: {e}"),
            )),
        },
    }
    (odfs, diags)
}

/// Lints one file from disk. Unreadable files and parse failures are
/// reported as `HV009` diagnostics in a `parse` pass, never a panic.
pub fn lint_file(path: &str) -> LintResult {
    let (odfs, parse_diags) = match fs::read_to_string(path) {
        Ok(text) => parse_deployment_file(&text),
        Err(e) => (
            Vec::new(),
            vec![Diagnostic::new(
                HvCode::ParseError,
                Loc::Set,
                format!("cannot read file: {e}"),
            )],
        ),
    };
    let mut report = verify_set(&odfs);
    if !parse_diags.is_empty() {
        report.absorb("parse", 1, parse_diags);
    }
    LintResult {
        name: path.to_owned(),
        report,
    }
}

/// Lints the built-in deployments: the observability demo and the TiVo
/// client/server ODF sets.
pub fn lint_builtin() -> Vec<LintResult> {
    let targets: [(&str, Vec<OdfDocument>); 3] = [
        ("demo", hydra_tivo::demo::demo_odfs()),
        ("tivo-client", hydra_tivo::components::tivo_client_odfs()),
        ("tivo-server", hydra_tivo::components::tivo_server_odfs()),
    ];
    targets
        .into_iter()
        .map(|(name, odfs)| LintResult {
            name: name.to_owned(),
            report: verify_set(&odfs),
        })
        .collect()
}

/// Lints either the given fixture paths or, with none, the built-in
/// deployments.
pub fn run_lint(paths: &[&str]) -> Vec<LintResult> {
    if paths.is_empty() {
        lint_builtin()
    } else {
        paths.iter().map(|p| lint_file(p)).collect()
    }
}

/// True when any linted deployment has an error-severity diagnostic —
/// the condition under which `repro -- lint` exits non-zero.
pub fn any_errors(results: &[LintResult]) -> bool {
    results.iter().any(|r| r.report.has_errors())
}

/// Renders the combined results as canonical JSON — deterministic for a
/// given input set, ready for CI artifacts.
pub fn render_json(results: &[LintResult]) -> String {
    let mut out = String::from("{\"deployments\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"summary\":\"{}\",\"report\":{}}}",
            json_escape(&r.name),
            json_escape(&r.report.summary()),
            r.report.to_json()
        ));
    }
    let errors: usize = results
        .iter()
        .map(|r| r.report.count(Severity::Error))
        .sum();
    let warnings: usize = results
        .iter()
        .map(|r| r.report.count(Severity::Warning))
        .sum();
    out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
    out
}

/// Renders the combined results as human-readable lines (stderr side of
/// the CLI; stdout carries the JSON).
pub fn render_human(results: &[LintResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!("== {} ==\n", r.name));
        out.push_str(&r.report.render_human());
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_deployments_are_clean() {
        let results = lint_builtin();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                !r.report.has_errors(),
                "{} must lint clean: {}",
                r.name,
                r.report.render_human()
            );
        }
    }

    #[test]
    fn builtin_lint_is_deterministic() {
        assert_eq!(render_json(&lint_builtin()), render_json(&lint_builtin()));
    }

    #[test]
    fn missing_file_yields_hv009() {
        let r = lint_file("/nonexistent/deployment.xml");
        assert!(r.report.has_errors());
        assert!(r.report.errors().any(|d| d.code == HvCode::ParseError));
    }

    #[test]
    fn deployment_wrapper_parses_multiple_offcodes() {
        let (odfs, diags) = parse_deployment_file(
            "<deployment>\
               <offcode><package><bindname>a</bindname><GUID>1</GUID></package></offcode>\
               <offcode><package><bindname>b</bindname><GUID>2</GUID></package></offcode>\
             </deployment>",
        );
        assert_eq!(odfs.len(), 2);
        assert!(diags.is_empty());
    }

    #[test]
    fn bad_xml_and_empty_deployment_yield_hv009() {
        let (odfs, diags) = parse_deployment_file("<not closed");
        assert!(odfs.is_empty());
        assert_eq!(diags.len(), 1);
        let (odfs, diags) = parse_deployment_file("<deployment></deployment>");
        assert!(odfs.is_empty());
        assert_eq!(diags[0].code, HvCode::ParseError);
    }
}
