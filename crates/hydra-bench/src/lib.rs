//! # hydra-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p hydra-bench --bin repro`)
//!   regenerates every table and figure of the paper on the simulated
//!   testbed and prints them in paper format; `--full` runs the paper's
//!   10-minute durations;
//! * the **Criterion benches** (`cargo bench -p hydra-bench`) measure the
//!   harness itself — one bench per table/figure plus the ablations
//!   DESIGN.md calls out (channel buffering policy, loading strategy,
//!   ILP vs greedy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod channel_bench;
pub mod crossover_bench;
pub mod engine_bench;
pub mod lint;
pub mod report;

use hydra_sim::time::SimDuration;
use hydra_tivo::experiments::SuiteConfig;

/// The bench manifest: every `repro -- bench <name>` selector paired
/// with the committed report it regenerates at the workspace root.
///
/// This is the single source of truth the stale-report failsafe keys
/// on: a committed `BENCH_*.json` with no manifest row (or a manifest
/// row [`run_bench`] cannot dispatch) fails `tests/report_manifest.rs`
/// and the CI report-manifest job.
pub const BENCHES: &[(&str, &str)] = &[
    ("channel", "BENCH_channel.json"),
    ("engine", "BENCH_engine.json"),
    ("crossover", "BENCH_crossover.json"),
];

/// Runs the named bench and renders its report JSON, or `None` for a
/// name outside [`BENCHES`]. The `repro` binary's `bench` sub-command
/// dispatches through here, so the manifest and the CLI cannot drift.
#[must_use]
pub fn run_bench(name: &str) -> Option<String> {
    match name {
        "channel" => Some(channel_bench::render_json(
            &channel_bench::run_channel_bench(),
        )),
        "engine" => Some(engine_bench::render_json(&engine_bench::run_engine_bench())),
        "crossover" => Some(crossover_bench::render_json(
            &crossover_bench::run_crossover_bench(),
        )),
        _ => None,
    }
}

/// A short-duration suite configuration for benches: 6 simulated seconds
/// — enough for the pipelines to reach steady state *and* to land at
/// least one 5-second utilization/L2 sample window.
pub fn bench_suite() -> SuiteConfig {
    SuiteConfig {
        duration: SimDuration::from_secs(6),
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_suite_is_short() {
        assert_eq!(bench_suite().duration.as_millis(), 6_000);
    }

    #[test]
    // The BENCH_*.json convention is deliberately case-sensitive — it
    // mirrors the shell glob the CI report-manifest job walks.
    #[allow(clippy::case_sensitive_file_extension_comparisons)]
    fn every_manifest_row_dispatches_and_unknown_names_do_not() {
        for (name, report_file) in BENCHES {
            assert!(
                report_file.starts_with("BENCH_") && report_file.ends_with(".json"),
                "{report_file}: committed reports follow the BENCH_*.json convention"
            );
            // Dispatch must recognize the name; running the bench here
            // would be slow, so the full round-trip lives in
            // tests/report_manifest.rs.
            assert!(
                matches!(*name, "channel" | "engine" | "crossover"),
                "{name}: run_bench() match arm missing for manifest row"
            );
        }
        assert_eq!(run_bench("no-such-bench"), None);
    }
}
