//! # hydra-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p hydra-bench --bin repro`)
//!   regenerates every table and figure of the paper on the simulated
//!   testbed and prints them in paper format; `--full` runs the paper's
//!   10-minute durations;
//! * the **Criterion benches** (`cargo bench -p hydra-bench`) measure the
//!   harness itself — one bench per table/figure plus the ablations
//!   DESIGN.md calls out (channel buffering policy, loading strategy,
//!   ILP vs greedy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel_bench;
pub mod engine_bench;
pub mod lint;
pub mod report;

use hydra_sim::time::SimDuration;
use hydra_tivo::experiments::SuiteConfig;

/// A short-duration suite configuration for benches: 6 simulated seconds
/// — enough for the pipelines to reach steady state *and* to land at
/// least one 5-second utilization/L2 sample window.
pub fn bench_suite() -> SuiteConfig {
    SuiteConfig {
        duration: SimDuration::from_secs(6),
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_suite_is_short() {
        assert_eq!(bench_suite().duration.as_millis(), 6_000);
    }
}
