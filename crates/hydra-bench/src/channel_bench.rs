//! Deterministic sim-time channel data-path benchmarks.
//!
//! Measures the single-message send path against the batched
//! (single-doorbell) path for a range of batch sizes, on a fresh
//! Figure-3 channel created on the tivo demo deployment's runtime. All
//! timing is *simulated* time, so two runs produce byte-identical
//! results — which is what lets CI gate on them: the rendered
//! [`render_json`] report is `BENCH_channel.json`, and
//! [`check_bench`] replays the numbers through the
//! [`hydra_obs::budget`] tolerance machinery against the committed
//! baseline in `budgets/bench_channel.json`.

use bytes::Bytes;
use hydra_core::channel::ChannelConfig;
use hydra_core::device::DeviceId;
use hydra_obs::budget::{check_budget, parse_budget, BudgetParseError, BudgetViolation};
use hydra_obs::{MetricsSnapshot, Recorder};
use hydra_sim::time::SimTime;
use hydra_tivo::demo::demo_deployment;

use crate::report::{self, num, text, Report};

/// Messages pushed through the channel per scenario.
pub const MESSAGES: usize = 512;

/// Payload bytes per message.
pub const MSG_BYTES: usize = 1024;

/// Batch sizes benchmarked; size 1 exercises the single-message path.
pub const BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// One scenario's measured result (all sim-time, fully deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Scenario name (`single`, `batch2`, `batch4`, ...).
    pub name: String,
    /// Messages handed to the provider per doorbell.
    pub batch_size: usize,
    /// Total messages sent.
    pub messages: usize,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Sim-time from first doorbell to last message drained.
    pub elapsed_ns: u64,
    /// `bytes * 1e9 / elapsed_ns`, integer math.
    pub throughput_bytes_per_sec: u64,
    /// `elapsed_ns / messages`.
    pub ns_per_message: u64,
}

/// Runs every scenario in [`BATCH_SIZES`] and returns the results in
/// batch-size order.
pub fn run_channel_bench() -> Vec<BenchResult> {
    BATCH_SIZES.iter().map(|&b| run_scenario(b)).collect()
}

fn run_scenario(batch_size: usize) -> BenchResult {
    // Fresh demo runtime per scenario: the bench channel rides on the
    // same deployment CI already pins, but starts with an idle provider.
    let mut rt = demo_deployment();
    let chan = rt
        .create_channel(ChannelConfig::figure3(DeviceId(1)))
        .expect("bench channel on the NIC");
    let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
    let ep = ch.connect_endpoint().expect("fresh channel has room");
    let payload = Bytes::from(vec![0xA5u8; MSG_BYTES]);

    let mut now = SimTime::ZERO;
    let mut sent = 0usize;
    let mut drained = 0usize;
    while sent < MESSAGES {
        let n = batch_size.min(MESSAGES - sent);
        if batch_size == 1 {
            now = ch
                .send(now, payload.clone())
                .expect("drained channel accepts");
            drained += usize::from(ch.recv(now, ep).is_some());
        } else {
            let batch: Vec<Bytes> = vec![payload.clone(); n];
            let outcome = ch.send_batch(now, &batch);
            assert_eq!(outcome.accepted(), n, "drained channel accepts the batch");
            now = outcome.complete_at;
            drained += ch.recv_batch(now, ep, usize::MAX).len();
        }
        sent += n;
    }
    assert_eq!(drained, MESSAGES, "every message delivered and drained");

    let elapsed_ns = now.as_nanos();
    let bytes = (MESSAGES * MSG_BYTES) as u64;
    let throughput = (u128::from(bytes) * 1_000_000_000 / u128::from(elapsed_ns.max(1))) as u64;
    BenchResult {
        name: if batch_size == 1 {
            "single".to_owned()
        } else {
            format!("batch{batch_size}")
        },
        batch_size,
        messages: MESSAGES,
        bytes,
        elapsed_ns,
        throughput_bytes_per_sec: throughput,
        ns_per_message: elapsed_ns / MESSAGES as u64,
    }
}

/// Renders the results as the `BENCH_channel.json` report through the
/// shared [`crate::report`] serializer: `"schema": 1`, stable key order,
/// no floats, so two runs are byte-identical. Every field here is
/// sim-time — the channel bench has no `wall_` lines at all.
pub fn render_json(results: &[BenchResult]) -> String {
    let rep = Report {
        bench: "channel",
        config: vec![
            num("messages", MESSAGES as u64),
            num("bytes_per_message", MSG_BYTES as u64),
        ],
        scenarios: results
            .iter()
            .map(|r| {
                vec![
                    text("name", &r.name),
                    num("batch_size", r.batch_size as u64),
                    num("messages", r.messages as u64),
                    num("bytes", r.bytes),
                    num("elapsed_ns", r.elapsed_ns),
                    num("throughput_bytes_per_sec", r.throughput_bytes_per_sec),
                    num("ns_per_message", r.ns_per_message),
                ]
            })
            .collect(),
    };
    report::render(&rep)
}

/// Re-expresses the results as a [`MetricsSnapshot`] (scenario name as
/// the counter label) so the budget comparator can gate on them.
pub fn bench_snapshot(results: &[BenchResult]) -> MetricsSnapshot {
    let rec = Recorder::new();
    for r in results {
        rec.counter_add("bench.elapsed_ns", &r.name, r.elapsed_ns);
        rec.counter_add(
            "bench.throughput_bytes_per_sec",
            &r.name,
            r.throughput_bytes_per_sec,
        );
    }
    rec.snapshot()
}

/// Checks fresh results against a committed baseline (the contents of
/// `budgets/bench_channel.json`), returning every violated line.
///
/// # Errors
///
/// Fails if the baseline JSON is malformed.
pub fn check_bench(
    results: &[BenchResult],
    baseline_json: &str,
) -> Result<Vec<BudgetViolation>, BudgetParseError> {
    let budget = parse_budget(baseline_json)?;
    Ok(check_budget(&bench_snapshot(results), &budget))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_deterministic() {
        let a = run_channel_bench();
        let b = run_channel_bench();
        assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn batching_beats_single_at_eight_and_up() {
        let results = run_channel_bench();
        let single = results.iter().find(|r| r.batch_size == 1).unwrap();
        for r in results.iter().filter(|r| r.batch_size >= 8) {
            assert!(
                r.throughput_bytes_per_sec > single.throughput_bytes_per_sec,
                "{}: {} <= {}",
                r.name,
                r.throughput_bytes_per_sec,
                single.throughput_bytes_per_sec
            );
            assert!(r.elapsed_ns < single.elapsed_ns);
        }
    }

    #[test]
    fn snapshot_carries_one_line_per_scenario() {
        let results = run_channel_bench();
        let snap = bench_snapshot(&results);
        for r in &results {
            assert_eq!(
                snap.counter("bench.elapsed_ns", &r.name),
                Some(r.elapsed_ns)
            );
        }
    }
}
