//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hydra-bench --bin repro            # 60 s runs
//! cargo run --release -p hydra-bench --bin repro -- --full  # 600 s (paper)
//! cargo run --release -p hydra-bench --bin repro -- fig9    # one experiment
//! ```
//!
//! Experiments: `fig1`, `fig9` (includes Table 2), `fig10` (includes
//! Table 3), `tab4` (includes client L2), `ilp`, `playback`, the §1.1
//! comparison `onload`, the TOE demonstration `toe`, the paper's §8
//! extensions `vmdemux` and `search`, and `metrics` (a deployment's
//! observability snapshot). With no selector, everything runs.

use std::env;

use hydra_core::call::{Call, Value};
use hydra_core::channel::ChannelConfig;
use hydra_core::device::{DeviceDescriptor, DeviceRegistry};
use hydra_core::error::RuntimeError;
use hydra_core::offcode::{Offcode, OffcodeCtx};
use hydra_core::runtime::{Runtime, RuntimeConfig};
use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra_sim::time::{SimDuration, SimTime};
use hydra_tivo::experiments::{
    fig1, fig10_tab3, fig9_tab2, ilp_vs_greedy, tab4_client, SuiteConfig,
};
use hydra_tivo::onload::compare_designs;
use hydra_tivo::playback::{run_record_playback, PlaybackConfig};
use hydra_tivo::storage::{build_corpus, run_search, SearchKind};
use hydra_tivo::toe::{run_bulk_receive, TcpPlacement};
use hydra_tivo::virtualization::vm_demux_comparison;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        SuiteConfig::paper_full()
    } else {
        SuiteConfig::default()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!(
        "HYDRA reproduction — simulated testbed, {} s runs, seed {}",
        cfg.duration.as_secs_f64(),
        cfg.seed
    );
    println!("(paper: Weinsberg et al., ASPLOS 2008)\n");

    if want("fig1") {
        println!("{}", fig1());
        println!();
    }
    if want("fig9") || want("tab2") {
        println!("{}", fig9_tab2(&cfg));
        println!();
    }
    if want("fig10") || want("tab3") {
        println!("{}", fig10_tab3(&cfg));
        println!();
    }
    if want("tab4") {
        println!("{}", tab4_client(&cfg));
        println!();
    }
    if want("ilp") {
        println!("{}", ilp_vs_greedy(cfg.seed, 40));
        println!();
    }
    if want("playback") {
        let run = run_record_playback(PlaybackConfig::default())
            .expect("playback pipeline must round-trip");
        println!("Record + playback (TiVo feature, §1/§6.3)");
        println!(
            "  {} frames recorded to NAS ({} bytes), {} played back",
            25, run.bytes_recorded, run.frames_played
        );
        let s = run.playback_gaps_ms.summary();
        println!(
            "  playback pacing: median {:.2} ms, std {:.3} ms; worst PSNR {:.1} dB\n",
            s.median, s.std_dev, run.worst_psnr_db
        );
    }
    if want("vmdemux") {
        println!("§8 extension — VM packet demultiplexing (host bridge vs NIC Offcode)");
        for run in vm_demux_comparison(cfg.seed, SimDuration::from_secs(10)) {
            println!("  {run}");
        }
        println!();
    }
    if want("onload") {
        println!("§1.1 — offload vs onload (1 kB packets at 100k pps)");
        for p in compare_designs(1024, 100_000.0) {
            println!("  {p}");
        }
        println!();
    }
    if want("toe") {
        println!("§1.1 — TOE vs host TCP (200 kB bulk receive, 2% segment loss)");
        let data: Vec<u8> = (0..200_000usize).map(|i| (i % 249) as u8).collect();
        for placement in TcpPlacement::all() {
            let run = run_bulk_receive(placement, &data, 0.02, cfg.seed);
            assert_eq!(run.delivered, data, "TCP must deliver exactly");
            println!("  {run}");
        }
        println!();
    }
    if want("search") {
        println!("§8 extension — disk-side content search (512 kB corpus, 6 signatures)");
        let needle = b"\x7fVIRUS_SIGNATURE";
        let corpus = build_corpus(512 * 1024, needle, 6, cfg.seed);
        for kind in SearchKind::all() {
            println!("  {}", run_search(kind, &corpus, needle, cfg.seed));
        }
        println!();
    }
    if want("metrics") {
        println!("Observability — deployment pipeline + channel metrics snapshot");
        println!("{}", metrics_demo());
    }
}

/// A do-nothing Offcode for the metrics demonstration deployment.
#[derive(Debug)]
struct DemoOffcode {
    guid: Guid,
    name: &'static str,
}

impl Offcode for DemoOffcode {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        self.name
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, _call: &Call) -> Result<Value, RuntimeError> {
        Ok(Value::Unit)
    }
}

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

/// Deploys a three-Offcode pipeline (streamer → decoder → display) on the
/// full testbed, pushes a few calls through a Figure-3 channel, and
/// renders the runtime's metrics snapshot.
fn metrics_demo() -> String {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    let mut rt = Runtime::new(reg, RuntimeConfig::default());

    let streamer = OdfDocument::new("tivo.Streamer", Guid(1))
        .with_target(class(class_ids::NETWORK))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Decoder".into(),
            guid: Guid(2),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
    let decoder = OdfDocument::new("tivo.Decoder", Guid(2))
        .with_target(class(class_ids::GPU))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Display".into(),
            guid: Guid(3),
            constraint: ConstraintKind::Pull,
            priority: 0,
        });
    let display = OdfDocument::new("tivo.Display", Guid(3)).with_target(class(class_ids::GPU));
    rt.register_offcode(streamer, || {
        Box::new(DemoOffcode {
            guid: Guid(1),
            name: "tivo.Streamer",
        })
    })
    .expect("fresh depot");
    rt.register_offcode(decoder, || {
        Box::new(DemoOffcode {
            guid: Guid(2),
            name: "tivo.Decoder",
        })
    })
    .expect("fresh depot");
    rt.register_offcode(display, || {
        Box::new(DemoOffcode {
            guid: Guid(3),
            name: "tivo.Display",
        })
    })
    .expect("fresh depot");

    let root = rt
        .create_offcode(Guid(1), SimTime::ZERO)
        .expect("demo app deploys");
    let device = rt.device_of(root).expect("deployed");
    let chan = rt
        .create_channel(ChannelConfig::figure3(device))
        .expect("figure-3 channel");
    rt.connect_offcode(chan, root).expect("connect streamer");
    let mut t = SimTime::ZERO;
    for i in 0..4u64 {
        let call = Call::new(Guid(1), "frame").with_return_id(i);
        t = rt.send_call(chan, &call, t).expect("channel accepts");
    }
    rt.pump(t);
    rt.metrics_snapshot().to_string()
}
