//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hydra-bench --bin repro            # 60 s runs
//! cargo run --release -p hydra-bench --bin repro -- --full  # 600 s (paper)
//! cargo run --release -p hydra-bench --bin repro -- fig9    # one experiment
//! cargo run --release -p hydra-bench --bin repro -- trace > trace.json
//! ```
//!
//! Run with `--help` (or an unknown selector) for the full selector
//! list. `trace` alone prints nothing but the Chrome trace-event JSON of
//! the demo deployment, ready to pipe into a file and load in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::env;
use std::process::ExitCode;

use hydra_bench::{certify, channel_bench, engine_bench, lint};
use hydra_sim::time::SimDuration;
use hydra_tivo::demo::demo_deployment;
use hydra_tivo::experiments::{
    fig1, fig10_tab3, fig9_tab2, ilp_vs_greedy, tab4_client, SuiteConfig,
};
use hydra_tivo::faults::{fault_demo_plan, run_fault_demo};
use hydra_tivo::onload::compare_designs;
use hydra_tivo::playback::{run_record_playback, PlaybackConfig};
use hydra_tivo::stats::{run_stats_demo, stats_demo_plan};
use hydra_tivo::storage::{build_corpus, run_search, SearchKind};
use hydra_tivo::toe::{run_bulk_receive, TcpPlacement};
use hydra_tivo::virtualization::vm_demux_comparison;

/// Every selector the binary understands, with its one-line description.
const SELECTORS: &[(&str, &str)] = &[
    ("fig1", "the GHz/Gbps TCP processing model (Figure 1)"),
    ("fig9", "server jitter CDFs + Table 2 (alias: tab2)"),
    ("tab2", "alias for fig9"),
    ("fig10", "server CPU/L2 utilization + Table 3 (alias: tab3)"),
    ("tab3", "alias for fig10"),
    ("tab4", "user-space vs offloaded client, incl. client L2"),
    ("ilp", "exact ILP layout vs greedy heuristic"),
    ("playback", "record + playback through the smart disk"),
    ("vmdemux", "§8 extension: VM packet demultiplexing"),
    ("onload", "§1.1 offload vs onload comparison"),
    ("toe", "§1.1 TOE vs host TCP bulk receive"),
    ("search", "§8 extension: disk-side content search"),
    ("metrics", "demo deployment's observability snapshot"),
    (
        "trace",
        "demo deployment's Chrome trace-event JSON (pipe into Perfetto)",
    ),
    (
        "bench",
        "bench [channel|engine|crossover]: benchmark report JSON (BENCH_*.json)",
    ),
    (
        "lint",
        "static deployment verification (JSON on stdout, non-zero on errors)",
    ),
    (
        "certify",
        "certify [set|path...]: quantitative bound certification (JSON on stdout, non-zero on errors)",
    ),
    (
        "faults",
        "replay a fault schedule on the demo deployment (JSON on stdout)",
    ),
    (
        "stats",
        "stats [faulted] [trace]: windowed telemetry timeline + channel cost profiles (JSON on stdout)",
    ),
];

fn usage() -> String {
    let mut out = String::from(
        "usage: repro [--full] [selector...]\n\n\
         With no selector every experiment runs. Flags:\n\
         \x20 --full    paper-length 600 s runs (default 60 s)\n\
         \x20 --help    this text\n\nSelectors:\n",
    );
    for (name, what) in SELECTORS {
        out.push_str(&format!("  {name:<9} {what}\n"));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        SuiteConfig::paper_full()
    } else {
        SuiteConfig::default()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    // `lint [path...]` is its own sub-command: everything after `lint` is
    // a deployment file, not a selector. Canonical JSON goes to stdout
    // (pipe into a .json artifact), human-readable findings to stderr,
    // and the exit code is non-zero iff any error-severity diagnostic
    // fired — the CI verify-gate contract.
    if selected.first() == Some(&"lint") {
        let results = lint::run_lint(&selected[1..]);
        eprint!("{}", lint::render_human(&results));
        println!("{}", lint::render_json(&results));
        return if lint::any_errors(&results) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // `certify [set|path...]` mirrors `lint` for the quantitative
    // passes: everything after `certify` names a built-in set (`demo`,
    // `tivo`, `stats`) or a deployment file. Canonical JSON — report
    // plus bound certificate — goes to stdout, human-readable findings
    // and bounds to stderr, and the exit code is non-zero iff any
    // error-severity diagnostic fired — the CI certify-gate contract.
    if selected.first() == Some(&"certify") {
        let results = certify::run_certify(&selected[1..]);
        eprint!("{}", certify::render_human(&results));
        println!("{}", certify::render_json(&results));
        return if certify::any_errors(&results) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // `faults [schedule-path] [trace]` is likewise its own sub-command:
    // it replays a fault schedule (the committed NIC-crash plan by
    // default, or a `.faults` file) on the fault demo deployment and
    // prints the canonical recovery JSON — byte-identical across runs of
    // the same plan, which is exactly what the CI faults-gate diffs.
    // With `trace` it prints the recovery flight-recorder export instead.
    if selected.first() == Some(&"faults") {
        let rest = &selected[1..];
        let want_trace = rest.contains(&"trace");
        let path = rest.iter().find(|a| **a != "trace");
        let plan = match path {
            Some(p) => match std::fs::read_to_string(p) {
                Ok(text) => match hydra_sim::fault::FaultPlan::parse(&text) {
                    Ok(plan) => plan,
                    Err(e) => {
                        eprintln!("repro: bad fault schedule {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => {
                    eprintln!("repro: cannot read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => fault_demo_plan(),
        };
        let (rt, json) = run_fault_demo(&plan);
        if want_trace {
            println!("{}", rt.trace_export());
        } else {
            print!("{json}");
        }
        return ExitCode::SUCCESS;
    }

    // `stats [faulted] [trace]` is its own sub-command: it drives the
    // telemetry scenario (1 ms windows over a 10 ms mixed workload) and
    // prints the canonical timeline + cost-profile JSON — per-device
    // utilization per window, per-channel queue depths and size-bucketed
    // latency quantiles. Byte-identical across runs, which is exactly
    // what the CI stats-gate diffs. `faulted` replays it under the
    // committed crash/stall plan; `trace` prints the scenario's Chrome
    // trace export instead — the one whose windowed tracks render as
    // Perfetto counter graphs.
    if selected.first() == Some(&"stats") {
        let rest = &selected[1..];
        let want_trace = rest.contains(&"trace");
        let faulted = rest.contains(&"faulted");
        if rest.iter().any(|a| *a != "trace" && *a != "faulted") {
            eprintln!("repro: unknown stats selector '{}'\n", rest.join(" "));
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
        let plan;
        let (snap, json) = if faulted {
            plan = stats_demo_plan();
            run_stats_demo(Some(&plan))
        } else {
            run_stats_demo(None)
        };
        if want_trace {
            println!("{}", hydra_obs::export::chrome_trace(&snap));
        } else {
            print!("{json}");
        }
        return ExitCode::SUCCESS;
    }

    // `bench [<name>]` is its own sub-command: the report JSON goes to
    // stdout with no banner, ready to redirect into the committed
    // `BENCH_<name>.json`. Dispatch goes through the
    // `hydra_bench::BENCHES` manifest, so every committed report has a
    // selector by construction. Plain `bench` keeps its historical
    // meaning (the channel report).
    if selected.first() == Some(&"bench") {
        let name = match &selected[1..] {
            [] => "channel",
            [one] => *one,
            _ => "",
        };
        return match hydra_bench::run_bench(name) {
            Some(json) => {
                print!("{json}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "repro: unknown bench selector '{}' (known: {})\n",
                    selected[1..].join(" "),
                    hydra_bench::BENCHES
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                eprint!("{}", usage());
                ExitCode::FAILURE
            }
        };
    }

    let known = |name: &str| SELECTORS.iter().any(|(s, _)| *s == name);
    if let Some(bad) = selected.iter().find(|s| !known(s)) {
        eprintln!("repro: unknown selector '{bad}'\n");
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    // `trace` alone emits pure JSON on stdout — no banner, no prose —
    // so the output pipes straight into a .json file for Perfetto.
    if selected == ["trace"] {
        println!("{}", demo_deployment().trace_export());
        return ExitCode::SUCCESS;
    }

    println!(
        "HYDRA reproduction — simulated testbed, {} s runs, seed {}",
        cfg.duration.as_secs_f64(),
        cfg.seed
    );
    println!("(paper: Weinsberg et al., ASPLOS 2008)\n");

    if want("fig1") {
        println!("{}", fig1());
        println!();
    }
    if want("fig9") || want("tab2") {
        println!("{}", fig9_tab2(&cfg));
        println!();
    }
    if want("fig10") || want("tab3") {
        println!("{}", fig10_tab3(&cfg));
        println!();
    }
    if want("tab4") {
        println!("{}", tab4_client(&cfg));
        println!();
    }
    if want("ilp") {
        println!("{}", ilp_vs_greedy(cfg.seed, 40));
        println!();
    }
    if want("playback") {
        let run = run_record_playback(PlaybackConfig::default())
            .expect("playback pipeline must round-trip");
        println!("Record + playback (TiVo feature, §1/§6.3)");
        println!(
            "  {} frames recorded to NAS ({} bytes), {} played back",
            25, run.bytes_recorded, run.frames_played
        );
        let s = run.playback_gaps_ms.summary();
        println!(
            "  playback pacing: median {:.2} ms, std {:.3} ms; worst PSNR {:.1} dB\n",
            s.median, s.std_dev, run.worst_psnr_db
        );
    }
    if want("vmdemux") {
        println!("§8 extension — VM packet demultiplexing (host bridge vs NIC Offcode)");
        for run in vm_demux_comparison(cfg.seed, SimDuration::from_secs(10)) {
            println!("  {run}");
        }
        println!();
    }
    if want("onload") {
        println!("§1.1 — offload vs onload (1 kB packets at 100k pps)");
        for p in compare_designs(1024, 100_000.0) {
            println!("  {p}");
        }
        println!();
    }
    if want("toe") {
        println!("§1.1 — TOE vs host TCP (200 kB bulk receive, 2% segment loss)");
        let data: Vec<u8> = (0..200_000usize).map(|i| (i % 249) as u8).collect();
        for placement in TcpPlacement::all() {
            let run = run_bulk_receive(placement, &data, 0.02, cfg.seed);
            assert_eq!(run.delivered, data, "TCP must deliver exactly");
            println!("  {run}");
        }
        println!();
    }
    if want("search") {
        println!("§8 extension — disk-side content search (512 kB corpus, 6 signatures)");
        let needle = b"\x7fVIRUS_SIGNATURE";
        let corpus = build_corpus(512 * 1024, needle, 6, cfg.seed);
        for kind in SearchKind::all() {
            println!("  {}", run_search(kind, &corpus, needle, cfg.seed));
        }
        println!();
    }
    if want("bench") {
        println!("Channel data path — single vs batched (sim time)");
        for r in channel_bench::run_channel_bench() {
            println!(
                "  {:<8} {} msgs x {} B: {} ns ({} B/s, {} ns/msg)",
                r.name,
                r.messages,
                channel_bench::MSG_BYTES,
                r.elapsed_ns,
                r.throughput_bytes_per_sec,
                r.ns_per_message
            );
        }
        println!();
        println!("Engine core — calendar queue vs binary heap (wall clock)");
        let eng = engine_bench::run_engine_bench();
        for h in &eng.hold {
            println!(
                "  {:<16} {} ops @ {} pending: {} events/s",
                h.name,
                h.ops,
                h.pending,
                h.wall_events_per_sec()
            );
        }
        println!(
            "  speedup x100: {} (demo batched path: {} ns/msg)",
            eng.wall_speedup_x100(),
            eng.demo.wall_ns_per_message()
        );
        println!();
    }
    if want("metrics") || want("trace") {
        let rt = demo_deployment();
        if want("metrics") {
            println!("Observability — deployment pipeline + channel metrics snapshot");
            println!("{}", rt.metrics_snapshot());
        }
        if want("trace") {
            println!("Causal trace — Chrome trace-event JSON (load in Perfetto):");
            println!("{}", rt.trace_export());
        }
    }
    ExitCode::SUCCESS
}
