//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hydra-bench --bin repro            # 60 s runs
//! cargo run --release -p hydra-bench --bin repro -- --full  # 600 s (paper)
//! cargo run --release -p hydra-bench --bin repro -- fig9    # one experiment
//! ```
//!
//! Experiments: `fig1`, `fig9` (includes Table 2), `fig10` (includes
//! Table 3), `tab4` (includes client L2), `ilp`, `playback`, the §1.1
//! comparison `onload`, the TOE demonstration `toe`, and the paper's §8
//! extensions `vmdemux` and `search`. With no selector, everything runs.

use std::env;

use hydra_sim::time::SimDuration;
use hydra_tivo::experiments::{
    fig1, fig10_tab3, fig9_tab2, ilp_vs_greedy, tab4_client, SuiteConfig,
};
use hydra_tivo::playback::{run_record_playback, PlaybackConfig};
use hydra_tivo::onload::compare_designs;
use hydra_tivo::toe::{run_bulk_receive, TcpPlacement};
use hydra_tivo::storage::{build_corpus, run_search, SearchKind};
use hydra_tivo::virtualization::vm_demux_comparison;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        SuiteConfig::paper_full()
    } else {
        SuiteConfig::default()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!(
        "HYDRA reproduction — simulated testbed, {} s runs, seed {}",
        cfg.duration.as_secs_f64(),
        cfg.seed
    );
    println!("(paper: Weinsberg et al., ASPLOS 2008)\n");

    if want("fig1") {
        println!("{}", fig1());
        println!();
    }
    if want("fig9") || want("tab2") {
        println!("{}", fig9_tab2(&cfg));
        println!();
    }
    if want("fig10") || want("tab3") {
        println!("{}", fig10_tab3(&cfg));
        println!();
    }
    if want("tab4") {
        println!("{}", tab4_client(&cfg));
        println!();
    }
    if want("ilp") {
        println!("{}", ilp_vs_greedy(cfg.seed, 40));
        println!();
    }
    if want("playback") {
        let run = run_record_playback(PlaybackConfig::default())
            .expect("playback pipeline must round-trip");
        println!("Record + playback (TiVo feature, §1/§6.3)");
        println!(
            "  {} frames recorded to NAS ({} bytes), {} played back",
            25, run.bytes_recorded, run.frames_played
        );
        let s = run.playback_gaps_ms.summary();
        println!(
            "  playback pacing: median {:.2} ms, std {:.3} ms; worst PSNR {:.1} dB\n",
            s.median, s.std_dev, run.worst_psnr_db
        );
    }
    if want("vmdemux") {
        println!("§8 extension — VM packet demultiplexing (host bridge vs NIC Offcode)");
        for run in vm_demux_comparison(cfg.seed, SimDuration::from_secs(10)) {
            println!("  {run}");
        }
        println!();
    }
    if want("onload") {
        println!("§1.1 — offload vs onload (1 kB packets at 100k pps)");
        for p in compare_designs(1024, 100_000.0) {
            println!("  {p}");
        }
        println!();
    }
    if want("toe") {
        println!("§1.1 — TOE vs host TCP (200 kB bulk receive, 2% segment loss)");
        let data: Vec<u8> = (0..200_000usize).map(|i| (i % 249) as u8).collect();
        for placement in TcpPlacement::all() {
            let run = run_bulk_receive(placement, &data, 0.02, cfg.seed);
            assert_eq!(run.delivered, data, "TCP must deliver exactly");
            println!("  {run}");
        }
        println!();
    }
    if want("search") {
        println!("§8 extension — disk-side content search (512 kB corpus, 6 signatures)");
        let needle = b"\x7fVIRUS_SIGNATURE";
        let corpus = build_corpus(512 * 1024, needle, 6, cfg.seed);
        for kind in SearchKind::all() {
            println!("  {}", run_search(kind, &corpus, needle, cfg.seed));
        }
    }
}
