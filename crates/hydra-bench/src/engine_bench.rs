//! Engine-core benchmarks: scheduler hold model, end-to-end event churn,
//! and the demo deployment's batched message loop.
//!
//! Unlike [`crate::channel_bench`] this report mixes two kinds of
//! numbers:
//!
//! * **sim fields** — op counts, pop-stream checksums, simulated elapsed
//!   time. Fully deterministic; CI byte-diffs them across runs and
//!   against the committed `BENCH_engine.json`.
//! * **wall-clock fields** — real `std::time::Instant` measurements of
//!   the same workloads. Machine-dependent by nature, so every such key
//!   carries a `wall_` prefix and the gates strip those lines
//!   ([`crate::report::sim_fields`]) before any byte comparison; the
//!   calendar-vs-heap speedup is instead checked as a *ratio* with a
//!   wide tolerance band through the `hydra_obs` budget machinery.
//!
//! The headline scenario is the classic **hold model** (Vaucher &
//! Duval): keep [`HOLD_PENDING`] events in the scheduler and repeatedly
//! pop the earliest and push a replacement at a jittered future instant.
//! It isolates raw scheduler cost at a realistic steady-state size —
//! exactly where the calendar queue's O(1) amortized push/pop beats the
//! binary heap's O(log n) — and both schedulers must produce the *same*
//! pop stream (pinned by the `checksum` field).

use std::time::Instant;

use bytes::Bytes;
use hydra_core::channel::{BatchSendOutcome, ChannelConfig};
use hydra_core::device::DeviceId;
use hydra_obs::budget::{check_budget, parse_budget, BudgetParseError, BudgetViolation};
use hydra_obs::{MetricsSnapshot, Recorder};
use hydra_sim::engine::{SchedEntry, SchedStats, Scheduler};
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::{BinaryHeapScheduler, CalendarQueue, EventId, SchedulerKind, Sim, SlabKey};
use hydra_tivo::demo::demo_deployment;

use crate::report::{self, num, text, Report};

/// Events resident in the scheduler during the hold model. Deep enough
/// that the heap's O(log n) pays ~18 cache-missing levels per op while
/// the calendar stays O(1).
pub const HOLD_PENDING: usize = 262_144;

/// Pop-push operations per hold-model run.
pub const HOLD_OPS: usize = 262_144;

/// Self-rescheduling timers in the end-to-end churn simulation.
pub const CHURN_TIMERS: u64 = 1024;

/// Global event target the churn timers run until.
pub const CHURN_TARGET_EVENTS: u64 = 65_536;

/// Messages pushed through the demo deployment's bench channel.
pub const DEMO_MESSAGES: usize = 8192;

/// Messages per doorbell in the demo loop.
pub const DEMO_BATCH: usize = 32;

/// Payload bytes per demo message.
pub const DEMO_MSG_BYTES: usize = 256;

/// Wall-clock repetitions; the minimum is reported to damp noise.
pub const WALL_REPS: usize = 3;

/// One hold-model run: deterministic pop-stream facts plus wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldResult {
    /// Scenario name (`churn_heap` / `churn_calendar`).
    pub name: &'static str,
    /// Pop-push operations performed.
    pub ops: u64,
    /// Events resident throughout.
    pub pending: u64,
    /// Wrapping sum of every popped `(at, seq)` — identical across
    /// schedulers iff the pop streams are identical.
    pub checksum: u64,
    /// Best-of-[`WALL_REPS`] wall-clock time for the run.
    pub wall_elapsed_ns: u64,
    /// Scheduler introspection from the final rep (resize churn,
    /// high-water occupancy, calendar geometry). Deterministic for a
    /// given workload, but reported under `wall_sched_*` keys so
    /// calendar sizing heuristics can evolve without breaking the
    /// byte gate.
    pub sched: SchedStats,
}

impl HoldResult {
    /// Scheduler operations per wall-clock second.
    #[must_use]
    pub fn wall_events_per_sec(&self) -> u64 {
        per_sec(self.ops, self.wall_elapsed_ns)
    }
}

/// One end-to-end churn simulation run on a full [`Sim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnResult {
    /// Scenario name (`sim_churn_heap` / `sim_churn_calendar`).
    pub name: &'static str,
    /// Events executed (timer ticks + cancellation dummies).
    pub events: u64,
    /// Simulated time consumed — deterministic.
    pub sim_elapsed_ns: u64,
    /// Wall-clock time for the run.
    pub wall_elapsed_ns: u64,
    /// Scheduler introspection after the run (see
    /// [`HoldResult::sched`]).
    pub sched: SchedStats,
}

impl ChurnResult {
    /// Executed events per wall-clock second.
    #[must_use]
    pub fn wall_events_per_sec(&self) -> u64 {
        per_sec(self.events, self.wall_elapsed_ns)
    }
}

/// The demo deployment's batched send/recv loop measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemoResult {
    /// Messages sent and drained.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Simulated time consumed — deterministic.
    pub sim_elapsed_ns: u64,
    /// Best-of-[`WALL_REPS`] wall-clock time for the loop.
    pub wall_elapsed_ns: u64,
}

impl DemoResult {
    /// Wall-clock nanoseconds per message through the batched path.
    #[must_use]
    pub fn wall_ns_per_message(&self) -> u64 {
        self.wall_elapsed_ns / self.messages.max(1)
    }
}

/// Everything `BENCH_engine.json` is rendered from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineBench {
    /// Hold-model runs: `[heap, calendar]`.
    pub hold: [HoldResult; 2],
    /// End-to-end churn runs: `[heap, calendar]`.
    pub churn: [ChurnResult; 2],
    /// The demo deployment message loop.
    pub demo: DemoResult,
}

impl EngineBench {
    /// Calendar-vs-heap hold-model speedup, ×100 (so `200` = 2×).
    #[must_use]
    pub fn wall_speedup_x100(&self) -> u64 {
        let heap = self.hold[0].wall_events_per_sec().max(1);
        self.hold[1].wall_events_per_sec() * 100 / heap
    }
}

fn per_sec(count: u64, wall_ns: u64) -> u64 {
    (u128::from(count) * 1_000_000_000 / u128::from(wall_ns.max(1))) as u64
}

/// Deterministic xorshift64 — the bench's only randomness source.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs every engine scenario and returns the full measurement set.
#[must_use]
pub fn run_engine_bench() -> EngineBench {
    EngineBench {
        hold: [
            run_hold("churn_heap", BinaryHeapScheduler::new),
            run_hold("churn_calendar", CalendarQueue::new),
        ],
        churn: [
            run_churn("sim_churn_heap", SchedulerKind::BinaryHeap),
            run_churn("sim_churn_calendar", SchedulerKind::Calendar),
        ],
        demo: run_demo(),
    }
}

fn run_hold<S: Scheduler>(name: &'static str, make: impl Fn() -> S) -> HoldResult {
    let mut best_wall = u64::MAX;
    let mut checksum = 0u64;
    let mut sched_stats = SchedStats::default();
    for _ in 0..WALL_REPS {
        let mut sched = make();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let key = SlabKey { slot: 0, gen: 0 };
        let mut seq = 0u64;
        let mut at = 0u64;
        for _ in 0..HOLD_PENDING {
            // Pre-fill with clustered timestamps so same-instant bursts
            // exist from the start (jitter of 0 is possible).
            at += xorshift(&mut rng) % 512;
            sched.push(SchedEntry {
                at: SimTime::from_nanos(at),
                seq,
                key,
            });
            seq += 1;
        }
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..HOLD_OPS {
            let popped = sched.pop().expect("hold model never drains");
            sum = sum
                .wrapping_add(popped.at.as_nanos())
                .wrapping_mul(31)
                .wrapping_add(popped.seq);
            let hold = xorshift(&mut rng) % 4096;
            sched.push(SchedEntry {
                at: popped.at + SimDuration::from_nanos(hold),
                seq,
                key,
            });
            seq += 1;
        }
        best_wall = best_wall.min(start.elapsed().as_nanos() as u64);
        checksum = sum;
        sched_stats = sched.stats();
        assert_eq!(sched.len(), HOLD_PENDING, "hold model keeps size fixed");
    }
    HoldResult {
        name,
        ops: HOLD_OPS as u64,
        pending: HOLD_PENDING as u64,
        checksum,
        wall_elapsed_ns: best_wall,
        sched: sched_stats,
    }
}

struct ChurnModel {
    fired: u64,
    dummy: Option<EventId>,
}

fn run_churn(name: &'static str, kind: SchedulerKind) -> ChurnResult {
    let mut sim = Sim::with_scheduler(
        ChurnModel {
            fired: 0,
            dummy: None,
        },
        kind,
    );
    for i in 0..CHURN_TIMERS {
        // Clustered phases and harmonically related periods: plenty of
        // same-instant bursts, exactly what the FIFO tie-break protects.
        let phase = SimTime::from_nanos(i % 97);
        let period = SimDuration::from_nanos(800 + (i % 64) * 25);
        sim.every(phase, period, move |s| {
            s.model_mut().fired += 1;
            let fired = s.model().fired;
            if fired % 32 == 0 {
                // Cancellation churn: retire the previous far-future
                // dummy and park a new one, so the slab's stale-key
                // path stays hot in steady state.
                if let Some(old) = s.model_mut().dummy.take() {
                    s.cancel(old);
                }
                let at = s.now().saturating_add(SimDuration::from_millis(500));
                let id = s.schedule_at(at, |_| {});
                s.model_mut().dummy = Some(id);
            }
            fired < CHURN_TARGET_EVENTS
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed().as_nanos() as u64;
    ChurnResult {
        name,
        events: sim.events_executed(),
        sim_elapsed_ns: sim.now().as_nanos(),
        wall_elapsed_ns: wall,
        sched: sim.sched_stats(),
    }
}

fn run_demo() -> DemoResult {
    let mut best_wall = u64::MAX;
    let mut sim_elapsed = 0u64;
    for _ in 0..WALL_REPS {
        let mut rt = demo_deployment();
        let chan = rt
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .expect("bench channel on the NIC");
        let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
        let ep = ch.connect_endpoint().expect("fresh channel has room");
        let payload = Bytes::from(vec![0x5Au8; DEMO_MSG_BYTES]);
        let batch: Vec<Bytes> = vec![payload; DEMO_BATCH];
        // One reused outcome: after warm-up the steady-state loop does
        // no heap allocation — payload handles are refcounted clones
        // flowing through `send_batch_into`.
        let mut outcome = BatchSendOutcome {
            delivered_at: Vec::new(),
            rejected: 0,
            dropped: 0,
            complete_at: SimTime::ZERO,
            retries: 0,
        };
        let start = Instant::now();
        let mut now = SimTime::ZERO;
        let mut sent = 0usize;
        let mut drained = 0usize;
        while sent < DEMO_MESSAGES {
            let n = DEMO_BATCH.min(DEMO_MESSAGES - sent);
            ch.send_batch_into(now, &batch[..n], &mut outcome);
            assert_eq!(outcome.accepted(), n, "drained channel accepts the batch");
            now = outcome.complete_at;
            drained += ch.recv_batch(now, ep, usize::MAX).len();
            sent += n;
        }
        best_wall = best_wall.min(start.elapsed().as_nanos() as u64);
        assert_eq!(drained, DEMO_MESSAGES, "every message delivered");
        sim_elapsed = now.as_nanos();
    }
    DemoResult {
        messages: DEMO_MESSAGES as u64,
        bytes: (DEMO_MESSAGES * DEMO_MSG_BYTES) as u64,
        sim_elapsed_ns: sim_elapsed,
        wall_elapsed_ns: best_wall,
    }
}

/// Renders the `BENCH_engine.json` report through the shared
/// [`crate::report`] serializer: `"schema": 1`, one key per line,
/// `wall_` prefix on every nondeterministic field.
#[must_use]
pub fn render_json(bench: &EngineBench) -> String {
    let mut rep = Report {
        bench: "engine",
        config: vec![
            num("hold_pending", HOLD_PENDING as u64),
            num("hold_ops", HOLD_OPS as u64),
            num("churn_timers", CHURN_TIMERS),
            num("churn_target_events", CHURN_TARGET_EVENTS),
            num("demo_messages", DEMO_MESSAGES as u64),
            num("demo_batch", DEMO_BATCH as u64),
            num("demo_bytes_per_message", DEMO_MSG_BYTES as u64),
        ],
        scenarios: Vec::new(),
    };
    for h in &bench.hold {
        rep.scenarios.push(vec![
            text("name", h.name),
            num("ops", h.ops),
            num("pending", h.pending),
            num("checksum", h.checksum),
            num("wall_elapsed_ns", h.wall_elapsed_ns),
            num("wall_events_per_sec", h.wall_events_per_sec()),
            num("wall_sched_grows", h.sched.grows),
            num("wall_sched_shrinks", h.sched.shrinks),
            num("wall_sched_max_pending", h.sched.max_pending),
            num("wall_sched_buckets", h.sched.buckets),
            num("wall_sched_bucket_width_ns", h.sched.bucket_width_ns),
        ]);
    }
    for c in &bench.churn {
        rep.scenarios.push(vec![
            text("name", c.name),
            num("events", c.events),
            num("sim_elapsed_ns", c.sim_elapsed_ns),
            num("wall_elapsed_ns", c.wall_elapsed_ns),
            num("wall_events_per_sec", c.wall_events_per_sec()),
            num("wall_sched_grows", c.sched.grows),
            num("wall_sched_shrinks", c.sched.shrinks),
            num("wall_sched_max_pending", c.sched.max_pending),
            num("wall_sched_buckets", c.sched.buckets),
            num("wall_sched_bucket_width_ns", c.sched.bucket_width_ns),
        ]);
    }
    rep.scenarios.push(vec![
        text("name", "demo_send_batch"),
        num("messages", bench.demo.messages),
        num("bytes", bench.demo.bytes),
        num("sim_elapsed_ns", bench.demo.sim_elapsed_ns),
        num("wall_elapsed_ns", bench.demo.wall_elapsed_ns),
        num("wall_ns_per_message", bench.demo.wall_ns_per_message()),
    ]);
    rep.scenarios.push(vec![
        text("name", "speedup"),
        num("wall_calendar_vs_heap_x100", bench.wall_speedup_x100()),
    ]);
    report::render(&rep)
}

/// Re-expresses the measurements as a [`MetricsSnapshot`] so the budget
/// comparator can gate them: deterministic counters get zero-tolerance
/// budget lines, the wall-clock speedup ratio gets a wide band.
#[must_use]
pub fn engine_snapshot(bench: &EngineBench) -> MetricsSnapshot {
    let rec = Recorder::new();
    for h in &bench.hold {
        rec.counter_add("bench.ops", h.name, h.ops);
        rec.counter_add("bench.checksum", h.name, h.checksum);
    }
    for c in &bench.churn {
        rec.counter_add("bench.events", c.name, c.events);
        rec.counter_add("bench.sim_elapsed_ns", c.name, c.sim_elapsed_ns);
    }
    rec.counter_add("bench.messages", "demo_send_batch", bench.demo.messages);
    rec.counter_add(
        "bench.sim_elapsed_ns",
        "demo_send_batch",
        bench.demo.sim_elapsed_ns,
    );
    rec.counter_add(
        "bench.wall_speedup_x100",
        "churn",
        bench.wall_speedup_x100(),
    );
    rec.snapshot()
}

/// Checks fresh measurements against the committed baseline (the
/// contents of `budgets/bench_engine.json`).
///
/// # Errors
///
/// Fails if the baseline JSON is malformed.
pub fn check_engine_bench(
    bench: &EngineBench,
    baseline_json: &str,
) -> Result<Vec<BudgetViolation>, BudgetParseError> {
    let budget = parse_budget(baseline_json)?;
    Ok(check_budget(&engine_snapshot(bench), &budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{read_u64, schema_version, sim_fields};

    #[test]
    fn sim_fields_are_deterministic_across_runs() {
        let a = run_engine_bench();
        let b = run_engine_bench();
        assert_eq!(
            sim_fields(&render_json(&a)),
            sim_fields(&render_json(&b)),
            "everything outside wall_ lines must be byte-identical"
        );
    }

    #[test]
    fn both_schedulers_pop_the_same_hold_stream() {
        let bench = run_engine_bench();
        assert_eq!(
            bench.hold[0].checksum, bench.hold[1].checksum,
            "heap and calendar must pop identical (at, seq) streams"
        );
        assert_eq!(bench.churn[0].events, bench.churn[1].events);
        assert_eq!(bench.churn[0].sim_elapsed_ns, bench.churn[1].sim_elapsed_ns);
    }

    #[test]
    fn sched_introspection_lands_in_the_report() {
        let bench = run_engine_bench();
        // Hold model: the heap only tracks its high-water mark; the
        // calendar additionally reports geometry and resize churn.
        assert_eq!(bench.hold[0].sched.max_pending, HOLD_PENDING as u64);
        assert_eq!(bench.hold[0].sched.buckets, 0);
        assert!(bench.hold[1].sched.max_pending >= HOLD_PENDING as u64);
        assert!(
            bench.hold[1].sched.grows >= 1,
            "pre-fill grows the calendar"
        );
        assert!(bench.hold[1].sched.buckets > 0);
        let json = render_json(&bench);
        assert!(json.contains("\"wall_sched_max_pending\""));
        assert!(json.contains("\"wall_sched_buckets\""));
    }

    #[test]
    fn report_carries_schema_and_headline_fields() {
        let bench = run_engine_bench();
        let json = render_json(&bench);
        assert_eq!(schema_version(&json), Some(report::SCHEMA_VERSION));
        assert_eq!(read_u64(&json, "ops"), Some(HOLD_OPS as u64));
        assert_eq!(
            read_u64(&json, "wall_calendar_vs_heap_x100"),
            Some(bench.wall_speedup_x100())
        );
        assert!(json.contains("\"name\": \"demo_send_batch\""));
    }

    #[test]
    fn snapshot_mirrors_the_deterministic_fields() {
        let bench = run_engine_bench();
        let snap = engine_snapshot(&bench);
        assert_eq!(
            snap.counter("bench.checksum", "churn_calendar"),
            Some(bench.hold[1].checksum)
        );
        assert_eq!(
            snap.counter("bench.messages", "demo_send_batch"),
            Some(bench.demo.messages)
        );
    }
}
