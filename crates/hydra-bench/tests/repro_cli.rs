//! CLI contract of the `repro` binary: selector listing, unknown-selector
//! failure, and the pure-JSON `bench` output CI redirects into
//! `BENCH_channel.json`.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn help_lists_every_selector_including_bench() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for selector in ["fig1", "fig9", "metrics", "trace", "bench"] {
        assert!(text.contains(selector), "--help must list '{selector}'");
    }
}

#[test]
fn unknown_selector_exits_nonzero_with_usage_on_stderr() {
    let out = repro(&["no-such-figure"]);
    assert!(!out.status.success(), "unknown selector must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown selector 'no-such-figure'"));
    assert!(err.contains("usage: repro"), "usage goes to stderr");
    assert!(out.stdout.is_empty(), "nothing on stdout on failure");
}

#[test]
fn bench_alone_emits_pure_deterministic_json() {
    let a = repro(&["bench"]);
    assert!(a.status.success());
    let text = String::from_utf8(a.stdout.clone()).unwrap();
    assert!(text.starts_with('{'), "no banner before the JSON");
    assert!(text.contains("\"schema\": 1"));
    assert!(text.contains("\"bench\": \"channel\""));
    assert!(text.contains("\"name\": \"batch8\""));
    let b = repro(&["bench"]);
    assert_eq!(a.stdout, b.stdout, "byte-identical across runs");
}

#[test]
fn bench_channel_subselector_matches_bare_bench() {
    let bare = repro(&["bench"]);
    let explicit = repro(&["bench", "channel"]);
    assert!(explicit.status.success());
    assert_eq!(
        bare.stdout, explicit.stdout,
        "`bench` and `bench channel` are the same report"
    );
}

#[test]
fn bench_engine_emits_json_with_stable_sim_fields() {
    let a = repro(&["bench", "engine"]);
    assert!(a.status.success());
    let text = String::from_utf8(a.stdout.clone()).unwrap();
    assert!(text.starts_with('{'), "no banner before the JSON");
    assert!(text.contains("\"schema\": 1"));
    assert!(text.contains("\"bench\": \"engine\""));
    assert!(text.contains("\"name\": \"churn_calendar\""));
    assert!(
        text.contains("\"wall_elapsed_ns\""),
        "wall-clock fields carry the wall_ prefix"
    );
    // Wall-clock lines differ run to run; everything else must not.
    let b = repro(&["bench", "engine"]);
    let sim_only = |bytes: &[u8]| -> String {
        let mut out = String::new();
        for l in String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.contains("\"wall_"))
        {
            out.push_str(l);
            out.push('\n');
        }
        out
    };
    assert_eq!(
        sim_only(&a.stdout),
        sim_only(&b.stdout),
        "sim fields byte-identical across runs"
    );
}

#[test]
fn stats_emits_pure_deterministic_timeline_json() {
    let a = repro(&["stats"]);
    assert!(a.status.success());
    let text = String::from_utf8(a.stdout.clone()).unwrap();
    assert!(text.starts_with('{'), "no banner before the JSON");
    assert!(text.contains("\"schema\": 1"));
    assert!(text.contains("\"window_ns\": 1000000"));
    assert!(
        text.contains("\"label\": \"device-1\""),
        "NIC utilization row"
    );
    assert!(text.contains("\"label\": \"host\""), "host utilization row");
    assert!(
        text.contains("\"p50_ns\""),
        "latency quantiles by size bucket"
    );
    assert!(text.contains("\"p99_ns\""));
    assert!(text.contains("\"bucket_bytes\": 16384"), "bulk size class");
    let b = repro(&["stats"]);
    assert_eq!(a.stdout, b.stdout, "byte-identical across runs");
}

#[test]
fn stats_faulted_is_deterministic_and_differs_from_clean() {
    let clean = repro(&["stats"]);
    let a = repro(&["stats", "faulted"]);
    assert!(a.status.success());
    let b = repro(&["stats", "faulted"]);
    assert_eq!(a.stdout, b.stdout, "faulted run byte-identical across runs");
    assert_ne!(
        a.stdout, clean.stdout,
        "the fault plan perturbs the timeline"
    );
}

#[test]
fn stats_trace_renders_perfetto_counter_tracks() {
    let a = repro(&["stats", "trace"]);
    assert!(a.status.success());
    let text = String::from_utf8(a.stdout.clone()).unwrap();
    assert!(text.starts_with('{'), "no banner before the JSON");
    assert!(
        text.contains("\"ph\":\"C\""),
        "sampled windows become Perfetto counter events"
    );
    assert!(text.contains("device.busy_ns"), "utilization counter track");
    assert!(
        text.contains("channel.queue_depth"),
        "queue-depth counter track"
    );
    let b = repro(&["stats", "trace"]);
    assert_eq!(a.stdout, b.stdout, "byte-identical across runs");
    let faulted = repro(&["stats", "faulted", "trace"]);
    assert!(faulted.status.success());
    assert_ne!(
        faulted.stdout, a.stdout,
        "the fault plan perturbs the trace"
    );
}

#[test]
fn unknown_stats_subselector_exits_nonzero_with_usage() {
    let out = repro(&["stats", "no-such-mode"]);
    assert!(!out.status.success(), "unknown stats selector must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown stats selector 'no-such-mode'"));
    assert!(err.contains("usage: repro"), "usage goes to stderr");
    assert!(out.stdout.is_empty(), "nothing on stdout on failure");
}

#[test]
fn help_lists_stats_selector() {
    let out = repro(&["--help"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stats"), "--help must list 'stats'");
    assert!(text.contains("telemetry timeline"));
}

#[test]
fn unknown_bench_subselector_exits_nonzero_with_usage() {
    let out = repro(&["bench", "no-such-bench"]);
    assert!(!out.status.success(), "unknown bench selector must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown bench selector 'no-such-bench'"));
    assert!(err.contains("usage: repro"), "usage goes to stderr");
    assert!(out.stdout.is_empty(), "nothing on stdout on failure");
}
