//! Manifest lints: per-ODF and per-set checks that need no layout graph —
//! GUID/bind-name collisions, dangling or duplicate imports, and target
//! sets that no installed device can satisfy.

use std::collections::BTreeMap;

use hydra_odf::odf::{class_ids, Guid, OdfDocument};

use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::DeviceTable;

/// Runs the manifest pass; returns (diagnostics, work units).
pub(crate) fn run(odfs: &[OdfDocument], table: &DeviceTable) -> (Vec<Diagnostic>, u64) {
    let mut diags = Vec::new();
    let mut work = 0u64;

    let mut by_guid: BTreeMap<Guid, &str> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Guid> = BTreeMap::new();
    for odf in odfs {
        work += 1;
        if let Some(first) = by_guid.get(&odf.guid) {
            diags.push(Diagnostic::new(
                HvCode::DuplicateGuid,
                Loc::Odf {
                    bind_name: odf.bind_name.clone(),
                },
                format!("{} already used by '{first}'", odf.guid),
            ));
        } else {
            by_guid.insert(odf.guid, &odf.bind_name);
        }
        if let Some(first) = by_name.get(odf.bind_name.as_str()) {
            diags.push(Diagnostic::new(
                HvCode::DuplicateBindName,
                Loc::Odf {
                    bind_name: odf.bind_name.clone(),
                },
                format!("bind name also declared by the ODF with {first}"),
            ));
        } else {
            by_name.insert(&odf.bind_name, odf.guid);
        }
    }

    for odf in odfs {
        let mut seen: Vec<(Guid, &str)> = Vec::new();
        for imp in &odf.imports {
            work += 1;
            let loc = Loc::Import {
                bind_name: odf.bind_name.clone(),
                import: imp.bind_name.clone(),
            };
            if imp.guid == odf.guid {
                diags.push(Diagnostic::new(
                    HvCode::SelfImport,
                    loc.clone(),
                    format!("imports its own {}", imp.guid),
                ));
            } else if !by_guid.contains_key(&imp.guid) {
                diags.push(Diagnostic::new(
                    HvCode::DanglingImport,
                    loc.clone(),
                    format!("{} is not in the deployment set", imp.guid),
                ));
            }
            if seen.contains(&(imp.guid, imp.constraint.as_str())) {
                diags.push(Diagnostic::new(
                    HvCode::DuplicateImport,
                    loc,
                    format!("repeated {} import of {}", imp.constraint, imp.guid),
                ));
            } else {
                seen.push((imp.guid, imp.constraint.as_str()));
            }
        }
    }

    for odf in odfs {
        let loc = Loc::Odf {
            bind_name: odf.bind_name.clone(),
        };
        let offloadable: Vec<_> = odf
            .targets
            .iter()
            .filter(|t| t.id != class_ids::HOST_CPU)
            .collect();
        if offloadable.is_empty() {
            diags.push(Diagnostic::new(
                HvCode::HostOnlyTargets,
                loc.clone(),
                "no non-host target device classes declared",
            ));
            continue;
        }
        let mut any_feasible = false;
        for spec in &offloadable {
            work += 1;
            if table.feasible_count(spec) == 0 {
                diags.push(Diagnostic::new(
                    HvCode::UnsatisfiableTargetSpec,
                    loc.clone(),
                    format!(
                        "device class '{}' (id 0x{:04x}) matches no installed device",
                        spec.name, spec.id
                    ),
                ));
            } else {
                any_feasible = true;
            }
        }
        if !any_feasible {
            diags.push(Diagnostic::new(
                HvCode::NoFeasibleDevice,
                loc,
                "none of the declared target classes matches an installed device; every deployment will use the host",
            ));
        }
    }

    (diags, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DeviceInfo;
    use hydra_odf::odf::{ConstraintKind, DeviceClassSpec, Import};

    fn table() -> DeviceTable {
        DeviceTable {
            devices: vec![
                DeviceInfo {
                    class: class_ids::HOST_CPU,
                    name: "host".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 20,
                },
                DeviceInfo {
                    class: class_ids::NETWORK,
                    name: "nic".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 20,
                },
            ],
        }
    }

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    fn import(guid: Guid, kind: ConstraintKind) -> Import {
        Import {
            file: String::new(),
            bind_name: format!("peer-{}", guid.0),
            guid,
            constraint: kind,
            priority: 0,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<HvCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn duplicate_guid_and_bind_name_flagged() {
        let odfs = vec![
            OdfDocument::new("a", Guid(1)).with_target(class(class_ids::NETWORK)),
            OdfDocument::new("a", Guid(1)).with_target(class(class_ids::NETWORK)),
        ];
        let (diags, _) = run(&odfs, &table());
        assert!(codes(&diags).contains(&HvCode::DuplicateGuid));
        assert!(codes(&diags).contains(&HvCode::DuplicateBindName));
    }

    #[test]
    fn dangling_self_and_duplicate_imports_flagged() {
        let odfs = vec![OdfDocument::new("a", Guid(1))
            .with_target(class(class_ids::NETWORK))
            .with_import(import(Guid(99), ConstraintKind::Link))
            .with_import(import(Guid(1), ConstraintKind::Pull))
            .with_import(import(Guid(2), ConstraintKind::Gang))
            .with_import(import(Guid(2), ConstraintKind::Gang))]
        .into_iter()
        .chain([OdfDocument::new("b", Guid(2)).with_target(class(class_ids::NETWORK))])
        .collect::<Vec<_>>();
        let (diags, _) = run(&odfs, &table());
        let c = codes(&diags);
        assert!(c.contains(&HvCode::DanglingImport));
        assert!(c.contains(&HvCode::SelfImport));
        assert!(c.contains(&HvCode::DuplicateImport));
    }

    #[test]
    fn target_lints_fire_by_tier() {
        let odfs = vec![
            OdfDocument::new("hostish", Guid(1)),
            OdfDocument::new("ghost", Guid(2)).with_target(class(class_ids::GPU)),
            OdfDocument::new("ok", Guid(3))
                .with_target(class(class_ids::GPU))
                .with_target(class(class_ids::NETWORK)),
        ];
        let (diags, _) = run(&odfs, &table());
        let for_odf = |name: &str| {
            diags
                .iter()
                .filter(|d| matches!(&d.loc, Loc::Odf { bind_name } if bind_name == name))
                .map(|d| d.code)
                .collect::<Vec<_>>()
        };
        assert_eq!(for_odf("hostish"), vec![HvCode::HostOnlyTargets]);
        assert_eq!(
            for_odf("ghost"),
            vec![HvCode::UnsatisfiableTargetSpec, HvCode::NoFeasibleDevice]
        );
        assert_eq!(for_odf("ok"), vec![HvCode::UnsatisfiableTargetSpec]);
    }

    #[test]
    fn clean_set_produces_no_diagnostics() {
        let odfs = vec![
            OdfDocument::new("a", Guid(1))
                .with_target(class(class_ids::NETWORK))
                .with_import(import(Guid(2), ConstraintKind::Pull)),
            OdfDocument::new("peer-2", Guid(2)).with_target(class(class_ids::NETWORK)),
        ];
        let (diags, work) = run(&odfs, &table());
        assert!(diags.is_empty(), "{diags:?}");
        assert!(work > 0);
    }
}
