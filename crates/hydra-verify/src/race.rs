//! Ring-sharing race detection: a lockset/ownership analysis over the
//! writers of each descriptor ring.
//!
//! Every node with inbound import edges serves one descriptor ring; its
//! writers post descriptors into it. Posting is safe when the writers
//! are *ordered* — a directed import path between them means one blocks
//! on (a chain reaching) the other, serializing their posts — or when
//! every placement pins them onto the same single-threaded executor.
//!
//! For an unordered writer pair the analysis compares placement sets
//! (the precheck's narrowed feasible devices, or the host fallback when
//! a writer has none):
//!
//! - placements that can differ, or a shared multi-device set → the
//!   writers can run on different processors and interleave
//!   mid-descriptor: `HV050`, error;
//! - both pinned to the same non-host device → posts serialize in
//!   steady state, but a migration transient (PR 5's re-layout) can
//!   alias the live endpoint while the peer still posts: `HV051`,
//!   warning;
//! - both host-only → the host dispatch loop serializes them; clean.

use std::collections::BTreeSet;

use crate::channels::adjacency;
use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::GraphView;
use crate::precheck::Precheck;

/// Runs the ring-race pass; returns (diagnostics, work units).
pub(crate) fn run(view: &GraphView, pre: &Precheck) -> (Vec<Diagnostic>, u64) {
    let n = view.nodes.len();
    let adj = adjacency(view);
    let mut work = (n + view.edges.len()) as u64;

    // reach[a] — every node reachable from a along import edges.
    let mut reach: Vec<Vec<bool>> = Vec::with_capacity(n);
    for a in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![a];
        seen[a] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        reach.push(seen);
    }

    // The placement set race analysis reasons over: the narrowed feasible
    // devices, or the host when narrowing left nothing.
    let placements = |x: usize| -> BTreeSet<usize> {
        if pre.feasible[x].is_empty() {
            BTreeSet::from([0])
        } else {
            pre.feasible[x].clone()
        }
    };

    let mut diags = Vec::new();
    for j in 0..n {
        let writers: BTreeSet<usize> = view
            .edges
            .iter()
            .filter(|e| e.to == j)
            .map(|e| e.from)
            .collect();
        if writers.len() < 2 {
            continue;
        }
        let ws: Vec<usize> = writers.into_iter().collect();
        for (i, &a) in ws.iter().enumerate() {
            for &b in &ws[i + 1..] {
                work += 1;
                if reach[a][b] || reach[b][a] {
                    continue; // ordered: one transitively waits on the other
                }
                let pa = placements(a);
                let pb = placements(b);
                let loc = Loc::Node {
                    index: j,
                    bind_name: view.nodes[j].bind_name.clone(),
                };
                let pair = format!(
                    "{} and {}",
                    view.nodes[a].bind_name, view.nodes[b].bind_name
                );
                if pa == pb && pa.len() == 1 {
                    let only = *pa.iter().next().expect("len checked");
                    if only == 0 {
                        continue; // host dispatch serializes the posts
                    }
                    diags.push(
                        Diagnostic::new(
                            HvCode::MigrationAliasRace,
                            loc,
                            format!(
                                "unordered writers {pair} share this ring; both pin to \
                                 device {only}, but a migration transient can alias the \
                                 live endpoint"
                            ),
                        )
                        .for_subject(view.nodes[j].guid),
                    );
                } else {
                    diags.push(
                        Diagnostic::new(
                            HvCode::RingWriteRace,
                            loc,
                            format!(
                                "unordered writers {pair} post to this ring from \
                                 placements that can differ: descriptor interleaving \
                                 is possible"
                            ),
                        )
                        .for_subject(view.nodes[j].guid),
                    );
                }
            }
        }
    }

    (diags, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{EdgeView, NodeView};
    use hydra_odf::odf::{ConstraintKind, Guid};

    fn node(name: &str, guid: u64, compat: &[bool]) -> NodeView {
        NodeView {
            guid: Guid(guid),
            bind_name: name.into(),
            compat: compat.to_vec(),
            demand: 1024,
            traffic: None,
        }
    }

    fn edge(from: usize, to: usize) -> EdgeView {
        EdgeView {
            from,
            to,
            kind: ConstraintKind::Link,
        }
    }

    fn run_race(view: &GraphView) -> Vec<Diagnostic> {
        let pre = Precheck::narrow(view);
        run(view, &pre).0
    }

    #[test]
    fn differing_placements_fire_hv050() {
        // a can run on device 1, b on device 2, both post to sink.
        let view = GraphView {
            nodes: vec![
                node("a", 1, &[true, true, false]),
                node("b", 2, &[true, false, true]),
                node("sink", 3, &[true, true, true]),
            ],
            edges: vec![edge(0, 2), edge(1, 2)],
        };
        let diags = run_race(&view);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, HvCode::RingWriteRace);
        assert_eq!(diags[0].subject, Some(Guid(3)));
    }

    #[test]
    fn ordering_edge_serializes_the_pair() {
        // a -> b -> sink and a -> sink: a waits on b transitively.
        let view = GraphView {
            nodes: vec![
                node("a", 1, &[true, true, false]),
                node("b", 2, &[true, false, true]),
                node("sink", 3, &[true, true, true]),
            ],
            edges: vec![edge(0, 1), edge(1, 2), edge(0, 2)],
        };
        assert!(run_race(&view).is_empty());
    }

    #[test]
    fn same_device_pin_downgrades_to_hv051() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, &[true, true]),
                node("b", 2, &[true, true]),
                node("sink", 3, &[true, true]),
            ],
            edges: vec![edge(0, 2), edge(1, 2)],
        };
        let diags = run_race(&view);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, HvCode::MigrationAliasRace);
    }

    #[test]
    fn host_only_writers_are_clean() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, &[true]),
                node("b", 2, &[true]),
                node("sink", 3, &[true]),
            ],
            edges: vec![edge(0, 2), edge(1, 2)],
        };
        assert!(run_race(&view).is_empty());
    }

    #[test]
    fn shared_multi_device_set_is_still_a_race() {
        // Both writers could go to either device — the solver may split
        // them, so the pair races.
        let view = GraphView {
            nodes: vec![
                node("a", 1, &[true, true, true]),
                node("b", 2, &[true, true, true]),
                node("sink", 3, &[true, true, true]),
            ],
            edges: vec![edge(0, 2), edge(1, 2)],
        };
        let diags = run_race(&view);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, HvCode::RingWriteRace);
    }
}
