//! Flow certification: network-calculus propagation of arrival and
//! service curves through the deployment graph.
//!
//! Every Offcode declares (or defaults) a token-bucket arrival curve for
//! its outbound calls: sustained `rate_per_sec`, `burst` messages, and
//! `max_bytes` per message. Each node with inbound import edges serves
//! one descriptor ring; the pass aggregates the curves of all writers
//! into the ring and charges the worst-case service time from the
//! [`ServiceTable`] the Channel Executive itself exports. From that it
//! derives, per ring:
//!
//! - **stability** — the aggregate arrival rate must not exceed the
//!   worst-case service rate (`HV041` when it does: no finite bound
//!   exists);
//! - **worst-case queue depth** — the sum of writer bursts plus one
//!   in-service slot per writer (`HV040` when it exceeds the ring
//!   capacity: statically provable ring exhaustion);
//! - **worst-case latency** — queue bound × worst-case service time plus
//!   one worst-case provider setup (the first message on a cold channel
//!   pays it).
//!
//! Device utilization charges every ring's load against *every* device
//! the precheck still allows it on (plus the host fallback), so the
//! bound holds for any placement the solver picks: `HV042` above 1000‰
//! sustained, `HV043` above 800‰. Chain latency bounds sum the ring
//! bounds along every maximal import path from the deployment roots.
//!
//! A [`FaultOverlay`] widens the *certificate* (latency and utilization)
//! by the committed fault plan's per-device disruption budget without
//! changing the diagnostics: a fault plan makes observed behavior worse,
//! never the deployment more broken.

use std::collections::BTreeSet;

use hydra_odf::odf::{Guid, TrafficSpec};

use crate::channels::adjacency;
use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::{DeviceTable, GraphView};
use crate::precheck::Precheck;
use crate::service::ServiceTable;

/// Default sustained rate assumed for an Offcode without a `<traffic>`
/// element (messages per second).
pub const DEFAULT_RATE_PER_SEC: u64 = 1_000;
/// Default burst assumed without a `<traffic>` element.
pub const DEFAULT_BURST: u64 = 1;
/// Default message size assumed without a `<traffic>` element (bytes).
pub const DEFAULT_MAX_BYTES: u64 = 1_024;

/// Most maximal chains enumerated before the certificate truncates.
const MAX_CHAINS: usize = 64;

/// Certified worst-case bounds for one descriptor ring (one serving
/// Offcode instance and every channel posting into it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelBound {
    /// Node index of the serving Offcode.
    pub node: usize,
    /// Bind name of the serving Offcode.
    pub bind_name: String,
    /// GUID of the serving Offcode (raw value).
    pub guid_value: u64,
    /// Number of distinct writers posting into the ring.
    pub writers: u64,
    /// Aggregate sustained arrival rate (messages per second).
    pub rate_per_sec: u64,
    /// Largest message any writer can post (bytes).
    pub max_bytes: u64,
    /// Worst-case per-message service time (nanoseconds).
    pub service_ns: u64,
    /// Worst-case queue depth (descriptor-ring entries).
    pub queue_bound: u64,
    /// The ring's capacity in entries.
    pub ring_capacity: u64,
    /// Whether the ring is stable (arrival rate ≤ service rate).
    pub stable: bool,
    /// Worst-case per-message latency through the ring in nanoseconds;
    /// `None` when the ring is unstable (no finite bound exists).
    pub latency_bound_ns: Option<u64>,
}

/// Certified end-to-end latency bound for one maximal import chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainBound {
    /// Bind names along the chain, root first.
    pub path: Vec<String>,
    /// Sum of per-hop ring latency bounds; `None` if any hop is
    /// unstable.
    pub latency_bound_ns: Option<u64>,
}

/// Certified sustained utilization bound for one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceBound {
    /// Device index in the table (0 = host).
    pub index: usize,
    /// Diagnostic name.
    pub name: String,
    /// Worst-case sustained busy time in permille of wall time.
    pub permille: u64,
}

/// The quantitative certificate: every bound the flow pass derived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Certificate {
    /// Per-ring bounds, in serving-node index order.
    pub channels: Vec<ChannelBound>,
    /// Per-chain latency bounds, lexicographic by path.
    pub chains: Vec<ChainBound>,
    /// Per-device utilization bounds, in device index order.
    pub devices: Vec<DeviceBound>,
    /// Whether chain enumeration hit the cap and was truncated.
    pub truncated: bool,
}

impl Certificate {
    /// Looks up the bound for the ring served by `bind_name`.
    pub fn channel(&self, bind_name: &str) -> Option<&ChannelBound> {
        self.channels.iter().find(|c| c.bind_name == bind_name)
    }

    /// Looks up the utilization bound for device `index`.
    pub fn device(&self, index: usize) -> Option<&DeviceBound> {
        self.devices.iter().find(|d| d.index == index)
    }

    /// Canonical JSON: fixed field order, pre-sorted vectors, no
    /// nondeterministic content.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"channels\":[");
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let latency = c
                .latency_bound_ns
                .map_or_else(|| "null".to_owned(), |v| v.to_string());
            out.push_str(&format!(
                "{{\"ring\":\"{}\",\"guid\":{},\"writers\":{},\"rate_per_sec\":{},\
                 \"max_bytes\":{},\"service_ns\":{},\"queue_bound\":{},\
                 \"ring_capacity\":{},\"stable\":{},\"latency_bound_ns\":{}}}",
                crate::diag::escape(&c.bind_name),
                c.guid_value,
                c.writers,
                c.rate_per_sec,
                c.max_bytes,
                c.service_ns,
                c.queue_bound,
                c.ring_capacity,
                c.stable,
                latency
            ));
        }
        out.push_str("],\"chains\":[");
        for (i, ch) in self.chains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let path: Vec<String> = ch
                .path
                .iter()
                .map(|p| format!("\"{}\"", crate::diag::escape(p)))
                .collect();
            let latency = ch
                .latency_bound_ns
                .map_or_else(|| "null".to_owned(), |v| v.to_string());
            out.push_str(&format!(
                "{{\"path\":[{}],\"latency_bound_ns\":{}}}",
                path.join(","),
                latency
            ));
        }
        out.push_str("],\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"name\":\"{}\",\"permille\":{}}}",
                d.index,
                crate::diag::escape(&d.name),
                d.permille
            ));
        }
        out.push_str(&format!("],\"truncated\":{}}}", self.truncated));
        out
    }
}

/// A committed fault plan's disruption budget, used to *widen* the
/// certificate so bounds still bracket observed behavior under faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultOverlay {
    /// Per-device total disruption over the horizon: `(device index,
    /// nanoseconds the device is stalled or recovering)`.
    pub disruptions: Vec<(usize, u64)>,
    /// The observation horizon in nanoseconds the disruptions are
    /// amortized over.
    pub horizon_ns: u64,
}

impl FaultOverlay {
    /// Total disruption budget charged to device `k`.
    fn device_ns(&self, k: usize) -> u64 {
        self.disruptions
            .iter()
            .filter(|(d, _)| *d == k)
            .map(|(_, ns)| *ns)
            .sum()
    }

    /// The disruption in permille of the horizon for device `k`.
    fn device_permille(&self, k: usize) -> u64 {
        if self.horizon_ns == 0 {
            return 0;
        }
        let num = u128::from(self.device_ns(k)) * 1_000u128;
        u64::try_from(num.div_ceil(u128::from(self.horizon_ns))).unwrap_or(u64::MAX)
    }
}

/// The effective arrival curve for a node: declared or defaulted.
fn effective_traffic(view: &GraphView, n: usize) -> TrafficSpec {
    view.nodes[n].traffic.unwrap_or(TrafficSpec {
        rate_per_sec: DEFAULT_RATE_PER_SEC,
        burst: DEFAULT_BURST,
        max_bytes: DEFAULT_MAX_BYTES,
    })
}

/// Runs the flow pass; returns (diagnostics, work units, certificate).
///
/// Diagnostics are judged on the *unwidened* bounds; the `overlay` (a
/// committed fault plan) then widens the certificate's latency and
/// utilization entries so the differential harness can assert
/// bracketing under faults too.
pub(crate) fn run(
    view: &GraphView,
    pre: &Precheck,
    services: &ServiceTable,
    devices: &DeviceTable,
    roots: Option<&[Guid]>,
    overlay: Option<&FaultOverlay>,
) -> (Vec<Diagnostic>, u64, Certificate) {
    let mut diags = Vec::new();
    let n = view.nodes.len();
    let work = (n + view.edges.len()) as u64;

    // HV044: outbound callers running on the default curve.
    let mut has_out = vec![false; n];
    for e in &view.edges {
        has_out[e.from] = true;
    }
    for (i, _) in has_out.iter().enumerate().filter(|&(_, out)| *out) {
        if view.nodes[i].traffic.is_none() {
            diags.push(
                Diagnostic::new(
                    HvCode::DefaultedTraffic,
                    Loc::Node {
                        index: i,
                        bind_name: view.nodes[i].bind_name.clone(),
                    },
                    format!(
                        "no <traffic> element; certified with the default curve \
                         ({DEFAULT_RATE_PER_SEC}/s burst {DEFAULT_BURST} x {DEFAULT_MAX_BYTES}B)"
                    ),
                )
                .for_subject(view.nodes[i].guid),
            );
        }
    }

    // Per-ring aggregation: every node with inbound edges serves a ring.
    let mut channels = Vec::new();
    for j in 0..n {
        let inbound: Vec<usize> = view
            .edges
            .iter()
            .filter(|e| e.to == j)
            .map(|e| e.from)
            .collect();
        if inbound.is_empty() {
            continue;
        }
        let writer_set: BTreeSet<usize> = inbound.iter().copied().collect();
        let mut agg_rate: u64 = 0;
        let mut burst_sum: u64 = 0;
        let mut max_bytes: u64 = 0;
        for &w in &inbound {
            let t = effective_traffic(view, w);
            agg_rate = agg_rate.saturating_add(t.rate_per_sec);
            burst_sum = burst_sum.saturating_add(t.burst);
            max_bytes = max_bytes.max(t.max_bytes);
        }
        let service_ns = services.worst_service_ns(max_bytes);
        // Stable iff the worst-case time to serve one second's arrivals
        // fits in one second: rate × service_ns ≤ 1e9 (u128, no overflow).
        let stable = u128::from(agg_rate) * u128::from(service_ns) <= 1_000_000_000u128;
        // Each writer can dump its full burst concurrently, plus one
        // message in service per writer.
        let queue_bound = burst_sum.saturating_add(writer_set.len() as u64);
        let loc = Loc::Node {
            index: j,
            bind_name: view.nodes[j].bind_name.clone(),
        };
        if !stable {
            diags.push(
                Diagnostic::new(
                    HvCode::UnstableChannel,
                    loc.clone(),
                    format!(
                        "aggregate arrival rate {agg_rate}/s exceeds worst-case service \
                         rate ({service_ns}ns per {max_bytes}B message): backlog is unbounded"
                    ),
                )
                .for_subject(view.nodes[j].guid),
            );
        } else if queue_bound > services.ring_capacity {
            diags.push(
                Diagnostic::new(
                    HvCode::QueueBoundExceedsRing,
                    loc,
                    format!(
                        "worst-case queue depth {queue_bound} exceeds ring capacity {}: \
                         ring exhaustion is statically provable",
                        services.ring_capacity
                    ),
                )
                .for_subject(view.nodes[j].guid),
            );
        }
        let latency_bound_ns = stable.then(|| {
            queue_bound
                .saturating_mul(service_ns)
                .saturating_add(services.worst_setup_ns())
        });
        channels.push(ChannelBound {
            node: j,
            bind_name: view.nodes[j].bind_name.clone(),
            guid_value: view.nodes[j].guid.0,
            writers: writer_set.len() as u64,
            rate_per_sec: agg_rate,
            max_bytes,
            service_ns,
            queue_bound,
            ring_capacity: services.ring_capacity,
            stable,
            latency_bound_ns,
        });
    }

    // Device utilization: charge each ring's load to every device the
    // precheck still allows the serving node on, plus the host fallback —
    // the bound then holds for any placement the solver picks.
    let mut busy_permille = vec![0u128; devices.devices.len()];
    for c in &channels {
        let j = c.node;
        let mut placements: BTreeSet<usize> = pre.feasible[j].clone();
        placements.insert(0);
        let mut load_ns: u128 = 0;
        for e in view.edges.iter().filter(|e| e.to == j) {
            let t = effective_traffic(view, e.from);
            load_ns +=
                u128::from(t.rate_per_sec) * u128::from(services.device_occupancy_ns(t.max_bytes));
        }
        for &k in &placements {
            if k < busy_permille.len() {
                busy_permille[k] += load_ns;
            }
        }
    }
    let mut device_bounds = Vec::new();
    for (k, dev) in devices.devices.iter().enumerate() {
        // load_ns is ns-per-second of busy time; /1e6 gives permille.
        let permille = u64::try_from(busy_permille[k] / 1_000_000u128).unwrap_or(u64::MAX);
        let loc = Loc::Device {
            index: k,
            name: dev.name.clone(),
        };
        if permille > 1000 {
            diags.push(Diagnostic::new(
                HvCode::UtilizationOverrun,
                loc,
                format!(
                    "certified sustained utilization {permille} permille exceeds 1000: \
                     the declared load cannot be served"
                ),
            ));
        } else if permille > 800 {
            diags.push(Diagnostic::new(
                HvCode::UtilizationHigh,
                loc,
                format!("certified sustained utilization {permille} permille exceeds 800"),
            ));
        }
        device_bounds.push(DeviceBound {
            index: k,
            name: dev.name.clone(),
            permille,
        });
    }

    // Widen the certificate by the committed fault plan: a disrupted
    // device can stall every ring it may host for its full disruption
    // budget, and its busy fraction can rise by the same share.
    let mut certificate = Certificate {
        channels,
        chains: Vec::new(),
        devices: device_bounds,
        truncated: false,
    };
    if let Some(ov) = overlay {
        for c in &mut certificate.channels {
            let j = c.node;
            let extra = pre.feasible[j]
                .iter()
                .chain(std::iter::once(&0))
                .map(|&k| ov.device_ns(k))
                .max()
                .unwrap_or(0);
            c.latency_bound_ns = c.latency_bound_ns.map(|l| l.saturating_add(extra));
        }
        for d in &mut certificate.devices {
            let widened = d.permille.saturating_add(ov.device_permille(d.index));
            d.permille = widened.min(1000).max(d.permille.min(1000));
        }
    }

    // Chains: every maximal simple path from the deployment roots, with
    // latency as the sum of the (possibly widened) per-hop ring bounds.
    let root_idx: Vec<usize> = match roots {
        Some(guids) => (0..n)
            .filter(|&i| guids.contains(&view.nodes[i].guid))
            .collect(),
        None => {
            let mut imported = vec![false; n];
            for e in &view.edges {
                imported[e.to] = true;
            }
            (0..n).filter(|&i| !imported[i]).collect()
        }
    };
    let adj = adjacency(view);
    // Per-node hop cost: a served ring's latency bound, `None` for an
    // unstable ring (no finite bound poisons the chain), zero for a
    // node that serves no ring (cannot appear as a hop, but total
    // correctly ignores it).
    let ring_latency: Vec<Option<u64>> = (0..n)
        .map(|j| {
            certificate
                .channels
                .iter()
                .find(|c| c.node == j)
                .map_or(Some(0), |c| c.latency_bound_ns)
        })
        .collect();
    let mut chains = Vec::new();
    let mut truncated = false;
    for &r in &root_idx {
        let mut path = vec![r];
        let mut on_path = vec![false; n];
        on_path[r] = true;
        dfs_chains(
            &adj,
            view,
            &ring_latency,
            &mut path,
            &mut on_path,
            &mut chains,
            &mut truncated,
        );
    }
    chains.sort_by(|a, b| a.path.cmp(&b.path));
    chains.dedup();
    certificate.chains = chains;
    certificate.truncated = truncated;

    (diags, work, certificate)
}

/// Depth-first enumeration of maximal simple paths; records a chain when
/// the tip has no unvisited successor.
fn dfs_chains(
    adj: &[Vec<usize>],
    view: &GraphView,
    ring_latency: &[Option<u64>],
    path: &mut Vec<usize>,
    on_path: &mut [bool],
    chains: &mut Vec<ChainBound>,
    truncated: &mut bool,
) {
    if chains.len() >= MAX_CHAINS {
        *truncated = true;
        return;
    }
    let v = *path.last().expect("path never empty");
    let mut extended = false;
    for &w in &adj[v] {
        if on_path[w] {
            continue;
        }
        extended = true;
        path.push(w);
        on_path[w] = true;
        dfs_chains(adj, view, ring_latency, path, on_path, chains, truncated);
        on_path[w] = false;
        path.pop();
    }
    if !extended && path.len() > 1 {
        let mut total: Option<u64> = Some(0);
        for &hop in path.iter().skip(1) {
            total = match (total, ring_latency[hop]) {
                (Some(t), Some(l)) => Some(t.saturating_add(l)),
                _ => None,
            };
        }
        chains.push(ChainBound {
            path: path
                .iter()
                .map(|&i| view.nodes[i].bind_name.clone())
                .collect(),
            latency_bound_ns: total,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{EdgeView, NodeView};
    use hydra_odf::odf::{class_ids, ConstraintKind};

    fn node(name: &str, guid: u64, traffic: Option<TrafficSpec>) -> NodeView {
        NodeView {
            guid: Guid(guid),
            bind_name: name.into(),
            compat: vec![true, true],
            demand: 1024,
            traffic,
        }
    }

    fn edge(from: usize, to: usize) -> EdgeView {
        EdgeView {
            from,
            to,
            kind: ConstraintKind::Link,
        }
    }

    fn table() -> DeviceTable {
        DeviceTable {
            devices: vec![
                crate::input::DeviceInfo {
                    class: class_ids::HOST_CPU,
                    name: "host".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 28,
                },
                crate::input::DeviceInfo {
                    class: class_ids::NETWORK,
                    name: "nic".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 21,
                },
            ],
        }
    }

    fn run_flow(
        view: &GraphView,
        overlay: Option<&FaultOverlay>,
    ) -> (Vec<Diagnostic>, Certificate) {
        let pre = Precheck::narrow(view);
        let (d, _, c) = run(
            view,
            &pre,
            &ServiceTable::conservative_default(),
            &table(),
            None,
            overlay,
        );
        (d, c)
    }

    fn spec(rate: u64, burst: u64, bytes: u64) -> TrafficSpec {
        TrafficSpec {
            rate_per_sec: rate,
            burst,
            max_bytes: bytes,
        }
    }

    #[test]
    fn stable_ring_gets_finite_bounds() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, Some(spec(10_000, 2, 16 * 1024))),
                node("b", 2, None),
            ],
            edges: vec![edge(0, 1)],
        };
        let (diags, cert) = run_flow(&view, None);
        assert!(diags.iter().all(|d| d.code != HvCode::UnstableChannel));
        let c = cert.channel("b").unwrap();
        assert!(c.stable);
        assert_eq!(c.queue_bound, 3, "burst 2 + one in service");
        assert_eq!(c.service_ns, 9_000 + 65_536, "kernel-copy dominates 16K");
        assert_eq!(c.latency_bound_ns, Some(3 * (9_000 + 65_536) + 140_000));
        assert_eq!(cert.chains.len(), 1);
        assert_eq!(cert.chains[0].path, vec!["a", "b"]);
        assert_eq!(cert.chains[0].latency_bound_ns, c.latency_bound_ns);
    }

    #[test]
    fn overload_fires_hv041_and_kills_latency() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, Some(spec(1_000_000, 1, 16 * 1024))),
                node("b", 2, None),
            ],
            edges: vec![edge(0, 1)],
        };
        let (diags, cert) = run_flow(&view, None);
        assert!(diags.iter().any(|d| d.code == HvCode::UnstableChannel));
        assert_eq!(cert.channel("b").unwrap().latency_bound_ns, None);
        assert_eq!(cert.chains[0].latency_bound_ns, None);
    }

    #[test]
    fn burst_overflow_fires_hv040() {
        let view = GraphView {
            nodes: vec![node("a", 1, Some(spec(1_000, 100, 64))), node("b", 2, None)],
            edges: vec![edge(0, 1)],
        };
        let (diags, cert) = run_flow(&view, None);
        assert!(diags
            .iter()
            .any(|d| d.code == HvCode::QueueBoundExceedsRing));
        assert!(cert.channel("b").unwrap().queue_bound > 64);
        // The ring is still stable: the bound is about depth, not rate.
        assert!(cert.channel("b").unwrap().stable);
    }

    #[test]
    fn defaulted_traffic_reports_hv044_for_writers_only() {
        let view = GraphView {
            nodes: vec![node("a", 1, None), node("b", 2, None)],
            edges: vec![edge(0, 1)],
        };
        let (diags, _) = run_flow(&view, None);
        let defaults: Vec<_> = diags
            .iter()
            .filter(|d| d.code == HvCode::DefaultedTraffic)
            .collect();
        assert_eq!(defaults.len(), 1, "only the writer is defaulted");
        assert_eq!(defaults[0].subject, Some(Guid(1)));
    }

    #[test]
    fn utilization_charges_every_feasible_device() {
        // 60k msgs/s of 16 KiB: occupancy 26.384µs each → ~1583‰.
        let view = GraphView {
            nodes: vec![
                node("a", 1, Some(spec(60_000, 1, 16 * 1024))),
                node("b", 2, None),
            ],
            edges: vec![edge(0, 1)],
        };
        let (diags, cert) = run_flow(&view, None);
        assert!(diags.iter().any(|d| d.code == HvCode::UtilizationOverrun));
        // Charged to the NIC (feasible) *and* the host (fallback).
        assert!(cert.device(0).unwrap().permille > 1000);
        assert!(cert.device(1).unwrap().permille > 1000);
    }

    #[test]
    fn overlay_widens_certificate_not_diagnostics() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, Some(spec(10_000, 2, 16 * 1024))),
                node("b", 2, None),
            ],
            edges: vec![edge(0, 1)],
        };
        let (base_diags, base) = run_flow(&view, None);
        let overlay = FaultOverlay {
            disruptions: vec![(1, 400_000)],
            horizon_ns: 10_000_000,
        };
        let (diags, widened) = run_flow(&view, Some(&overlay));
        assert_eq!(base_diags, diags, "overlay never changes findings");
        let b0 = base.channel("b").unwrap().latency_bound_ns.unwrap();
        let b1 = widened.channel("b").unwrap().latency_bound_ns.unwrap();
        assert_eq!(b1, b0 + 400_000);
        assert_eq!(
            widened.device(1).unwrap().permille,
            base.device(1).unwrap().permille + 40
        );
    }

    #[test]
    fn certificate_json_is_deterministic() {
        let view = GraphView {
            nodes: vec![
                node("a", 1, Some(spec(10_000, 2, 16 * 1024))),
                node("b", 2, None),
            ],
            edges: vec![edge(0, 1)],
        };
        let (_, c1) = run_flow(&view, None);
        let (_, c2) = run_flow(&view, None);
        assert_eq!(c1.to_json(), c2.to_json());
        assert!(c1.to_json().contains("\"queue_bound\":3"));
    }
}
