//! Infeasibility pre-check: a narrowing fixpoint over per-node feasible
//! non-host device sets.
//!
//! The propagation is *sound*: it only removes a device from a node's set
//! when no satisfying placement can use it, so `host_only()` returning
//! `true` proves the all-host placement is the only feasible one and the
//! branch-and-bound solve can be skipped entirely. The rules:
//!
//! - `Pull(a, b)` — both endpoints must land on the same device, so any
//!   offloaded placement uses a device in both sets: intersect them.
//! - `Gang(a, b)` — offloading either requires offloading the other, so
//!   an empty side clears its peer.
//! - `AsymGang(a → b)` — offloading `a` requires offloading `b`, so an
//!   empty `b` clears `a`.
//! - `Link` — no placement coupling.

use std::collections::BTreeSet;

use hydra_odf::odf::ConstraintKind;

use crate::input::GraphView;

/// The fixpoint result: per-node sets of still-feasible non-host devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Precheck {
    /// `feasible[n]` — non-host device indices node `n` may still use.
    pub feasible: Vec<BTreeSet<usize>>,
    /// Fixpoint iterations (for pass accounting).
    pub rounds: u64,
}

impl Precheck {
    /// Runs the narrowing fixpoint over the graph view.
    pub fn narrow(view: &GraphView) -> Self {
        let mut feasible: Vec<BTreeSet<usize>> = (0..view.nodes.len())
            .map(|n| view.offload_options(n).into_iter().collect())
            .collect();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = false;
            for e in &view.edges {
                match e.kind {
                    ConstraintKind::Link => {}
                    ConstraintKind::Pull => {
                        let inter: BTreeSet<usize> = feasible[e.from]
                            .intersection(&feasible[e.to])
                            .copied()
                            .collect();
                        if feasible[e.from] != inter {
                            feasible[e.from].clone_from(&inter);
                            changed = true;
                        }
                        if feasible[e.to] != inter {
                            feasible[e.to] = inter;
                            changed = true;
                        }
                    }
                    ConstraintKind::Gang => {
                        if feasible[e.from].is_empty() && !feasible[e.to].is_empty() {
                            feasible[e.to].clear();
                            changed = true;
                        }
                        if feasible[e.to].is_empty() && !feasible[e.from].is_empty() {
                            feasible[e.from].clear();
                            changed = true;
                        }
                    }
                    ConstraintKind::AsymGang => {
                        if feasible[e.to].is_empty() && !feasible[e.from].is_empty() {
                            feasible[e.from].clear();
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Precheck { feasible, rounds }
    }

    /// Whether every node's narrowed set is empty — i.e. the all-host
    /// placement is provably the only feasible one and an ILP solve is
    /// pointless. Vacuously `true` for an empty graph.
    pub fn host_only(&self) -> bool {
        self.feasible.iter().all(BTreeSet::is_empty)
    }

    /// Whether node `n` *had* offload options before narrowing but lost
    /// them all to constraint propagation.
    pub fn forced_host(&self, view: &GraphView, n: usize) -> bool {
        self.feasible[n].is_empty() && !view.offload_options(n).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{EdgeView, NodeView};
    use hydra_odf::odf::Guid;

    fn node(name: &str, compat: &[bool]) -> NodeView {
        NodeView {
            guid: Guid(name.len() as u64),
            bind_name: name.into(),
            compat: compat.to_vec(),
            demand: 1024,
            traffic: None,
        }
    }

    fn edge(from: usize, to: usize, kind: ConstraintKind) -> EdgeView {
        EdgeView { from, to, kind }
    }

    #[test]
    fn pull_intersects_both_sides() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, false]),
                node("b", &[true, false, true]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::Pull)],
        };
        let pre = Precheck::narrow(&view);
        assert!(pre.host_only(), "disjoint pull narrows both to empty");
        assert!(pre.forced_host(&view, 0));
        assert!(pre.forced_host(&view, 1));
    }

    #[test]
    fn gang_clears_peer_of_host_only_node() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, false, false]),
                node("b", &[true, false, true]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::Gang)],
        };
        let pre = Precheck::narrow(&view);
        assert!(pre.host_only());
        assert!(!pre.forced_host(&view, 0), "a never had options");
        assert!(pre.forced_host(&view, 1));
    }

    #[test]
    fn asym_gang_is_one_directional() {
        // a --AsymGang--> b with b host-only clears a...
        let forward = GraphView {
            nodes: vec![
                node("a", &[true, false, true]),
                node("b", &[true, false, false]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::AsymGang)],
        };
        assert!(Precheck::narrow(&forward).host_only());
        // ...but b --AsymGang--> a leaves a free to offload.
        let backward = GraphView {
            edges: vec![edge(1, 0, ConstraintKind::AsymGang)],
            ..forward
        };
        let pre = Precheck::narrow(&backward);
        assert!(!pre.host_only());
        assert_eq!(pre.feasible[0].len(), 1);
    }

    #[test]
    fn propagation_chains_to_fixpoint() {
        // c is host-only; Gang(b, c) clears b; Pull(a, b) then clears a.
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, true]),
                node("b", &[true, true, true]),
                node("c", &[true, false, false]),
            ],
            edges: vec![
                edge(0, 1, ConstraintKind::Pull),
                edge(1, 2, ConstraintKind::Gang),
            ],
        };
        let pre = Precheck::narrow(&view);
        assert!(pre.host_only());
        assert!(pre.rounds >= 2);
    }

    #[test]
    fn unconstrained_nodes_keep_their_options() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, false]),
                node("b", &[true, false, true]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::Link)],
        };
        let pre = Precheck::narrow(&view);
        assert!(!pre.host_only());
        assert_eq!(pre.feasible[0], BTreeSet::from([1]));
        assert_eq!(pre.feasible[1], BTreeSet::from([2]));
    }
}
