//! Constraint analysis over the layout graph: Gang/AsymGang import
//! cycles (Tarjan SCC), contradictory parallel edges, Pull edges whose
//! endpoints share no feasible device, and Gang edges that drag an
//! offloadable peer to the host.

use hydra_odf::odf::ConstraintKind;

use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::GraphView;
use crate::precheck::Precheck;

/// Runs the constraint pass; returns (diagnostics, work units).
pub(crate) fn run(view: &GraphView, pre: &Precheck) -> (Vec<Diagnostic>, u64) {
    let mut diags = Vec::new();
    let work = (view.nodes.len() + view.edges.len()) as u64;

    gang_cycles(view, &mut diags);
    conflicting_edges(view, &mut diags);

    for e in &view.edges {
        let loc = Loc::Edge {
            from: view.nodes[e.from].bind_name.clone(),
            to: view.nodes[e.to].bind_name.clone(),
        };
        match e.kind {
            ConstraintKind::Pull => {
                let a = view.offload_options(e.from);
                let b = view.offload_options(e.to);
                let disjoint = !a.iter().any(|d| b.contains(d));
                if disjoint && (!a.is_empty() || !b.is_empty()) {
                    diags.push(Diagnostic::new(
                        HvCode::DisjointPull,
                        loc,
                        "Pull endpoints have no feasible device in common; the constraint is only satisfiable on the host",
                    ));
                }
            }
            ConstraintKind::Gang | ConstraintKind::AsymGang => {
                for (host_side, peer) in [(e.from, e.to), (e.to, e.from)] {
                    // AsymGang only couples from → to.
                    if e.kind == ConstraintKind::AsymGang && host_side != e.to {
                        continue;
                    }
                    // host_side must be *intrinsically* host-only (not itself
                    // dragged there), so a propagation chain yields one
                    // root-cause diagnostic instead of one per hop.
                    if pre.feasible[host_side].is_empty()
                        && !pre.forced_host(view, host_side)
                        && pre.forced_host(view, peer)
                    {
                        diags.push(Diagnostic::new(
                            HvCode::GangForcedHost,
                            loc.clone(),
                            format!(
                                "'{}' cannot be offloaded, so the {} constraint pins '{}' to the host",
                                view.nodes[host_side].bind_name,
                                e.kind,
                                view.nodes[peer].bind_name
                            ),
                        ));
                    }
                }
            }
            ConstraintKind::Link => {}
        }
    }

    (diags, work)
}

/// Flags directed cycles in the Gang/AsymGang subgraph (HV010). Import
/// direction is importer → imported; any SCC with more than one node
/// means the offload-coupling relation is circular.
fn gang_cycles(view: &GraphView, diags: &mut Vec<Diagnostic>) {
    let gang_edges: Vec<(usize, usize)> = view
        .edges
        .iter()
        .filter(|e| matches!(e.kind, ConstraintKind::Gang | ConstraintKind::AsymGang))
        .map(|e| (e.from, e.to))
        .collect();
    for scc in sccs(view.nodes.len(), &gang_edges) {
        if scc.len() > 1 {
            let names: Vec<&str> = scc
                .iter()
                .map(|&n| view.nodes[n].bind_name.as_str())
                .collect();
            diags.push(Diagnostic::new(
                HvCode::GangCycle,
                Loc::Node {
                    index: scc[0],
                    bind_name: view.nodes[scc[0]].bind_name.clone(),
                },
                format!("gang constraint cycle through {}", names.join(" -> ")),
            ));
        }
    }
}

/// Flags node pairs connected by parallel edges with differing constraint
/// kinds (HV011): the resolver silently lets the strictest win.
fn conflicting_edges(view: &GraphView, diags: &mut Vec<Diagnostic>) {
    for (i, a) in view.edges.iter().enumerate() {
        let pair = (a.from.min(a.to), a.from.max(a.to));
        let mut kinds = vec![a.kind];
        let mut first_for_pair = true;
        for b in &view.edges[..i] {
            if (b.from.min(b.to), b.from.max(b.to)) == pair {
                first_for_pair = false;
            }
        }
        if !first_for_pair {
            continue;
        }
        for b in &view.edges[i + 1..] {
            if (b.from.min(b.to), b.from.max(b.to)) == pair && !kinds.contains(&b.kind) {
                kinds.push(b.kind);
            }
        }
        if kinds.len() > 1 {
            let mut names: Vec<&str> = kinds.iter().map(ConstraintKind::as_str).collect();
            names.sort_unstable();
            diags.push(Diagnostic::new(
                HvCode::ConflictingEdges,
                Loc::Edge {
                    from: view.nodes[pair.0].bind_name.clone(),
                    to: view.nodes[pair.1].bind_name.clone(),
                },
                format!(
                    "parallel edges carry different constraints ({}); the strictest silently wins",
                    names.join(", ")
                ),
            ));
        }
    }
}

/// Tarjan's strongly-connected components, iterative, deterministic
/// (nodes visited in index order). Returns each SCC with its members in
/// ascending index order.
fn sccs(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        // call stack: (node, next child offset)
        let mut call = vec![(start, 0usize)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{EdgeView, NodeView};
    use hydra_odf::odf::Guid;

    fn node(name: &str, compat: &[bool]) -> NodeView {
        NodeView {
            guid: Guid(name.len() as u64),
            bind_name: name.into(),
            compat: compat.to_vec(),
            demand: 1024,
            traffic: None,
        }
    }

    fn edge(from: usize, to: usize, kind: ConstraintKind) -> EdgeView {
        EdgeView { from, to, kind }
    }

    fn check(view: &GraphView) -> Vec<Diagnostic> {
        let pre = Precheck::narrow(view);
        run(view, &pre).0
    }

    #[test]
    fn gang_two_cycle_detected() {
        let view = GraphView {
            nodes: vec![node("a", &[true, true]), node("b", &[true, true])],
            edges: vec![
                edge(0, 1, ConstraintKind::Gang),
                edge(1, 0, ConstraintKind::Gang),
            ],
        };
        let diags = check(&view);
        assert_eq!(
            diags.iter().filter(|d| d.code == HvCode::GangCycle).count(),
            1
        );
    }

    #[test]
    fn asym_gang_three_cycle_detected() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true]),
                node("b", &[true, true]),
                node("c", &[true, true]),
            ],
            edges: vec![
                edge(0, 1, ConstraintKind::AsymGang),
                edge(1, 2, ConstraintKind::AsymGang),
                edge(2, 0, ConstraintKind::AsymGang),
            ],
        };
        let diags = check(&view);
        assert!(diags.iter().any(|d| d.code == HvCode::GangCycle));
    }

    #[test]
    fn gang_chain_is_clean() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true]),
                node("b", &[true, true]),
                node("c", &[true, true]),
            ],
            edges: vec![
                edge(0, 1, ConstraintKind::Gang),
                edge(1, 2, ConstraintKind::AsymGang),
            ],
        };
        assert!(check(&view).is_empty());
    }

    #[test]
    fn disjoint_pull_flagged_only_when_offloadable() {
        let disjoint = GraphView {
            nodes: vec![
                node("a", &[true, true, false]),
                node("b", &[true, false, true]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::Pull)],
        };
        assert!(check(&disjoint)
            .iter()
            .any(|d| d.code == HvCode::DisjointPull));

        // Both host-only: Pull is trivially satisfied on the host.
        let both_host = GraphView {
            nodes: vec![
                node("a", &[true, false, false]),
                node("b", &[true, false, false]),
            ],
            edges: vec![edge(0, 1, ConstraintKind::Pull)],
        };
        assert!(check(&both_host).is_empty());
    }

    #[test]
    fn conflicting_parallel_edges_flagged_once() {
        let view = GraphView {
            nodes: vec![node("a", &[true, true]), node("b", &[true, true])],
            edges: vec![
                edge(0, 1, ConstraintKind::Link),
                edge(1, 0, ConstraintKind::Pull),
            ],
        };
        let diags = check(&view);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == HvCode::ConflictingEdges)
                .count(),
            1
        );
    }

    #[test]
    fn gang_forced_host_warns_at_the_edge() {
        let view = GraphView {
            nodes: vec![node("a", &[true, false]), node("b", &[true, true])],
            edges: vec![edge(0, 1, ConstraintKind::Gang)],
        };
        let diags = check(&view);
        assert!(diags.iter().any(|d| d.code == HvCode::GangForcedHost));
    }
}
