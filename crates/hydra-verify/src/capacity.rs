//! Resource pre-check: worst-case memory demand per device vs the device
//! table. The greedy resolver absorbs overcommit by silently falling back
//! to the host; this pass surfaces it statically instead.

use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::{DeviceTable, GraphView};

/// Runs the capacity pass; returns (diagnostics, work units).
pub(crate) fn run(view: &GraphView, table: &DeviceTable) -> (Vec<Diagnostic>, u64) {
    let mut diags = Vec::new();
    let work = (view.nodes.len() * table.devices.len().max(1)) as u64;

    // Per-device aggregates; index 0 (the host) is skipped — host fallback
    // is the mechanism, not a failure.
    for (k, dev) in table.devices.iter().enumerate().skip(1) {
        let mut pinned = 0u64;
        let mut pinned_count = 0usize;
        let mut total = 0u64;
        for n in 0..view.nodes.len() {
            let options = view.offload_options(n);
            if !options.contains(&k) {
                continue;
            }
            total = total.saturating_add(view.nodes[n].demand);
            if options.len() == 1 {
                pinned = pinned.saturating_add(view.nodes[n].demand);
                pinned_count += 1;
            }
        }
        let loc = Loc::Device {
            index: k,
            name: dev.name.clone(),
        };
        if pinned > dev.offcode_memory {
            diags.push(Diagnostic::new(
                HvCode::DeviceOvercommit,
                loc,
                format!(
                    "{pinned_count} offcode(s) can only run here and together demand {pinned} bytes, but the device has {} — at least one is guaranteed to fall back to the host",
                    dev.offcode_memory
                ),
            ));
        } else if total > dev.offcode_memory {
            diags.push(Diagnostic::new(
                HvCode::PotentialOvercommit,
                loc,
                format!(
                    "worst-case demand of all compatible offcodes is {total} bytes against {} available",
                    dev.offcode_memory
                ),
            ));
        }
    }

    // Per-offcode: a footprint no target device can hold.
    for (n, node) in view.nodes.iter().enumerate() {
        let options = view.offload_options(n);
        if options.is_empty() {
            continue;
        }
        let best = options
            .iter()
            .map(|&k| table.devices[k].offcode_memory)
            .max()
            .unwrap_or(0);
        if node.demand > best {
            diags.push(Diagnostic::new(
                HvCode::OversizedOffcode,
                Loc::Node {
                    index: n,
                    bind_name: node.bind_name.clone(),
                },
                format!(
                    "footprint {} bytes exceeds every target device's memory (largest: {best}); it will always load on the host",
                    node.demand
                ),
            ));
        }
    }

    (diags, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{DeviceInfo, NodeView};
    use hydra_odf::odf::{class_ids, Guid};

    fn table(nic_mem: u64) -> DeviceTable {
        DeviceTable {
            devices: vec![
                DeviceInfo {
                    class: class_ids::HOST_CPU,
                    name: "host".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 28,
                },
                DeviceInfo {
                    class: class_ids::NETWORK,
                    name: "nic".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: nic_mem,
                },
                DeviceInfo {
                    class: class_ids::GPU,
                    name: "gpu".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 1 << 24,
                },
            ],
        }
    }

    fn node(name: &str, compat: &[bool], demand: u64) -> NodeView {
        NodeView {
            guid: Guid(name.len() as u64),
            bind_name: name.into(),
            compat: compat.to_vec(),
            demand,
            traffic: None,
        }
    }

    #[test]
    fn pinned_overcommit_is_an_error() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, false], 600),
                node("b", &[true, true, false], 600),
            ],
            edges: vec![],
        };
        let (diags, _) = run(&view, &table(1000));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, HvCode::DeviceOvercommit);
        assert!(matches!(&diags[0].loc, Loc::Device { index: 1, .. }));
    }

    #[test]
    fn flexible_overcommit_is_a_warning() {
        // Both fit on the GPU, so nothing is *guaranteed* to spill.
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, true], 600),
                node("b", &[true, true, true], 600),
            ],
            edges: vec![],
        };
        let (diags, _) = run(&view, &table(1000));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, HvCode::PotentialOvercommit);
    }

    #[test]
    fn oversized_offcode_flagged() {
        let view = GraphView {
            nodes: vec![node("big", &[true, true, false], 5000)],
            edges: vec![],
        };
        let (diags, _) = run(&view, &table(1000));
        assert!(diags.iter().any(|d| d.code == HvCode::DeviceOvercommit));
        assert!(diags.iter().any(|d| d.code == HvCode::OversizedOffcode));
    }

    #[test]
    fn fitting_demand_is_clean() {
        let view = GraphView {
            nodes: vec![
                node("a", &[true, true, false], 400),
                node("b", &[true, false, true], 400),
            ],
            edges: vec![],
        };
        let (diags, _) = run(&view, &table(1000));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
