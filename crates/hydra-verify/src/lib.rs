//! Static deployment verifier for the HYDRA reproduction.
//!
//! `hydra-verify` analyses a set of ODF manifests plus a device table
//! *before* anything is linked or offloaded, and reports findings as
//! stable `HVxxx` diagnostics (see [`diag::HvCode`] for the catalog).
//! Four passes run in a fixed order:
//!
//! 1. **manifest** — GUID/bind-name collisions, dangling/self/duplicate
//!    imports, target sets no installed device satisfies;
//! 2. **constraints** — Gang/AsymGang import cycles (SCC), contradictory
//!    parallel edges, Pull edges with disjoint feasible devices, gangs
//!    that drag an offloadable peer to the host;
//! 3. **capacity** — worst-case memory demand per device vs the device
//!    table (overcommit the greedy resolver would silently absorb);
//! 4. **channels** — the synchronous wait-for graph: static deadlock
//!    cycles and Offcodes unreachable from any deployment root.
//!
//! The crate sits *below* `hydra-core` so the runtime can call
//! [`verify`] as a pre-flight gate; it therefore works on structural
//! mirrors ([`input::DeviceTable`], [`input::GraphView`]) rather than
//! runtime types. [`precheck::Precheck`] — a sound narrowing fixpoint
//! over feasible device sets — doubles as the ILP infeasibility
//! pre-check: when it proves the all-host placement is the only feasible
//! one, the branch-and-bound solve is skipped entirely.
//!
//! Output is deterministic end to end: diagnostics are sorted and
//! deduplicated, and [`diag::Report::to_json`] renders byte-identical
//! JSON for identical inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod flow;
pub mod input;
pub mod precheck;
pub mod service;

mod capacity;
mod channels;
mod constraints;
mod manifest;
mod race;

use hydra_odf::odf::{Guid, OdfDocument};

pub use diag::{Diagnostic, HvCode, Loc, PassStat, Report, Severity};
pub use flow::{Certificate, ChainBound, ChannelBound, DeviceBound, FaultOverlay};
pub use input::{DeviceInfo, DeviceTable, GraphView};
pub use precheck::Precheck;
pub use service::{ServiceModel, ServiceTable};

/// Everything the verifier needs about a deployment.
#[derive(Debug, Clone, Copy)]
pub struct VerifyInput<'a> {
    /// The deployment set: every ODF that would be resolved together.
    pub odfs: &'a [OdfDocument],
    /// The installed devices (index 0 = host).
    pub devices: &'a DeviceTable,
    /// Per-ODF worst-case memory demand in bytes, parallel to `odfs`.
    /// `None` falls back to each ODF's declared footprint (or a default
    /// estimate) — the runtime passes real linked-object sizes here.
    pub demands: Option<&'a [u64]>,
    /// Deployment roots by GUID; `None` infers the nodes nothing imports.
    pub roots: Option<&'a [Guid]>,
}

/// Runs every verifier pass over the deployment and returns the combined
/// report. Never panics on malformed sets: imports that do not resolve
/// are reported by the manifest pass and skipped by the graph passes.
pub fn verify(input: &VerifyInput<'_>) -> Report {
    let mut report = Report::default();

    let (diags, work) = manifest::run(input.odfs, input.devices);
    report.absorb("manifest", work, diags);

    let view = GraphView::from_odfs(input.odfs, input.devices, input.demands);
    let pre = Precheck::narrow(&view);

    let (diags, work) = constraints::run(&view, &pre);
    report.absorb("constraints", work + pre.rounds, diags);

    let (diags, work) = capacity::run(&view, input.devices);
    report.absorb("capacity", work, diags);

    let (diags, work) = channels::run(&view, input.roots);
    report.absorb("channels", work, diags);

    report
}

/// Everything quantitative certification needs beyond [`VerifyInput`].
#[derive(Debug, Clone, Copy)]
pub struct CertifyInput<'a> {
    /// The structural verification input.
    pub verify: VerifyInput<'a>,
    /// The provider service curves and device constants — exported by
    /// the Channel Executive so analysis and runtime share one cost
    /// table.
    pub services: &'a ServiceTable,
    /// A committed fault plan's disruption budget; widens the
    /// certificate's latency/utilization bounds without changing the
    /// diagnostics.
    pub overlay: Option<&'a FaultOverlay>,
}

/// A certification result: the combined report of all six passes plus
/// the quantitative certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Certification {
    /// Every diagnostic from the structural and quantitative passes.
    pub report: Report,
    /// The derived queue/latency/utilization bounds.
    pub certificate: Certificate,
}

/// Runs the four structural passes plus the quantitative **flow** pass
/// (arrival/service-curve propagation: HV040–HV044) and the **rings**
/// pass (ring-sharing race detection: HV050–HV051), returning the
/// combined report and the bound certificate.
pub fn certify(input: &CertifyInput<'_>) -> Certification {
    let mut report = Report::default();

    let (diags, work) = manifest::run(input.verify.odfs, input.verify.devices);
    report.absorb("manifest", work, diags);

    let view = GraphView::from_odfs(
        input.verify.odfs,
        input.verify.devices,
        input.verify.demands,
    );
    let pre = Precheck::narrow(&view);

    let (diags, work) = constraints::run(&view, &pre);
    report.absorb("constraints", work + pre.rounds, diags);

    let (diags, work) = capacity::run(&view, input.verify.devices);
    report.absorb("capacity", work, diags);

    let (diags, work) = channels::run(&view, input.verify.roots);
    report.absorb("channels", work, diags);

    let (diags, work, certificate) = flow::run(
        &view,
        &pre,
        input.services,
        input.verify.devices,
        input.verify.roots,
        input.overlay,
    );
    report.absorb("flow", work, diags);

    let (diags, work) = race::run(&view, &pre);
    report.absorb("rings", work, diags);

    Certification {
        report,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Import};

    fn table() -> DeviceTable {
        DeviceTable {
            devices: vec![
                DeviceInfo {
                    class: class_ids::HOST_CPU,
                    name: "host".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 256 << 20,
                },
                DeviceInfo {
                    class: class_ids::NETWORK,
                    name: "nic".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 2 << 20,
                },
                DeviceInfo {
                    class: class_ids::GPU,
                    name: "gpu".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 16 << 20,
                },
            ],
        }
    }

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    fn import(name: &str, guid: Guid, kind: ConstraintKind) -> Import {
        Import {
            file: String::new(),
            bind_name: name.into(),
            guid,
            constraint: kind,
            priority: 0,
        }
    }

    fn clean_set() -> Vec<OdfDocument> {
        vec![
            OdfDocument::new("app.Source", Guid(1))
                .with_target(class(class_ids::NETWORK))
                .with_import(import("app.Sink", Guid(2), ConstraintKind::Pull)),
            OdfDocument::new("app.Sink", Guid(2)).with_target(class(class_ids::NETWORK)),
        ]
    }

    #[test]
    fn clean_deployment_verifies_clean() {
        let odfs = clean_set();
        let report = verify(&VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: None,
            roots: None,
        });
        assert!(!report.has_errors(), "{}", report.render_human());
        assert_eq!(report.passes.len(), 4);
        assert_eq!(
            report.passes.iter().map(|p| p.name).collect::<Vec<_>>(),
            vec!["manifest", "constraints", "capacity", "channels"]
        );
    }

    #[test]
    fn gang_back_edge_fires_hv010() {
        let mut odfs = clean_set();
        odfs[0].imports[0].constraint = ConstraintKind::Gang;
        odfs[1] = odfs[1]
            .clone()
            .with_import(import("app.Source", Guid(1), ConstraintKind::Gang));
        let report = verify(&VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: None,
            roots: None,
        });
        assert!(report.errors().any(|d| d.code == HvCode::GangCycle));
    }

    #[test]
    fn disjoint_pull_fires_hv012() {
        let mut odfs = clean_set();
        odfs[1].targets = vec![class(class_ids::GPU)];
        let report = verify(&VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: None,
            roots: None,
        });
        assert!(report.errors().any(|d| d.code == HvCode::DisjointPull));
    }

    #[test]
    fn overcommit_fires_hv020() {
        let odfs: Vec<OdfDocument> = (0..3)
            .map(|i| {
                OdfDocument::new(format!("fat.{i}"), Guid(10 + i))
                    .with_target(class(class_ids::NETWORK))
                    .with_footprint(1 << 20)
            })
            .collect();
        let report = verify(&VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: None,
            roots: None,
        });
        assert!(report.errors().any(|d| d.code == HvCode::DeviceOvercommit));
    }

    #[test]
    fn explicit_demands_override_footprints() {
        let odfs = clean_set();
        // Two offcodes pinned to the 2 MiB NIC, 1.5 MiB each.
        let demands = vec![3 << 19, 3 << 19];
        let report = verify(&VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: Some(&demands),
            roots: None,
        });
        assert!(report.errors().any(|d| d.code == HvCode::DeviceOvercommit));
    }

    #[test]
    fn report_json_is_byte_identical_across_runs() {
        let odfs = clean_set();
        let input = VerifyInput {
            odfs: &odfs,
            devices: &table(),
            demands: None,
            roots: None,
        };
        assert_eq!(verify(&input).to_json(), verify(&input).to_json());
    }

    #[test]
    fn certify_runs_six_passes_and_emits_bounds() {
        use hydra_odf::odf::TrafficSpec;
        let mut odfs = clean_set();
        odfs[0] = odfs[0].clone().with_traffic(TrafficSpec {
            rate_per_sec: 5_000,
            burst: 2,
            max_bytes: 1_500,
        });
        let services = ServiceTable::conservative_default();
        let cert = certify(&CertifyInput {
            verify: VerifyInput {
                odfs: &odfs,
                devices: &table(),
                demands: None,
                roots: None,
            },
            services: &services,
            overlay: None,
        });
        assert!(!cert.report.has_errors(), "{}", cert.report.render_human());
        assert_eq!(
            cert.report
                .passes
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>(),
            vec![
                "manifest",
                "constraints",
                "capacity",
                "channels",
                "flow",
                "rings"
            ]
        );
        let bound = cert.certificate.channel("app.Sink").unwrap();
        assert!(bound.stable);
        assert!(bound.latency_bound_ns.is_some());
    }
}
