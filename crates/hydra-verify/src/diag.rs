//! The diagnostics model: stable error codes, severities, source
//! locations, and the deterministic [`Report`] the passes fill in.
//!
//! Every finding a pass can make has a stable `HVxxx` code with a fixed
//! severity, so CI gates, tests, and suppression lists can match on the
//! code rather than on message text. A [`Report`] renders both as
//! human-readable lines and as canonical JSON: diagnostics are sorted by
//! (code, location, message) and every map is ordered, so identical
//! inputs produce byte-identical output.

use hydra_odf::odf::Guid;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks deployment.
    Info,
    /// Suspicious but deployable; the resolver will cope (usually by
    /// silently falling back to the host).
    Warning,
    /// Provably broken: deployment is rejected by the pre-flight gate.
    Error,
}

impl Severity {
    /// The lowercase rendering used in JSON and human output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The catalog of verifier findings. Codes are append-only: a code's
/// number, meaning, and severity never change once released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HvCode {
    /// HV001 — two ODFs in the set share a GUID.
    DuplicateGuid,
    /// HV002 — an import references a GUID that is not in the set.
    DanglingImport,
    /// HV003 — an ODF imports its own GUID.
    SelfImport,
    /// HV004 — two ODFs in the set share a bind name.
    DuplicateBindName,
    /// HV005 — an ODF imports the same peer GUID more than once with the
    /// same constraint kind.
    DuplicateImport,
    /// HV006 — an ODF declares no target device classes: it can only ever
    /// run on the host CPU.
    HostOnlyTargets,
    /// HV007 — a declared device-class spec matches no installed device.
    UnsatisfiableTargetSpec,
    /// HV008 — an ODF declares targets, but none of them matches any
    /// installed device: every deployment will silently use the host.
    NoFeasibleDevice,
    /// HV009 — a fixture/manifest file could not be parsed as ODF XML.
    ParseError,
    /// HV010 — a cycle of Gang/AsymGang constraints: the offload-coupling
    /// relation is circular, so no import order satisfies the two-phase
    /// initialize/start protocol and the gang can wedge as a unit.
    GangCycle,
    /// HV011 — parallel edges between the same Offcode pair carry
    /// different constraint kinds; the strictest silently wins.
    ConflictingEdges,
    /// HV012 — a Pull edge whose endpoints share no feasible non-host
    /// device: the constraint is only satisfiable by pinning both to the
    /// host, defeating the declared offload intent.
    DisjointPull,
    /// HV013 — a Gang edge where one endpoint has no feasible device
    /// (after constraint propagation), dragging the other to the host.
    GangForcedHost,
    /// HV020 — the Offcodes that can *only* run on one device together
    /// demand more memory than the device has: someone is guaranteed to
    /// fall back to the host, silently.
    DeviceOvercommit,
    /// HV021 — the worst-case demand of every Offcode compatible with a
    /// device exceeds its capacity (overcommit possible, not guaranteed).
    PotentialOvercommit,
    /// HV022 — an Offcode's own footprint exceeds the capacity of every
    /// device it targets: it will always load on the host.
    OversizedOffcode,
    /// HV030 — a directed cycle in the synchronous wait-for graph built
    /// from import edges: a static deadlock once every member blocks on
    /// its downstream call.
    ChannelDeadlock,
    /// HV031 — an Offcode in the set is not reachable from any deployment
    /// root: it will never be instantiated by this set.
    UnreachableOffcode,
    /// HV040 — the worst-case queue depth derived from the declared
    /// arrival curves exceeds the descriptor-ring capacity: ring
    /// exhaustion is statically provable.
    QueueBoundExceedsRing,
    /// HV041 — a channel's aggregate arrival rate exceeds its worst-case
    /// service rate: the backlog grows without bound, so no finite queue
    /// or latency bound exists.
    UnstableChannel,
    /// HV042 — a device's certified sustained utilization exceeds 1000‰:
    /// the declared load cannot be served even with a perfect schedule.
    UtilizationOverrun,
    /// HV043 — a device's certified sustained utilization exceeds 800‰:
    /// deployable, but any widening (faults, bursts) tips it over.
    UtilizationHigh,
    /// HV044 — an Offcode with outgoing calls declares no `<traffic>`
    /// element; certification substituted the conservative default curve.
    DefaultedTraffic,
    /// HV050 — two Offcodes post to the same descriptor ring with no
    /// ordering edge between them and placements that can differ: the
    /// writers can interleave mid-descriptor.
    RingWriteRace,
    /// HV051 — unordered writers share a ring but every placement pins
    /// them to the same device: posts serialize in steady state, yet a
    /// migration transient can alias the live endpoint.
    MigrationAliasRace,
}

impl HvCode {
    /// The stable `HVxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            HvCode::DuplicateGuid => "HV001",
            HvCode::DanglingImport => "HV002",
            HvCode::SelfImport => "HV003",
            HvCode::DuplicateBindName => "HV004",
            HvCode::DuplicateImport => "HV005",
            HvCode::HostOnlyTargets => "HV006",
            HvCode::UnsatisfiableTargetSpec => "HV007",
            HvCode::NoFeasibleDevice => "HV008",
            HvCode::ParseError => "HV009",
            HvCode::GangCycle => "HV010",
            HvCode::ConflictingEdges => "HV011",
            HvCode::DisjointPull => "HV012",
            HvCode::GangForcedHost => "HV013",
            HvCode::DeviceOvercommit => "HV020",
            HvCode::PotentialOvercommit => "HV021",
            HvCode::OversizedOffcode => "HV022",
            HvCode::ChannelDeadlock => "HV030",
            HvCode::UnreachableOffcode => "HV031",
            HvCode::QueueBoundExceedsRing => "HV040",
            HvCode::UnstableChannel => "HV041",
            HvCode::UtilizationOverrun => "HV042",
            HvCode::UtilizationHigh => "HV043",
            HvCode::DefaultedTraffic => "HV044",
            HvCode::RingWriteRace => "HV050",
            HvCode::MigrationAliasRace => "HV051",
        }
    }

    /// The code's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            HvCode::DuplicateGuid
            | HvCode::DanglingImport
            | HvCode::SelfImport
            | HvCode::ParseError
            | HvCode::GangCycle
            | HvCode::DisjointPull
            | HvCode::DeviceOvercommit
            | HvCode::ChannelDeadlock
            | HvCode::QueueBoundExceedsRing
            | HvCode::UnstableChannel
            | HvCode::UtilizationOverrun
            | HvCode::RingWriteRace => Severity::Error,
            HvCode::DuplicateBindName
            | HvCode::DuplicateImport
            | HvCode::UnsatisfiableTargetSpec
            | HvCode::NoFeasibleDevice
            | HvCode::ConflictingEdges
            | HvCode::GangForcedHost
            | HvCode::PotentialOvercommit
            | HvCode::OversizedOffcode
            | HvCode::UnreachableOffcode
            | HvCode::UtilizationHigh
            | HvCode::MigrationAliasRace => Severity::Warning,
            HvCode::HostOnlyTargets | HvCode::DefaultedTraffic => Severity::Info,
        }
    }

    /// A one-line summary of what the code means.
    pub fn title(self) -> &'static str {
        match self {
            HvCode::DuplicateGuid => "duplicate GUID",
            HvCode::DanglingImport => "unresolved import",
            HvCode::SelfImport => "self-import",
            HvCode::DuplicateBindName => "duplicate bind name",
            HvCode::DuplicateImport => "duplicate import",
            HvCode::HostOnlyTargets => "host-only target set",
            HvCode::UnsatisfiableTargetSpec => "unsatisfiable device-class spec",
            HvCode::NoFeasibleDevice => "no feasible device",
            HvCode::ParseError => "manifest parse error",
            HvCode::GangCycle => "gang constraint cycle",
            HvCode::ConflictingEdges => "conflicting constraint edges",
            HvCode::DisjointPull => "pull endpoints share no device",
            HvCode::GangForcedHost => "gang forces peer to host",
            HvCode::DeviceOvercommit => "device class overcommitted",
            HvCode::PotentialOvercommit => "device class potentially overcommitted",
            HvCode::OversizedOffcode => "offcode exceeds every target's memory",
            HvCode::ChannelDeadlock => "synchronous channel deadlock cycle",
            HvCode::UnreachableOffcode => "unreachable offcode",
            HvCode::QueueBoundExceedsRing => "worst-case queue exceeds ring capacity",
            HvCode::UnstableChannel => "arrival rate exceeds worst-case service rate",
            HvCode::UtilizationOverrun => "device utilization bound over 1000 permille",
            HvCode::UtilizationHigh => "device utilization bound over 800 permille",
            HvCode::DefaultedTraffic => "traffic curve defaulted",
            HvCode::RingWriteRace => "unordered writers share a descriptor ring",
            HvCode::MigrationAliasRace => "migration can alias a live ring endpoint",
        }
    }
}

/// Where a diagnostic points: an ODF bind name, a graph node or edge, or
/// a device-table entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// The whole manifest set.
    Set,
    /// One ODF, by bind name.
    Odf {
        /// Bind name of the manifest.
        bind_name: String,
    },
    /// One import inside an ODF.
    Import {
        /// Bind name of the importer.
        bind_name: String,
        /// Bind name (or GUID rendering) of the imported peer.
        import: String,
    },
    /// A node of the layout graph.
    Node {
        /// The node's index in the graph.
        index: usize,
        /// The node's bind name.
        bind_name: String,
    },
    /// An edge of the layout graph.
    Edge {
        /// Source bind name.
        from: String,
        /// Destination bind name.
        to: String,
    },
    /// A device-table entry.
    Device {
        /// The device's index in the table.
        index: usize,
        /// The device's diagnostic name.
        name: String,
    },
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Set => f.write_str("<set>"),
            Loc::Odf { bind_name } => write!(f, "odf:{bind_name}"),
            Loc::Import { bind_name, import } => write!(f, "odf:{bind_name}/import:{import}"),
            Loc::Node { index, bind_name } => write!(f, "node#{index}:{bind_name}"),
            Loc::Edge { from, to } => write!(f, "edge:{from}->{to}"),
            Loc::Device { index, name } => write!(f, "device#{index}:{name}"),
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code (which also fixes the severity).
    pub code: HvCode,
    /// The GUID of the Offcode the finding is primarily about, when one
    /// exists. Used as the second sort key so multi-pass output stays
    /// byte-stable even when passes are reordered.
    pub subject: Option<Guid>,
    /// Where it points.
    pub loc: Loc,
    /// The specific finding, human-readable.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: HvCode, loc: Loc, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            subject: None,
            loc,
            message: message.into(),
        }
    }

    /// Attaches the GUID of the Offcode this finding is about.
    pub fn for_subject(mut self, guid: Guid) -> Self {
        self.subject = Some(guid);
        self
    }

    /// The diagnostic's severity (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} at {}: {}",
            self.severity(),
            self.code.code(),
            self.code.title(),
            self.loc,
            self.message
        )
    }
}

/// Per-pass accounting, surfaced into `hydra-obs` by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStat {
    /// The pass name (`manifest`, `constraints`, `capacity`, `channels`).
    pub name: &'static str,
    /// Diagnostics the pass emitted.
    pub diagnostics: usize,
    /// Modeled work: nodes + edges + specs the pass visited.
    pub work_units: u64,
}

/// The verifier's output: every diagnostic from every pass, plus the
/// per-pass statistics, in a deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, sorted by (code, location, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pass accounting, in pass execution order.
    pub passes: Vec<PassStat>,
}

impl Report {
    /// Merges a pass's diagnostics into the report and records its stat.
    pub fn absorb(&mut self, name: &'static str, work_units: u64, mut diags: Vec<Diagnostic>) {
        self.passes.push(PassStat {
            name,
            diagnostics: diags.len(),
            work_units,
        });
        self.diagnostics.append(&mut diags);
        self.normalize();
    }

    /// Restores the canonical ordering (sorted, deduplicated). The key is
    /// (code, subject guid, location, message): subject-less diagnostics
    /// sort ahead of subject-bearing ones within a code.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let ka = (a.code, a.subject.map(|g| g.0), &a.loc, &a.message);
            let kb = (b.code, b.subject.map(|g| g.0), &b.loc, &b.message);
            ka.cmp(&kb)
        });
        self.diagnostics.dedup();
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// A one-line summary ("2 errors, 1 warning" or "clean").
    pub fn summary(&self) -> String {
        let e = self.count(Severity::Error);
        let w = self.count(Severity::Warning);
        if e == 0 && w == 0 {
            "clean".to_owned()
        } else {
            format!("{e} error(s), {w} warning(s)")
        }
    }

    /// Renders the report as stable, human-readable lines.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!("verify: {}\n", self.summary()));
        out
    }

    /// Renders the report as canonical JSON. Identical reports render to
    /// byte-identical strings: diagnostics are pre-sorted, all fields are
    /// emitted in a fixed order, and strings are escaped deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let subject = match d.subject {
                None => String::new(),
                Some(g) => format!("\"subject\":{},", g.0),
            };
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",{}\"loc\":\"{}\",\"message\":\"{}\"}}",
                d.code.code(),
                d.severity(),
                subject,
                escape(&d.loc.to_string()),
                escape(&d.message)
            ));
        }
        out.push_str("],\"passes\":[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"diagnostics\":{},\"work_units\":{}}}",
                p.name, p.diagnostics, p.work_units
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning)
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            HvCode::DuplicateGuid,
            HvCode::DanglingImport,
            HvCode::SelfImport,
            HvCode::DuplicateBindName,
            HvCode::DuplicateImport,
            HvCode::HostOnlyTargets,
            HvCode::UnsatisfiableTargetSpec,
            HvCode::NoFeasibleDevice,
            HvCode::ParseError,
            HvCode::GangCycle,
            HvCode::ConflictingEdges,
            HvCode::DisjointPull,
            HvCode::GangForcedHost,
            HvCode::DeviceOvercommit,
            HvCode::PotentialOvercommit,
            HvCode::OversizedOffcode,
            HvCode::ChannelDeadlock,
            HvCode::UnreachableOffcode,
            HvCode::QueueBoundExceedsRing,
            HvCode::UnstableChannel,
            HvCode::UtilizationOverrun,
            HvCode::UtilizationHigh,
            HvCode::DefaultedTraffic,
            HvCode::RingWriteRace,
            HvCode::MigrationAliasRace,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for c in all {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn report_orders_and_counts() {
        let mut r = Report::default();
        r.absorb(
            "manifest",
            3,
            vec![
                Diagnostic::new(HvCode::GangCycle, Loc::Set, "b"),
                Diagnostic::new(HvCode::DuplicateGuid, Loc::Set, "a"),
                Diagnostic::new(HvCode::DuplicateGuid, Loc::Set, "a"),
            ],
        );
        assert_eq!(r.diagnostics.len(), 2, "duplicates collapse");
        assert_eq!(r.diagnostics[0].code, HvCode::DuplicateGuid);
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 2);
        assert_eq!(r.summary(), "2 error(s), 0 warning(s)");
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report::default();
        r.absorb(
            "manifest",
            1,
            vec![Diagnostic::new(
                HvCode::ParseError,
                Loc::Set,
                "bad \"quote\"\nnewline",
            )],
        );
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"quote\\\""));
        assert!(a.contains("\\n"));
        assert!(a.contains("\"errors\":1"));
    }

    #[test]
    fn clean_report_summary() {
        let r = Report::default();
        assert_eq!(r.summary(), "clean");
        assert!(!r.has_errors());
    }

    #[test]
    fn ordering_is_pass_order_independent() {
        // The same findings absorbed in opposite pass order must render
        // byte-identically: the sort key is (code, subject, loc, message),
        // never discovery order.
        let d1 =
            Diagnostic::new(HvCode::QueueBoundExceedsRing, Loc::Set, "ring b").for_subject(Guid(9));
        let d2 =
            Diagnostic::new(HvCode::QueueBoundExceedsRing, Loc::Set, "ring a").for_subject(Guid(2));
        let d3 = Diagnostic::new(HvCode::RingWriteRace, Loc::Set, "pair").for_subject(Guid(1));

        let mut fwd = Report::default();
        fwd.absorb("flow", 1, vec![d1.clone(), d2.clone()]);
        fwd.absorb("rings", 1, vec![d3.clone()]);

        let mut rev = Report::default();
        rev.absorb("flow", 1, vec![d3, d2, d1]);

        assert_eq!(fwd.diagnostics, rev.diagnostics);
        assert_eq!(fwd.diagnostics[0].subject, Some(Guid(2)));
        let json = fwd.to_json();
        assert!(json.contains("\"subject\":2"));
    }
}
