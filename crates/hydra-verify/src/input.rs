//! Verifier inputs: a device table and a layout-graph view.
//!
//! `hydra-verify` sits *below* `hydra-core` in the crate graph (so the
//! runtime can call it as a pre-flight gate), which means it cannot use
//! the runtime's `DeviceRegistry`/`LayoutGraph` types directly. Instead
//! it defines structural mirrors: [`DeviceTable`] carries exactly the
//! fields device-class matching needs, and [`GraphView`] is the node/edge
//! shape of the layout graph. `hydra-core` provides the conversions (and
//! a test pinning the two matching implementations to each other).

use hydra_odf::odf::{ConstraintKind, DeviceClassSpec, Guid, OdfDocument, TrafficSpec};

/// Default worst-case footprint assumed for an Offcode whose ODF does not
/// declare one (bytes). Matches the synthetic 8 KiB text + 1 KiB data
/// object the runtime links for components without a real object file.
pub const DEFAULT_FOOTPRINT: u64 = 9 * 1024;

/// What the verifier knows about one installed device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceInfo {
    /// Device class id (`hydra_odf::odf::class_ids`).
    pub class: u32,
    /// Diagnostic name.
    pub name: String,
    /// Bus attachment, if any.
    pub bus: Option<String>,
    /// MAC layer, if any.
    pub mac: Option<String>,
    /// Vendor string, if any.
    pub vendor: Option<String>,
    /// Bytes of memory available for Offcodes.
    pub offcode_memory: u64,
}

impl DeviceInfo {
    /// Whether this device satisfies a device-class spec: class id must
    /// match and each *specified* optional attribute must match
    /// (unspecified attributes are wildcards). Mirrors
    /// `hydra_core::device::DeviceDescriptor::matches`.
    pub fn matches(&self, spec: &DeviceClassSpec) -> bool {
        if self.class != spec.id {
            return false;
        }
        let attr_ok = |want: &Option<String>, have: &Option<String>| match want {
            None => true,
            Some(w) => have.as_deref() == Some(w.as_str()),
        };
        attr_ok(&spec.bus, &self.bus)
            && attr_ok(&spec.mac, &self.mac)
            && attr_ok(&spec.vendor, &self.vendor)
    }
}

/// The installed devices, indexed like the runtime's registry: index 0 is
/// always the host CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceTable {
    /// The devices; index 0 is the host.
    pub devices: Vec<DeviceInfo>,
}

impl DeviceTable {
    /// The compatibility vector for a target set: `true` per device that
    /// matches one of the specs; the host entry is forced `true` (the
    /// runtime can always fall back to the host CPU).
    pub fn compatibility(&self, specs: &[DeviceClassSpec]) -> Vec<bool> {
        let mut v: Vec<bool> = self
            .devices
            .iter()
            .map(|d| specs.iter().any(|s| d.matches(s)))
            .collect();
        if let Some(host) = v.first_mut() {
            *host = true;
        }
        v
    }

    /// How many installed devices satisfy one spec.
    pub fn feasible_count(&self, spec: &DeviceClassSpec) -> usize {
        self.devices.iter().filter(|d| d.matches(spec)).count()
    }
}

/// One Offcode in the graph view.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// The Offcode's GUID.
    pub guid: Guid,
    /// Its bind name (diagnostics).
    pub bind_name: String,
    /// `compat[k]` — may this Offcode run on device `k`? Index 0 is the
    /// host and is always `true`.
    pub compat: Vec<bool>,
    /// Worst-case memory footprint in bytes.
    pub demand: u64,
    /// The declared arrival curve for this Offcode's outbound calls, if
    /// its ODF carries a `<traffic>` element. `None` means certification
    /// substitutes the conservative default curve.
    pub traffic: Option<TrafficSpec>,
}

/// One constraint edge in the graph view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeView {
    /// Source node index (the importer).
    pub from: usize,
    /// Destination node index (the imported peer).
    pub to: usize,
    /// The placement constraint.
    pub kind: ConstraintKind,
}

/// A structural view of the offloading layout graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphView {
    /// The nodes, in deployment-set order.
    pub nodes: Vec<NodeView>,
    /// The constraint edges.
    pub edges: Vec<EdgeView>,
}

impl GraphView {
    /// Builds the view straight from an ODF set and a device table.
    ///
    /// Requires a *well-formed* set (unique GUIDs, imports resolved
    /// inside the set — the conditions the manifest pass checks); imports
    /// that do not resolve are skipped here so the graph passes can still
    /// run on partially broken sets.
    ///
    /// Per-node demand comes from `demands` when given (parallel to
    /// `odfs`), else from the ODF's declared footprint, else
    /// [`DEFAULT_FOOTPRINT`].
    pub fn from_odfs(odfs: &[OdfDocument], table: &DeviceTable, demands: Option<&[u64]>) -> Self {
        let mut view = GraphView::default();
        for (i, odf) in odfs.iter().enumerate() {
            view.nodes.push(NodeView {
                guid: odf.guid,
                bind_name: odf.bind_name.clone(),
                compat: table.compatibility(&odf.targets),
                demand: demands
                    .and_then(|d| d.get(i).copied())
                    .or(odf.footprint)
                    .unwrap_or(DEFAULT_FOOTPRINT),
                traffic: odf.traffic,
            });
        }
        for (i, odf) in odfs.iter().enumerate() {
            for imp in &odf.imports {
                // First ODF with the GUID wins, like the runtime's depot.
                if let Some(j) = odfs.iter().position(|o| o.guid == imp.guid) {
                    if i != j {
                        view.edges.push(EdgeView {
                            from: i,
                            to: j,
                            kind: imp.constraint,
                        });
                    }
                }
            }
        }
        view
    }

    /// Non-host devices node `n` is compatible with.
    pub fn offload_options(&self, n: usize) -> Vec<usize> {
        self.nodes[n]
            .compat
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(k, &ok)| ok.then_some(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_odf::odf::class_ids;

    pub(crate) fn table() -> DeviceTable {
        DeviceTable {
            devices: vec![
                DeviceInfo {
                    class: class_ids::HOST_CPU,
                    name: "host".into(),
                    bus: None,
                    mac: None,
                    vendor: None,
                    offcode_memory: 256 * 1024 * 1024,
                },
                DeviceInfo {
                    class: class_ids::NETWORK,
                    name: "nic".into(),
                    bus: Some("pci".into()),
                    mac: Some("ethernet".into()),
                    vendor: Some("3COM".into()),
                    offcode_memory: 2 * 1024 * 1024,
                },
                DeviceInfo {
                    class: class_ids::GPU,
                    name: "gpu".into(),
                    bus: Some("agp".into()),
                    mac: None,
                    vendor: None,
                    offcode_memory: 16 * 1024 * 1024,
                },
            ],
        }
    }

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    #[test]
    fn matching_honours_specified_attrs() {
        let t = table();
        let mut spec = class(class_ids::NETWORK);
        assert_eq!(t.feasible_count(&spec), 1);
        spec.vendor = Some("Intel".into());
        assert_eq!(t.feasible_count(&spec), 0);
    }

    #[test]
    fn compatibility_forces_host() {
        let t = table();
        assert_eq!(t.compatibility(&[]), vec![true, false, false]);
        assert_eq!(
            t.compatibility(&[class(class_ids::GPU)]),
            vec![true, false, true]
        );
    }

    #[test]
    fn graph_view_from_odfs_uses_footprints() {
        use hydra_odf::odf::Import;
        let a = OdfDocument::new("a", Guid(1))
            .with_target(class(class_ids::NETWORK))
            .with_footprint(4096)
            .with_import(Import {
                file: String::new(),
                bind_name: "b".into(),
                guid: Guid(2),
                constraint: ConstraintKind::Pull,
                priority: 0,
            });
        let b = OdfDocument::new("b", Guid(2));
        let view = GraphView::from_odfs(&[a, b], &table(), None);
        assert_eq!(view.nodes.len(), 2);
        assert_eq!(view.nodes[0].demand, 4096);
        assert_eq!(view.nodes[1].demand, DEFAULT_FOOTPRINT);
        assert_eq!(view.edges.len(), 1);
        assert_eq!(view.offload_options(0), vec![1]);
        assert!(view.offload_options(1).is_empty());
    }
}
