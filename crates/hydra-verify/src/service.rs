//! Service-curve models for quantitative certification.
//!
//! A [`ServiceModel`] is the static mirror of one channel provider's
//! `ChannelCost`: the per-message CPU/issue charge, the idle-pipe launch
//! overhead, and the wire throughput. A [`ServiceTable`] holds the whole
//! provider family registered with the Channel Executive plus the device
//! occupancy constants, and answers the two questions the flow pass asks:
//! *how long can serving one message take* and *how much device time does
//! one message consume*.
//!
//! The runtime exports its live table via
//! `ChannelExecutive::service_table()`, derived from the very
//! `ChannelCost` values the executive's auction uses — so the analysis
//! and the runtime can never disagree on costs. For adaptive channels the
//! executive re-auctions the provider per message-size bucket, so the
//! *certified* service time is the worst case over the whole family: that
//! brackets any per-bucket choice the hysteresis logic can make, and also
//! brackets channels pinned to a non-winning provider (e.g. the OOB
//! channel's kernel-copy path).

/// Modeled device time consumed per message, independent of the channel
/// provider (descriptor processing, interrupt, completion).
pub const DEVICE_NS_PER_MSG: u64 = 10_000;

/// Modeled device payload-processing throughput in bytes per second.
pub const DEVICE_BYTES_PER_SEC: u64 = 1_000_000_000;

/// The static service curve of one channel provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceModel {
    /// Provider name, as registered with the executive.
    pub provider: String,
    /// One-time channel setup cost in nanoseconds.
    pub setup_ns: u64,
    /// Per-message service charge in nanoseconds (copy/issue cost).
    pub per_message_ns: u64,
    /// Idle-pipe offload-launch overhead in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Whether a streaming pipe coalesces the launch charge. Certification
    /// ignores this on purpose: the worst case is an idle pipe.
    pub coalesce_launch: bool,
    /// Wire throughput in bytes per second (0 = infinitely fast wire).
    pub bytes_per_sec: u64,
}

impl ServiceModel {
    /// Wire time for a `bytes`-sized payload, rounded up.
    pub fn wire_ns(&self, bytes: u64) -> u64 {
        if self.bytes_per_sec == 0 {
            return 0;
        }
        let num = u128::from(bytes) * 1_000_000_000u128;
        let den = u128::from(self.bytes_per_sec);
        u64::try_from(num.div_ceil(den)).unwrap_or(u64::MAX)
    }

    /// Worst-case time to serve one `bytes`-sized message: per-message
    /// charge, a full idle-pipe launch, and the wire. Coalescing is never
    /// assumed — a certified bound must hold from a cold pipe.
    pub fn service_ns(&self, bytes: u64) -> u64 {
        self.per_message_ns
            .saturating_add(self.launch_overhead_ns)
            .saturating_add(self.wire_ns(bytes))
    }
}

/// The provider family the executive would consider for a deployment,
/// plus ring and device constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTable {
    /// The registered providers, in registration order (the executive's
    /// auction tie-break).
    pub providers: Vec<ServiceModel>,
    /// Whether channels may re-auction the provider per size bucket
    /// (PR 8's cost-adaptive selection). When `true`, certified service
    /// times take the worst case over the whole family.
    pub adaptive: bool,
    /// Descriptor-ring capacity in entries.
    pub ring_capacity: u64,
    /// Device time consumed per message, nanoseconds.
    pub device_ns_per_msg: u64,
    /// Device payload throughput, bytes per second.
    pub device_bytes_per_sec: u64,
}

impl ServiceTable {
    /// A conservative table mirroring the full default provider family
    /// (zero-copy DMA, kernel copy, PIO, doorbell-batch) against the
    /// Figure-3 NIC channel shape. `ChannelExecutive::service_table()` on
    /// a fully-provisioned executive must agree with this byte-for-byte —
    /// a pin test in `hydra-core` enforces it.
    pub fn conservative_default() -> Self {
        ServiceTable {
            providers: vec![
                ServiceModel {
                    provider: "zero-copy-dma".into(),
                    setup_ns: 120_000,
                    per_message_ns: 1_000,
                    launch_overhead_ns: 2_000,
                    coalesce_launch: false,
                    bytes_per_sec: 500_000_000,
                },
                ServiceModel {
                    provider: "kernel-copy".into(),
                    setup_ns: 30_000,
                    per_message_ns: 9_000,
                    launch_overhead_ns: 0,
                    coalesce_launch: false,
                    bytes_per_sec: 250_000_000,
                },
                ServiceModel {
                    provider: "pio".into(),
                    setup_ns: 5_000,
                    per_message_ns: 250,
                    launch_overhead_ns: 0,
                    coalesce_launch: false,
                    bytes_per_sec: 333_333_333,
                },
                ServiceModel {
                    provider: "doorbell-batch".into(),
                    setup_ns: 140_000,
                    per_message_ns: 400,
                    launch_overhead_ns: 2_600,
                    coalesce_launch: true,
                    bytes_per_sec: 480_000_000,
                },
            ],
            adaptive: true,
            ring_capacity: 64,
            device_ns_per_msg: DEVICE_NS_PER_MSG,
            device_bytes_per_sec: DEVICE_BYTES_PER_SEC,
        }
    }

    /// The provider the executive's initial auction would pick: minimum
    /// service time at a nominal 1 KiB message, ties broken by
    /// registration order.
    pub fn winner(&self) -> Option<&ServiceModel> {
        self.providers.iter().min_by_key(|p| p.service_ns(1024))
    }

    /// Worst-case service time for one `bytes`-sized message. Adaptive
    /// tables take the maximum over the family (any provider can be
    /// chosen for some bucket); non-adaptive tables charge the auction
    /// winner.
    pub fn worst_service_ns(&self, bytes: u64) -> u64 {
        if self.adaptive {
            self.providers
                .iter()
                .map(|p| p.service_ns(bytes))
                .max()
                .unwrap_or(0)
        } else {
            self.winner().map_or(0, |p| p.service_ns(bytes))
        }
    }

    /// Worst-case one-time setup charge across the family — the first
    /// message on a freshly provisioned (or re-auctioned) channel can pay
    /// it, so end-to-end latency bounds include it once per hop.
    pub fn worst_setup_ns(&self) -> u64 {
        self.providers.iter().map(|p| p.setup_ns).max().unwrap_or(0)
    }

    /// Device time one `bytes`-sized message occupies on its serving
    /// device, independent of the provider.
    pub fn device_occupancy_ns(&self, bytes: u64) -> u64 {
        if self.device_bytes_per_sec == 0 {
            return self.device_ns_per_msg;
        }
        let num = u128::from(bytes) * 1_000_000_000u128;
        let den = u128::from(self.device_bytes_per_sec);
        self.device_ns_per_msg
            .saturating_add(u64::try_from(num.div_ceil(den)).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_rounds_up() {
        let m = ServiceModel {
            provider: "x".into(),
            setup_ns: 0,
            per_message_ns: 0,
            launch_overhead_ns: 0,
            coalesce_launch: false,
            bytes_per_sec: 3,
        };
        // 1 byte at 3 B/s = 333,333,333.33… ns, rounded up.
        assert_eq!(m.wire_ns(1), 333_333_334);
        assert_eq!(m.wire_ns(0), 0);
    }

    #[test]
    fn adaptive_takes_family_worst_case() {
        let t = ServiceTable::conservative_default();
        // At 16 KiB the kernel-copy path dominates: 9µs + 65.536µs wire.
        let worst = t.worst_service_ns(16 * 1024);
        assert_eq!(worst, 9_000 + 65_536);
        // A non-adaptive table charges only the auction winner.
        let pinned = ServiceTable {
            adaptive: false,
            ..t.clone()
        };
        assert!(pinned.worst_service_ns(16 * 1024) < worst);
    }

    #[test]
    fn winner_matches_executive_auction_at_1k() {
        let t = ServiceTable::conservative_default();
        // At 1 KiB: dma 1000+2000+2048=5048, copy 9000+4096=13096,
        // pio 250+3073=3323, doorbell 400+2600+2134=5134 → PIO wins.
        assert_eq!(t.winner().unwrap().provider, "pio");
    }

    #[test]
    fn setup_and_occupancy() {
        let t = ServiceTable::conservative_default();
        assert_eq!(t.worst_setup_ns(), 140_000);
        assert_eq!(t.device_occupancy_ns(0), DEVICE_NS_PER_MSG);
        assert_eq!(t.device_occupancy_ns(16 * 1024), DEVICE_NS_PER_MSG + 16_384);
    }
}
