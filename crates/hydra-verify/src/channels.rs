//! Channel-topology analysis: the wait-for graph of synchronous calls.
//!
//! Every import edge becomes a synchronous channel at deployment time
//! (the importer blocks in `send_call` until its downstream replies), so
//! the import graph *is* the static wait-for graph. A directed cycle in
//! it is a deadlock the moment every member blocks on its downstream
//! call; nodes unreachable from any deployment root are dead weight the
//! executive will never instantiate.

use hydra_odf::odf::Guid;

use crate::diag::{Diagnostic, HvCode, Loc};
use crate::input::GraphView;

/// Runs the channel pass; returns (diagnostics, work units).
///
/// `roots` are the GUIDs deployment starts from; `None` infers them as
/// the nodes nothing imports. When no root exists at all (the whole set
/// is cyclic) the reachability lint is skipped — the cycle itself is
/// already reported.
pub(crate) fn run(view: &GraphView, roots: Option<&[Guid]>) -> (Vec<Diagnostic>, u64) {
    let mut diags = Vec::new();
    let work = (view.nodes.len() + view.edges.len()) as u64;

    wait_for_cycles(view, &mut diags);
    unreachable_nodes(view, roots, &mut diags);

    (diags, work)
}

/// HV030: directed cycles in the wait-for graph, found by DFS
/// back-edge detection (deterministic: nodes and successors visited in
/// index order; one diagnostic per distinct cycle entry point).
fn wait_for_cycles(view: &GraphView, diags: &mut Vec<Diagnostic>) {
    let adj = adjacency(view);
    // 0 = unvisited, 1 = on current DFS path, 2 = done.
    let mut state = vec![0u8; view.nodes.len()];
    for start in 0..view.nodes.len() {
        if state[start] != 0 {
            continue;
        }
        // (node, next successor offset); path mirrors the 1-states.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        state[start] = 1;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                match state[w] {
                    0 => {
                        state[w] = 1;
                        stack.push((w, 0));
                        path.push(w);
                    }
                    1 => {
                        let from = path.iter().position(|&p| p == w).unwrap_or(0);
                        let names: Vec<&str> = path[from..]
                            .iter()
                            .chain(std::iter::once(&w))
                            .map(|&n| view.nodes[n].bind_name.as_str())
                            .collect();
                        diags.push(Diagnostic::new(
                            HvCode::ChannelDeadlock,
                            Loc::Node {
                                index: w,
                                bind_name: view.nodes[w].bind_name.clone(),
                            },
                            format!("synchronous wait-for cycle: {}", names.join(" -> ")),
                        ));
                    }
                    _ => {}
                }
            } else {
                state[v] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
}

/// HV031: nodes no deployment root can reach.
fn unreachable_nodes(view: &GraphView, roots: Option<&[Guid]>, diags: &mut Vec<Diagnostic>) {
    let root_idx: Vec<usize> = match roots {
        Some(guids) => view
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| guids.contains(&n.guid))
            .map(|(i, _)| i)
            .collect(),
        None => {
            let mut imported = vec![false; view.nodes.len()];
            for e in &view.edges {
                imported[e.to] = true;
            }
            (0..view.nodes.len()).filter(|&n| !imported[n]).collect()
        }
    };
    if root_idx.is_empty() {
        return;
    }
    let adj = adjacency(view);
    let mut reach = vec![false; view.nodes.len()];
    let mut queue = root_idx;
    for &r in &queue {
        reach[r] = true;
    }
    while let Some(v) = queue.pop() {
        for &w in &adj[v] {
            if !reach[w] {
                reach[w] = true;
                queue.push(w);
            }
        }
    }
    for (n, node) in view.nodes.iter().enumerate() {
        if !reach[n] {
            diags.push(Diagnostic::new(
                HvCode::UnreachableOffcode,
                Loc::Node {
                    index: n,
                    bind_name: node.bind_name.clone(),
                },
                "not reachable from any deployment root; it will never be instantiated",
            ));
        }
    }
}

/// Sorted, deduplicated successor lists over all import edges.
pub(crate) fn adjacency(view: &GraphView) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); view.nodes.len()];
    for e in &view.edges {
        adj[e.from].push(e.to);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{EdgeView, NodeView};
    use hydra_odf::odf::ConstraintKind;

    fn node(name: &str, guid: u64) -> NodeView {
        NodeView {
            guid: Guid(guid),
            bind_name: name.into(),
            compat: vec![true, true],
            demand: 1024,
            traffic: None,
        }
    }

    fn edge(from: usize, to: usize) -> EdgeView {
        EdgeView {
            from,
            to,
            kind: ConstraintKind::Link,
        }
    }

    #[test]
    fn dag_is_clean() {
        let view = GraphView {
            nodes: vec![node("a", 1), node("b", 2), node("c", 3)],
            edges: vec![edge(0, 1), edge(0, 2), edge(1, 2)],
        };
        let (diags, _) = run(&view, None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cycle_is_a_deadlock() {
        let view = GraphView {
            nodes: vec![node("a", 1), node("b", 2), node("c", 3)],
            edges: vec![edge(0, 1), edge(1, 2), edge(2, 1)],
        };
        let (diags, _) = run(&view, None);
        let dl: Vec<_> = diags
            .iter()
            .filter(|d| d.code == HvCode::ChannelDeadlock)
            .collect();
        assert_eq!(dl.len(), 1);
        assert!(dl[0].message.contains("b -> c -> b"));
    }

    #[test]
    fn unreachable_node_flagged_with_inferred_roots() {
        // a -> b; c floats free but is imported by nobody, so it is a root
        // itself; d is imported by c only via... make d imported by nobody?
        // Use: a -> b, c -> c-island where c is a root too: everything
        // reachable. For a real orphan we need an imported node with an
        // unreachable importer — impossible with inferred roots, so use
        // explicit roots below and a cyclic pair here.
        let view = GraphView {
            nodes: vec![node("a", 1), node("b", 2), node("c", 3), node("d", 4)],
            edges: vec![edge(0, 1), edge(2, 3), edge(3, 2)],
        };
        let (diags, _) = run(&view, None);
        // c/d form a rootless cycle: deadlock fires, and neither is
        // reachable from the only root `a`.
        assert!(diags.iter().any(|d| d.code == HvCode::ChannelDeadlock));
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == HvCode::UnreachableOffcode)
                .count(),
            2
        );
    }

    #[test]
    fn explicit_roots_narrow_reachability() {
        let view = GraphView {
            nodes: vec![node("a", 1), node("b", 2), node("c", 3)],
            edges: vec![edge(0, 1)],
        };
        let (diags, _) = run(&view, Some(&[Guid(1)]));
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == HvCode::UnreachableOffcode)
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert!(matches!(&unreachable[0].loc, Loc::Node { index: 2, .. }));
    }

    #[test]
    fn fully_cyclic_set_skips_reachability() {
        let view = GraphView {
            nodes: vec![node("a", 1), node("b", 2)],
            edges: vec![edge(0, 1), edge(1, 0)],
        };
        let (diags, _) = run(&view, None);
        assert!(diags.iter().any(|d| d.code == HvCode::ChannelDeadlock));
        assert!(!diags.iter().any(|d| d.code == HvCode::UnreachableOffcode));
    }
}
