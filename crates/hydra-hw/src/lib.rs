//! # hydra-hw — host hardware models
//!
//! Cost-model hardware for the HYDRA reproduction: CPUs with busy-until
//! reservation and utilization accounting ([`cpu`]), a set-associative LRU
//! L2 cache fed by address-level traces ([`cache`]), the host memory system
//! that turns buffer touches into time and misses ([`mem`]), a shared I/O
//! interconnect with arbitration and bandwidth ([`bus`]), descriptor-ring
//! DMA ([`dma`]), interrupt coalescing ([`irq`]), and the OS timing model
//! whose tick quantization and scheduler noise produce the jitter the
//! paper measures ([`os`]).
//!
//! None of these structs schedule events themselves: they are passive
//! accounting objects that compute *when things finish* and record
//! statistics, which keeps them independently testable. The machine models
//! in `hydra-devices` and `hydra-tivo` drive them from the `hydra-sim`
//! event loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod cpu;
pub mod dma;
pub mod irq;
pub mod mem;
pub mod os;

pub use bus::{Bus, BusKind, BusSpec};
pub use cache::{AccessKind, AccessOutcome, Cache, CacheConfig, CacheStats};
pub use cpu::{Cpu, CpuSpec, Cycles};
pub use dma::{Descriptor, DescriptorRing, DmaDirection, DmaEngine};
pub use irq::{CoalescePolicy, IrqCoalescer, IrqDecision};
pub use mem::{AddressSpace, MemLatency, MemorySystem, Region};
pub use os::{BackgroundLoad, TimerModel};
