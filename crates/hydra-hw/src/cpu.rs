//! Host and device CPU cost models.
//!
//! The reproduction does not execute instructions; it accounts for them. A
//! [`Cpu`] is a resource with a clock frequency and a *busy-until* horizon:
//! callers reserve spans of work expressed in [`Cycles`] and the CPU returns
//! when that work starts and finishes, serializing overlapping requests the
//! way a real core serializes runnable tasks. Utilization is integrated over
//! simulated time, which is exactly the quantity Tables 3 and 4 of the paper
//! report.

use std::fmt;

use hydra_sim::stats::TimeWeighted;
use hydra_sim::time::{SimDuration, SimTime};

/// An amount of CPU work, in clock cycles.
///
/// # Examples
///
/// ```
/// use hydra_hw::cpu::Cycles;
///
/// let c = Cycles::new(2_400) * 5;
/// assert_eq!(c.get(), 12_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero work.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// True if the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Static description of a processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Human-readable name ("Pentium 4", "XScale").
    pub name: String,
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Cost of a context switch.
    pub context_switch: Cycles,
    /// Cost of entering and leaving the kernel for a system call.
    pub syscall: Cycles,
    /// Cost of taking an interrupt (dispatch + handler prologue).
    pub interrupt: Cycles,
    /// Electrical power when busy, in watts (paper §1.1 argument 3).
    pub power_busy_watts: f64,
    /// Electrical power when idle, in watts.
    pub power_idle_watts: f64,
}

impl CpuSpec {
    /// The paper's host: a 2.4 GHz Intel Pentium 4.
    pub fn pentium4() -> Self {
        CpuSpec {
            name: "Pentium 4".into(),
            freq_hz: 2_400_000_000,
            context_switch: Cycles::new(4_000),
            syscall: Cycles::new(1_200),
            interrupt: Cycles::new(6_000),
            power_busy_watts: 68.0,
            power_idle_watts: 30.0,
        }
    }

    /// A peripheral-class processor: an Intel XScale at 600 MHz
    /// (the paper's two-orders-of-magnitude power example).
    pub fn xscale() -> Self {
        CpuSpec {
            name: "XScale".into(),
            freq_hz: 600_000_000,
            context_switch: Cycles::new(800),
            syscall: Cycles::new(0),
            interrupt: Cycles::new(1_000),
            power_busy_watts: 0.5,
            power_idle_watts: 0.1,
        }
    }

    /// A GPU shader/decode engine abstracted as one fast vector core.
    pub fn gpu_core() -> Self {
        CpuSpec {
            name: "GPU core".into(),
            freq_hz: 1_200_000_000,
            context_switch: Cycles::new(0),
            syscall: Cycles::new(0),
            interrupt: Cycles::new(500),
            power_busy_watts: 25.0,
            power_idle_watts: 5.0,
        }
    }

    /// Converts work to wall-clock time at this frequency (rounded up to a
    /// whole nanosecond so repeated small costs never vanish).
    pub fn duration_of(&self, work: Cycles) -> SimDuration {
        if work.is_zero() {
            return SimDuration::ZERO;
        }
        let ns = (u128::from(work.get()) * 1_000_000_000).div_ceil(u128::from(self.freq_hz));
        SimDuration::from_nanos(ns as u64)
    }

    /// Converts a wall-clock span to the cycles this CPU retires in it.
    pub fn cycles_in(&self, span: SimDuration) -> Cycles {
        Cycles::new((u128::from(span.as_nanos()) * u128::from(self.freq_hz) / 1_000_000_000) as u64)
    }
}

/// Outcome of reserving CPU time: when the work starts and ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Instant the work begins (≥ the request instant).
    pub start: SimTime,
    /// Instant the work completes.
    pub end: SimTime,
}

impl Reservation {
    /// Time spent waiting for the CPU before the work began.
    pub fn queueing(&self, requested: SimTime) -> SimDuration {
        self.start.saturating_duration_since(requested)
    }
}

/// A processor with utilization accounting.
///
/// # Examples
///
/// ```
/// use hydra_hw::cpu::{Cpu, CpuSpec, Cycles};
/// use hydra_sim::time::SimTime;
///
/// let mut cpu = Cpu::new(CpuSpec::pentium4());
/// let r = cpu.reserve(SimTime::ZERO, Cycles::new(2_400_000)); // 1 ms of work
/// assert_eq!(r.end.as_millis(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    spec: CpuSpec,
    busy_until: SimTime,
    busy: TimeWeighted,
    retired: Cycles,
}

impl Cpu {
    /// Creates an idle CPU at time zero.
    pub fn new(spec: CpuSpec) -> Self {
        Cpu {
            spec,
            busy_until: SimTime::ZERO,
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            retired: Cycles::ZERO,
        }
    }

    /// The static description.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Instant at which all reserved work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the CPU has no reserved work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total cycles retired.
    pub fn retired(&self) -> Cycles {
        self.retired
    }

    /// Reserves `work` starting no earlier than `now`; overlapping requests
    /// are serialized in arrival order.
    pub fn reserve(&mut self, now: SimTime, work: Cycles) -> Reservation {
        let start = self.busy_until.max(now);
        let dur = self.spec.duration_of(work);
        let end = start + dur;
        if start > self.busy_until && self.busy.level() != 0.0 {
            // The CPU went idle between the previous horizon and `start`.
            self.busy.set(self.busy_until, 0.0);
        }
        if self.busy_until < start {
            self.busy.set(start, 1.0);
        } else {
            // Contiguous with previous work: ensure the level is busy.
            self.busy.set(start.max(self.busy_until), 1.0);
        }
        self.busy_until = end;
        self.retired += work;
        Reservation { start, end }
    }

    /// Utilization (fraction of wall-clock busy) from time zero until `now`.
    ///
    /// `now` must be at or after the last reservation's start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        // The busy gauge currently reads 1.0 through `busy_until`; clamp the
        // query so un-elapsed busy time and trailing idle time are handled.
        if now <= self.busy_until {
            self.busy.mean_until(now)
        } else {
            let mut g = self.busy.clone();
            g.set(self.busy_until, 0.0);
            g.mean_until(now)
        }
    }

    /// Average electrical power over `[0, now]`, in watts.
    pub fn mean_power(&self, now: SimTime) -> f64 {
        let u = self.utilization(now);
        u * self.spec.power_busy_watts + (1.0 - u) * self.spec.power_idle_watts
    }

    /// Energy consumed over `[0, now]`, in joules.
    pub fn energy(&self, now: SimTime) -> f64 {
        self.mean_power(now) * now.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz_cpu() -> Cpu {
        Cpu::new(CpuSpec {
            name: "test".into(),
            freq_hz: 1_000_000_000,
            context_switch: Cycles::new(100),
            syscall: Cycles::new(10),
            interrupt: Cycles::new(50),
            power_busy_watts: 10.0,
            power_idle_watts: 1.0,
        })
    }

    #[test]
    fn duration_of_is_exact_at_1ghz() {
        let cpu = ghz_cpu();
        assert_eq!(
            cpu.spec().duration_of(Cycles::new(1_000)),
            SimDuration::from_micros(1)
        );
        assert_eq!(cpu.spec().duration_of(Cycles::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn duration_rounds_up() {
        let spec = CpuSpec {
            freq_hz: 3_000_000_000,
            ..ghz_cpu().spec.clone()
        };
        // 1 cycle at 3 GHz is 0.33 ns; must not round to zero.
        assert_eq!(spec.duration_of(Cycles::new(1)), SimDuration::from_nanos(1));
    }

    #[test]
    fn cycles_in_round_trip() {
        let spec = ghz_cpu().spec.clone();
        assert_eq!(
            spec.cycles_in(SimDuration::from_micros(5)),
            Cycles::new(5_000)
        );
    }

    #[test]
    fn reservations_serialize() {
        let mut cpu = ghz_cpu();
        let r1 = cpu.reserve(SimTime::ZERO, Cycles::new(1_000)); // 1 us
        let r2 = cpu.reserve(SimTime::ZERO, Cycles::new(1_000));
        assert_eq!(r1.start, SimTime::ZERO);
        assert_eq!(r1.end, SimTime::from_micros(1));
        assert_eq!(r2.start, SimTime::from_micros(1));
        assert_eq!(r2.end, SimTime::from_micros(2));
        assert_eq!(r2.queueing(SimTime::ZERO), SimDuration::from_micros(1));
    }

    #[test]
    fn idle_gap_reduces_utilization() {
        let mut cpu = ghz_cpu();
        cpu.reserve(SimTime::ZERO, Cycles::new(1_000)); // busy 0..1us
        cpu.reserve(SimTime::from_micros(3), Cycles::new(1_000)); // busy 3..4us
        let u = cpu.utilization(SimTime::from_micros(4));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn utilization_beyond_horizon_counts_idle_tail() {
        let mut cpu = ghz_cpu();
        cpu.reserve(SimTime::ZERO, Cycles::new(1_000)); // busy 0..1us
        let u = cpu.utilization(SimTime::from_micros(10));
        assert!((u - 0.1).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn idle_cpu_reports_zero_utilization() {
        let cpu = ghz_cpu();
        assert_eq!(cpu.utilization(SimTime::from_secs(1)), 0.0);
        assert!(cpu.is_idle(SimTime::ZERO));
    }

    #[test]
    fn retired_accumulates() {
        let mut cpu = ghz_cpu();
        cpu.reserve(SimTime::ZERO, Cycles::new(123));
        cpu.reserve(SimTime::ZERO, Cycles::new(77));
        assert_eq!(cpu.retired(), Cycles::new(200));
    }

    #[test]
    fn power_interpolates_between_idle_and_busy() {
        let mut cpu = ghz_cpu();
        cpu.reserve(SimTime::ZERO, Cycles::new(500_000)); // 0.5 ms busy
        let p = cpu.mean_power(SimTime::from_millis(1)); // 50% utilized
        assert!((p - 5.5).abs() < 1e-9, "power {p}");
        let e = cpu.energy(SimTime::from_millis(1));
        assert!((e - 5.5e-3).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn paper_power_ratio_is_two_orders_of_magnitude() {
        let p4 = CpuSpec::pentium4();
        let xs = CpuSpec::xscale();
        assert!(p4.power_busy_watts / xs.power_busy_watts > 100.0);
    }
}
