//! DMA engine with descriptor rings and scatter-gather.
//!
//! HYDRA's zero-copy channels (paper §4.1) are built on descriptor rings:
//! the host posts memory descriptors into an *InRing*, the device DMAs Call
//! objects directly between host memory and device memory using its bus
//! master capability, and completion descriptors flow back through an
//! *OutRing*. [`DescriptorRing`] is the ring abstraction; [`DmaEngine`]
//! turns scatter-gather lists into timed bus transactions that bypass the
//! host CPU (and, with [`MemorySystem::dma_transfer`], the host cache).
//!
//! [`MemorySystem::dma_transfer`]: crate::mem::MemorySystem::dma_transfer

use crate::bus::{Bus, BusXfer};
use crate::mem::Region;
use hydra_sim::time::SimTime;

/// A memory descriptor: one entry of a DMA ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The host memory the descriptor points at.
    pub region: Region,
    /// Opaque tag the poster can use to match completions.
    pub tag: u64,
}

/// A fixed-capacity single-producer single-consumer descriptor ring.
///
/// # Examples
///
/// ```
/// use hydra_hw::dma::{Descriptor, DescriptorRing};
/// use hydra_hw::mem::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let buf = space.alloc("buf", 512);
/// let mut ring = DescriptorRing::new(4);
/// ring.post(Descriptor { region: buf, tag: 7 }).unwrap();
/// assert_eq!(ring.consume().unwrap().tag, 7);
/// ```
#[derive(Debug, Clone)]
pub struct DescriptorRing {
    slots: Vec<Option<Descriptor>>,
    head: usize,
    tail: usize,
    len: usize,
    posted: u64,
    consumed: u64,
}

/// Error returned when posting to a full [`DescriptorRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("descriptor ring is full")
    }
}

impl std::error::Error for RingFull {}

impl DescriptorRing {
    /// Creates a ring with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DescriptorRing: capacity must be positive");
        DescriptorRing {
            slots: vec![None; capacity],
            head: 0,
            tail: 0,
            len: 0,
            posted: 0,
            consumed: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of posted, unconsumed descriptors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no descriptors are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if no slot is free.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Posts a descriptor at the producer end.
    ///
    /// # Errors
    ///
    /// Returns [`RingFull`] when every slot is occupied; the caller decides
    /// whether to drop (unreliable channel) or retry later (reliable).
    pub fn post(&mut self, d: Descriptor) -> Result<(), RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        self.slots[self.tail] = Some(d);
        self.tail = (self.tail + 1) % self.slots.len();
        self.len += 1;
        self.posted += 1;
        Ok(())
    }

    /// Posts a batch of descriptors at the producer end, stopping at the
    /// first full slot. Returns how many were posted; the caller rings
    /// the doorbell once for the whole batch.
    pub fn post_batch(&mut self, batch: &[Descriptor]) -> usize {
        let mut n = 0;
        for d in batch {
            if self.post(*d).is_err() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Takes up to `max` descriptors from the consumer end in FIFO order
    /// (a vectored completion: one doorbell covers the whole batch).
    pub fn consume_batch(&mut self, max: usize) -> Vec<Descriptor> {
        let mut out = Vec::with_capacity(max.min(self.len));
        while out.len() < max {
            match self.consume() {
                Some(d) => out.push(d),
                None => break,
            }
        }
        out
    }

    /// Takes the oldest descriptor from the consumer end.
    pub fn consume(&mut self) -> Option<Descriptor> {
        if self.is_empty() {
            return None;
        }
        let d = self.slots[self.head].take().expect("non-empty slot");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        self.consumed += 1;
        Some(d)
    }

    /// Peeks at the oldest descriptor without consuming it.
    pub fn peek(&self) -> Option<&Descriptor> {
        if self.is_empty() {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Lifetime counters: `(posted, consumed)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.posted, self.consumed)
    }
}

/// Direction of a DMA transfer relative to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Device reads host memory (host → device).
    FromHost,
    /// Device writes host memory (device → host).
    ToHost,
}

/// A bus-mastering DMA engine belonging to one device.
///
/// The engine owns no memory; it times scatter-gather transfers on the
/// shared [`Bus`] and counts traffic.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    transfers: u64,
    bytes: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime transfer count.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Lifetime byte count.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Executes a scatter-gather transfer over `segments`, one bus
    /// transaction per segment, returning the overall completion.
    ///
    /// Returns `None` if `segments` is empty.
    pub fn scatter_gather(
        &mut self,
        bus: &mut Bus,
        now: SimTime,
        segments: &[Region],
        _dir: DmaDirection,
    ) -> Option<BusXfer> {
        let mut first_start = None;
        let mut last: Option<BusXfer> = None;
        let mut total = 0usize;
        for seg in segments {
            let x = bus.transfer(now, seg.len());
            first_start.get_or_insert(x.start);
            total += seg.len();
            last = Some(x);
        }
        let last = last?;
        self.transfers += 1;
        self.bytes += total as u64;
        Some(BusXfer {
            start: first_start.expect("set alongside last"),
            end: last.end,
            bytes: total,
        })
    }

    /// Convenience wrapper for a single-segment transfer.
    pub fn transfer(
        &mut self,
        bus: &mut Bus,
        now: SimTime,
        region: Region,
        dir: DmaDirection,
    ) -> BusXfer {
        self.scatter_gather(bus, now, &[region], dir)
            .expect("single segment is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusSpec;
    use crate::mem::AddressSpace;
    use hydra_sim::time::SimDuration;

    fn fixture() -> (AddressSpace, Bus) {
        (
            AddressSpace::new(),
            Bus::new(BusSpec {
                kind: crate::bus::BusKind::Pci,
                per_transaction: SimDuration::from_nanos(100),
                bytes_per_sec: 1_000_000_000,
            }),
        )
    }

    #[test]
    fn ring_fifo_order() {
        let (mut a, _) = fixture();
        let r = a.alloc("r", 64);
        let mut ring = DescriptorRing::new(3);
        for tag in 0..3 {
            ring.post(Descriptor { region: r, tag }).unwrap();
        }
        assert!(ring.is_full());
        assert_eq!(ring.post(Descriptor { region: r, tag: 9 }), Err(RingFull));
        for tag in 0..3 {
            assert_eq!(ring.consume().unwrap().tag, tag);
        }
        assert!(ring.consume().is_none());
        assert_eq!(ring.counters(), (3, 3));
    }

    #[test]
    fn ring_wraps_around() {
        let (mut a, _) = fixture();
        let r = a.alloc("r", 64);
        let mut ring = DescriptorRing::new(2);
        for round in 0..5u64 {
            ring.post(Descriptor {
                region: r,
                tag: round,
            })
            .unwrap();
            assert_eq!(ring.consume().unwrap().tag, round);
        }
        assert_eq!(ring.counters(), (5, 5));
    }

    #[test]
    fn ring_peek_does_not_consume() {
        let (mut a, _) = fixture();
        let r = a.alloc("r", 64);
        let mut ring = DescriptorRing::new(2);
        ring.post(Descriptor { region: r, tag: 1 }).unwrap();
        assert_eq!(ring.peek().unwrap().tag, 1);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn batch_post_and_consume_preserve_fifo() {
        let (mut a, _) = fixture();
        let r = a.alloc("r", 64);
        let mut ring = DescriptorRing::new(4);
        let batch: Vec<Descriptor> = (0..6).map(|tag| Descriptor { region: r, tag }).collect();
        // Partial post: stops at the first full slot.
        assert_eq!(ring.post_batch(&batch), 4);
        assert_eq!(ring.len(), 4);
        let got = ring.consume_batch(3);
        assert_eq!(got.iter().map(|d| d.tag).collect::<Vec<_>>(), [0, 1, 2]);
        // Remaining descriptor still consumable; over-asking drains what's left.
        assert_eq!(ring.consume_batch(10).len(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.counters(), (4, 4));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DescriptorRing::new(0);
    }

    #[test]
    fn scatter_gather_times_all_segments() {
        let (mut a, mut bus) = fixture();
        let s1 = a.alloc("s1", 1_000);
        let s2 = a.alloc("s2", 2_000);
        let mut dma = DmaEngine::new();
        let x = dma
            .scatter_gather(&mut bus, SimTime::ZERO, &[s1, s2], DmaDirection::FromHost)
            .unwrap();
        // 100 + 1000 + 100 + 2000 ns
        assert_eq!(x.end, SimTime::from_nanos(3_200));
        assert_eq!(x.bytes, 3_000);
        assert_eq!(dma.transfers(), 1);
        assert_eq!(dma.bytes(), 3_000);
    }

    #[test]
    fn empty_scatter_gather_is_none() {
        let (_, mut bus) = fixture();
        let mut dma = DmaEngine::new();
        assert!(dma
            .scatter_gather(&mut bus, SimTime::ZERO, &[], DmaDirection::ToHost)
            .is_none());
    }

    #[test]
    fn dma_contends_with_other_bus_traffic() {
        let (mut a, mut bus) = fixture();
        let r = a.alloc("r", 1_000);
        bus.transfer(SimTime::ZERO, 10_000); // bus busy until 10.1 us
        let mut dma = DmaEngine::new();
        let x = dma.transfer(&mut bus, SimTime::ZERO, r, DmaDirection::ToHost);
        assert_eq!(x.start, SimTime::from_nanos(10_100));
    }
}
