//! I/O interconnect (PCI / PCIe) transaction model.
//!
//! The paper's core quantitative argument is about **bus crossings**: every
//! time a packet moves between a device and host memory (or between two
//! devices through the host) it occupies the interconnect and, in the
//! non-offloaded design, also the host memory bus. [`Bus`] models a shared
//! half-duplex interconnect with per-transaction arbitration overhead and a
//! per-byte cost; [`BusKind::PciExpress`] supports direct peer-to-peer
//! transfers (the paper's footnote 2: on PCIe a NIC→GPU packet can be one
//! transaction).

use std::fmt;

use hydra_sim::stats::TimeWeighted;
use hydra_sim::time::{SimDuration, SimTime};

/// Interconnect generation, which determines peer-to-peer capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Classic shared parallel PCI: all traffic crosses the host bridge;
    /// device-to-device transfers are two transactions.
    Pci,
    /// Point-to-point PCI Express: device-to-device transfers can be routed
    /// directly as a single transaction.
    PciExpress,
}

/// Static parameters of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusSpec {
    /// Generation.
    pub kind: BusKind,
    /// Fixed arbitration/setup overhead per transaction.
    pub per_transaction: SimDuration,
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: u64,
}

impl BusSpec {
    /// 64-bit/66 MHz PCI (~533 MB/s peak, ~1 µs arbitration).
    pub fn pci64() -> Self {
        BusSpec {
            kind: BusKind::Pci,
            per_transaction: SimDuration::from_nanos(1_000),
            bytes_per_sec: 533_000_000,
        }
    }

    /// PCIe x4 gen1 (~1 GB/s, 250 ns setup).
    pub fn pcie_x4() -> Self {
        BusSpec {
            kind: BusKind::PciExpress,
            per_transaction: SimDuration::from_nanos(250),
            bytes_per_sec: 1_000_000_000,
        }
    }

    /// Pure wire time for a payload of `bytes` (no arbitration, no queueing).
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000).div_ceil(u128::from(self.bytes_per_sec));
        SimDuration::from_nanos(ns as u64)
    }
}

/// A completed bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusXfer {
    /// When the transaction won arbitration and started moving bytes.
    pub start: SimTime,
    /// When the last byte arrived.
    pub end: SimTime,
    /// Payload size.
    pub bytes: usize,
}

impl BusXfer {
    /// Queueing delay before the transaction started.
    pub fn queueing(&self, requested: SimTime) -> SimDuration {
        self.start.saturating_duration_since(requested)
    }
}

/// A shared interconnect with utilization and byte accounting.
///
/// # Examples
///
/// ```
/// use hydra_hw::bus::{Bus, BusSpec};
/// use hydra_sim::time::SimTime;
///
/// let mut bus = Bus::new(BusSpec::pci64());
/// let x = bus.transfer(SimTime::ZERO, 1024);
/// assert!(x.end > x.start);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    spec: BusSpec,
    busy_until: SimTime,
    busy: TimeWeighted,
    bytes_moved: u64,
    transactions: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(spec: BusSpec) -> Self {
        Bus {
            spec,
            busy_until: SimTime::ZERO,
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            bytes_moved: 0,
            transactions: 0,
        }
    }

    /// The static parameters.
    pub fn spec(&self) -> &BusSpec {
        &self.spec
    }

    /// Instant at which all queued transactions complete.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total transactions performed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Performs one transaction of `bytes`, queueing behind earlier traffic.
    pub fn transfer(&mut self, now: SimTime, bytes: usize) -> BusXfer {
        let start = self.busy_until.max(now);
        let dur = self.spec.per_transaction + self.spec.wire_time(bytes);
        let end = start + dur;
        if start > self.busy_until && self.busy.level() != 0.0 {
            self.busy.set(self.busy_until, 0.0);
        }
        self.busy.set(start, 1.0);
        self.busy_until = end;
        self.bytes_moved += bytes as u64;
        self.transactions += 1;
        BusXfer { start, end, bytes }
    }

    /// Number of bus transactions required to move a payload between two
    /// devices on this interconnect (the paper's footnote 2).
    pub fn peer_to_peer_hops(&self) -> u32 {
        match self.spec.kind {
            BusKind::Pci => 2,
            BusKind::PciExpress => 1,
        }
    }

    /// Fraction of wall-clock time the bus was occupied, over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now <= self.busy_until {
            self.busy.mean_until(now)
        } else {
            let mut g = self.busy.clone();
            g.set(self.busy_until, 0.0);
            g.mean_until(now)
        }
    }

    /// Achieved throughput in bytes/second over `[0, now]`.
    pub fn throughput(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_moved as f64 / secs
        }
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} bus: {} transactions, {} bytes",
            self.spec.kind, self.transactions, self.bytes_moved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        Bus::new(BusSpec {
            kind: BusKind::Pci,
            per_transaction: SimDuration::from_nanos(100),
            bytes_per_sec: 1_000_000_000, // 1 B/ns
        })
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let b = bus();
        assert_eq!(b.spec().wire_time(1_000), SimDuration::from_micros(1));
        assert_eq!(b.spec().wire_time(0), SimDuration::ZERO);
    }

    #[test]
    fn transfer_includes_overhead() {
        let mut b = bus();
        let x = b.transfer(SimTime::ZERO, 1_000);
        assert_eq!(x.start, SimTime::ZERO);
        assert_eq!(x.end, SimTime::from_nanos(1_100));
    }

    #[test]
    fn transfers_queue() {
        let mut b = bus();
        let x1 = b.transfer(SimTime::ZERO, 1_000);
        let x2 = b.transfer(SimTime::ZERO, 1_000);
        assert_eq!(x2.start, x1.end);
        assert_eq!(x2.queueing(SimTime::ZERO), SimDuration::from_nanos(1_100));
        assert_eq!(b.transactions(), 2);
        assert_eq!(b.bytes_moved(), 2_000);
    }

    #[test]
    fn utilization_counts_gaps() {
        let mut b = bus();
        b.transfer(SimTime::ZERO, 900); // busy 0..1000ns
        let u = b.utilization(SimTime::from_micros(2));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn throughput_accounting() {
        let mut b = bus();
        b.transfer(SimTime::ZERO, 500_000);
        let tp = b.throughput(SimTime::from_millis(1));
        assert!((tp - 5e8).abs() < 1.0, "throughput {tp}");
        assert_eq!(b.throughput(SimTime::ZERO), 0.0);
    }

    #[test]
    fn pcie_allows_single_hop_peer_transfers() {
        assert_eq!(Bus::new(BusSpec::pci64()).peer_to_peer_hops(), 2);
        assert_eq!(Bus::new(BusSpec::pcie_x4()).peer_to_peer_hops(), 1);
    }
}
