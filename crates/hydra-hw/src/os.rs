//! Operating-system timing model: ticks, scheduler noise, wakeup latency.
//!
//! The paper's jitter experiment (Figure 9, Table 2) is ultimately a story
//! about *timer fidelity*: a user-space streaming loop wakes from `sleep()`
//! at the granularity of the kernel tick plus scheduler noise (the paper
//! cites Tsafrir et al. on OS noise), while an Offcode on a device runs on
//! a dedicated microcontroller timer with microsecond precision and no
//! competing tasks. [`TimerModel`] captures both regimes with four knobs:
//! resolution (wakeups quantize up to the next tick), a deterministic
//! overshoot (kernels add a safety tick), Gaussian noise (run-queue and
//! cache-state dependent delays), and occasional preemption spikes (the
//! heavy tail of OS noise).

use hydra_sim::rng::DetRng;
use hydra_sim::time::{SimDuration, SimTime};

/// A timer/scheduler fidelity model.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerModel {
    /// Wakeups are quantized **up** to multiples of this period.
    pub resolution: SimDuration,
    /// Deterministic extra delay after quantization (e.g. the kernel's
    /// "+1 tick" guarantee that a sleep never wakes early).
    pub overshoot: SimDuration,
    /// Standard deviation of Gaussian scheduling noise added on top.
    pub noise_std: SimDuration,
    /// Probability that a wakeup additionally hits a long preemption
    /// (another runnable task holding the CPU) — the heavy tail that
    /// Gaussian noise alone misses (Tsafrir et al.'s OS-noise spikes).
    pub spike_prob: f64,
    /// Maximum length of such a preemption (uniform in `(0, spike_max]`).
    pub spike_max: SimDuration,
}

impl TimerModel {
    /// A 2.6-era Linux host at HZ=250: 4 ms ticks, one tick overshoot,
    /// noticeable scheduler noise. With a 5 ms target period this yields
    /// the ~7 ms median inter-packet gap the paper measured for the simple
    /// server.
    pub fn linux_host() -> Self {
        TimerModel {
            resolution: SimDuration::from_millis(1),
            overshoot: SimDuration::from_millis(1),
            noise_std: SimDuration::from_micros(450),
            spike_prob: 0.04,
            spike_max: SimDuration::from_micros(2_500),
        }
    }

    /// A kernel-assisted path (e.g. `sendfile` pacing in-kernel): same tick
    /// quantization but less overshoot and noise because fewer context
    /// switches and copies sit between the timer and the wire.
    pub fn linux_kernel_path() -> Self {
        TimerModel {
            resolution: SimDuration::from_millis(1),
            overshoot: SimDuration::ZERO,
            noise_std: SimDuration::from_micros(400),
            spike_prob: 0.03,
            spike_max: SimDuration::from_micros(2_000),
        }
    }

    /// A device firmware timer: microsecond resolution, microsecond noise.
    pub fn device_firmware() -> Self {
        TimerModel {
            resolution: SimDuration::from_micros(1),
            overshoot: SimDuration::ZERO,
            noise_std: SimDuration::from_micros(30),
            spike_prob: 0.0,
            spike_max: SimDuration::ZERO,
        }
    }

    /// A perfect timer (useful in tests).
    pub fn ideal() -> Self {
        TimerModel {
            resolution: SimDuration::from_nanos(1),
            overshoot: SimDuration::ZERO,
            noise_std: SimDuration::ZERO,
            spike_prob: 0.0,
            spike_max: SimDuration::ZERO,
        }
    }

    /// Computes the actual wakeup instant for a sleep until `target`.
    ///
    /// The result is never earlier than `target` (kernels guarantee
    /// minimum sleep time); noise is truncated at zero.
    pub fn wakeup(&self, target: SimTime, rng: &mut DetRng) -> SimTime {
        let res = self.resolution.as_nanos().max(1);
        let quantized = target.as_nanos().div_ceil(res) * res;
        let mut at = SimTime::from_nanos(quantized) + self.overshoot;
        if !self.noise_std.is_zero() {
            let noise = rng.normal(0.0, self.noise_std.as_nanos() as f64);
            // One-sided: a busy run queue only ever delays the wakeup.
            at += SimDuration::from_nanos(noise.abs() as u64);
        }
        if self.spike_prob > 0.0 && rng.chance(self.spike_prob) {
            let max = self.spike_max.as_nanos().max(1);
            at += SimDuration::from_nanos(1 + rng.next_below(max));
        }
        at
    }
}

/// Background OS activity that perturbs a host CPU: the periodic timer tick
/// plus occasional daemon work. This is the "idle system" load that gives
/// the paper's idle scenario its ~2.9% CPU utilization floor.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundLoad {
    /// Period of the kernel timer tick.
    pub tick_period: SimDuration,
    /// CPU time consumed by each tick.
    pub tick_cost: SimDuration,
    /// Mean interval between daemon bursts.
    pub daemon_mean_interval: SimDuration,
    /// CPU time consumed by each daemon burst.
    pub daemon_cost: SimDuration,
}

impl BackgroundLoad {
    /// Calibrated to produce ≈2.9–3% idle CPU utilization and the steady
    /// idle L2 miss rate that Figure 10 normalizes against.
    pub fn paper_idle() -> Self {
        BackgroundLoad {
            tick_period: SimDuration::from_millis(1),
            tick_cost: SimDuration::from_micros(25),
            daemon_mean_interval: SimDuration::from_micros(9_500),
            daemon_cost: SimDuration::from_micros(50),
        }
    }

    /// The long-run CPU utilization fraction this load imposes.
    pub fn expected_utilization(&self) -> f64 {
        let tick = self.tick_cost.as_secs_f64() / self.tick_period.as_secs_f64();
        let daemon = self.daemon_cost.as_secs_f64() / self.daemon_mean_interval.as_secs_f64();
        tick + daemon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_timer_is_exact() {
        let mut rng = DetRng::new(1);
        let m = TimerModel::ideal();
        let t = SimTime::from_micros(5_001);
        assert_eq!(m.wakeup(t, &mut rng), t);
    }

    #[test]
    fn wakeup_never_early() {
        let mut rng = DetRng::new(2);
        for model in [
            TimerModel::linux_host(),
            TimerModel::linux_kernel_path(),
            TimerModel::device_firmware(),
        ] {
            for i in 0..500u64 {
                let target = SimTime::from_micros(i * 137 + 1);
                assert!(model.wakeup(target, &mut rng) >= target);
            }
        }
    }

    #[test]
    fn quantization_rounds_up_to_tick() {
        let mut rng = DetRng::new(3);
        let m = TimerModel {
            resolution: SimDuration::from_millis(1),
            overshoot: SimDuration::ZERO,
            noise_std: SimDuration::ZERO,
            spike_prob: 0.0,
            spike_max: SimDuration::ZERO,
        };
        assert_eq!(
            m.wakeup(SimTime::from_micros(4_100), &mut rng),
            SimTime::from_millis(5)
        );
        assert_eq!(
            m.wakeup(SimTime::from_millis(5), &mut rng),
            SimTime::from_millis(5)
        );
    }

    #[test]
    fn host_timer_overshoots_more_than_device_timer() {
        let mut rng = DetRng::new(4);
        let host = TimerModel::linux_host();
        let dev = TimerModel::device_firmware();
        let n = 2_000;
        let target = SimTime::from_millis(5);
        let mean_late = |m: &TimerModel, rng: &mut DetRng| {
            (0..n)
                .map(|_| m.wakeup(target, rng).duration_since(target).as_secs_f64())
                .sum::<f64>()
                / f64::from(n)
        };
        let host_late = mean_late(&host, &mut rng);
        let dev_late = mean_late(&dev, &mut rng);
        assert!(
            host_late > 10.0 * dev_late,
            "host {host_late} vs device {dev_late}"
        );
    }

    #[test]
    fn background_load_matches_paper_idle() {
        let u = BackgroundLoad::paper_idle().expected_utilization();
        assert!((u - 0.029).abs() < 0.002, "idle utilization {u}");
    }
}
