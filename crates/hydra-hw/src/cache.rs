//! Set-associative cache simulation.
//!
//! Figure 10 and the client-side L2 numbers in the paper come from OProfile
//! hardware miss counters on a 256 kB L2. Here the workload models emit
//! address-level traces into a real set-associative LRU [`Cache`]; the
//! miss-rate *ratios* between scenarios (idle vs. copying server vs.
//! zero-copy vs. offloaded) emerge from which buffers each scenario
//! actually touches on the host.

use std::fmt;

/// Whether an access reads or writes the line (writes mark it dirty; a
/// dirty eviction is counted as a write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another).
    Miss,
}

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The paper's host L2: 256 kB, 8-way, 64-byte lines.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: sizes must be
    /// non-zero, the line size a power of two, and the capacity an exact
    /// multiple of `line_bytes * ways`.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line_bytes {} must be a non-zero power of two",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("ways must be non-zero".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return Err(format!(
                "size_bytes {} must be a positive multiple of line_bytes*ways = {}",
                self.size_bytes,
                self.line_bytes * self.ways
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic stamp of last touch; larger is more recent.
    lru: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// Access counters of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction or flush.
    pub write_backs: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss fraction in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache model.
///
/// # Examples
///
/// ```
/// use hydra_hw::cache::{AccessKind, AccessOutcome, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 });
/// assert_eq!(c.access(0x100, AccessKind::Read), AccessOutcome::Miss);
/// assert_eq!(c.access(0x100, AccessKind::Read), AccessOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache config: {e}"));
        let sets = vec![vec![EMPTY_LINE; config.ways]; config.sets()];
        Cache {
            config,
            sets,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_of(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Performs one access at byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, tag) = self.index_of(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        // Choose a victim: an invalid way if any, else the LRU way.
        let victim = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .expect("ways > 0 by construction");
                self.stats.evictions += 1;
                if set[i].dirty {
                    self.stats.write_backs += 1;
                }
                i
            }
        };
        set[victim] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: stamp,
        };
        AccessOutcome::Miss
    }

    /// Accesses every line covered by `[addr, addr + len)`, returning the
    /// number of misses. This is how workload models "touch" a buffer.
    pub fn touch_range(&mut self, addr: u64, len: usize, kind: AccessKind) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + len as u64 - 1) / line;
        let mut misses = 0;
        for l in first..=last {
            if self.access(l * line, kind) == AccessOutcome::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// True if the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_of(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line whose address falls in `[addr, addr + len)`,
    /// counting write-backs of dirty lines. Returns the number of lines
    /// invalidated. This models coherent device DMA claiming host buffers.
    pub fn invalidate_range(&mut self, addr: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + len as u64 - 1) / line;
        let mut invalidated = 0;
        for l in first..=last {
            let (set_idx, tag) = self.index_of(l * line);
            if let Some(entry) = self.sets[set_idx]
                .iter_mut()
                .find(|e| e.valid && e.tag == tag)
            {
                if entry.dirty {
                    self.stats.write_backs += 1;
                }
                *entry = EMPTY_LINE;
                invalidated += 1;
            }
        }
        invalidated
    }

    /// Invalidates every line, counting write-backs of dirty lines.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid && line.dirty {
                    self.stats.write_backs += 1;
                }
                *line = EMPTY_LINE;
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}kB {}-way cache: {} accesses, miss rate {:.2}%",
            self.config.size_bytes / 1024,
            self.config.ways,
            self.stats.accesses(),
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn second_access_hits() {
        let mut c = small();
        assert_eq!(c.access(0, AccessKind::Read), AccessOutcome::Miss);
        assert_eq!(c.access(63, AccessKind::Read), AccessOutcome::Hit);
        assert_eq!(c.access(64, AccessKind::Read), AccessOutcome::Miss);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines with addresses ≡ 0 mod (4 sets * 64B line) = 256.
        c.access(0, AccessKind::Read); // A
        c.access(256, AccessKind::Read); // B — set 0 now full
        c.access(0, AccessKind::Read); // touch A, so B is LRU
        c.access(512, AccessKind::Read); // C evicts B
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_counts_write_back() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.access(256, AccessKind::Read);
        c.access(512, AccessKind::Read); // evicts dirty line A
        assert_eq!(c.stats().write_backs, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, marks dirty
        c.access(256, AccessKind::Read);
        c.access(512, AccessKind::Read); // evicts line 0
        assert_eq!(c.stats().write_backs, 1);
    }

    #[test]
    fn touch_range_counts_lines() {
        let mut c = small();
        // 130 bytes from address 10 spans lines 0,1,2.
        assert_eq!(c.touch_range(10, 130, AccessKind::Read), 3);
        assert_eq!(c.touch_range(10, 130, AccessKind::Read), 0);
        assert_eq!(c.touch_range(0, 0, AccessKind::Read), 0);
    }

    #[test]
    fn flush_empties_and_counts_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Read);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().write_backs, 1);
        assert_eq!(c.access(0, AccessKind::Read), AccessOutcome::Miss);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 512 B
                             // Stream over 4 kB twice: second pass still misses everywhere.
        let before = c.stats().misses;
        for pass in 0..2 {
            for addr in (0..4096u64).step_by(64) {
                c.access(addr, AccessKind::Read);
            }
            if pass == 0 {
                assert_eq!(c.stats().misses - before, 64);
            }
        }
        assert_eq!(c.stats().misses - before, 128);
    }

    #[test]
    fn working_set_within_cache_stops_missing() {
        let mut c = small();
        for _ in 0..3 {
            for addr in (0..512u64).step_by(64) {
                c.access(addr, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().misses, 8); // cold misses only
        assert_eq!(c.stats().hits, 16);
    }

    #[test]
    fn paper_l2_geometry() {
        let cfg = CacheConfig::paper_l2();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.sets(), 512);
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 64,
            ways: 2,
        });
    }

    #[test]
    fn invalidate_range_removes_lines() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Read);
        c.access(128, AccessKind::Read);
        let n = c.invalidate_range(0, 128); // lines 0 and 1
        assert_eq!(n, 2);
        assert!(!c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128));
        assert_eq!(c.stats().write_backs, 1);
        assert_eq!(c.invalidate_range(0, 0), 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0, AccessKind::Read), AccessOutcome::Hit);
    }
}
