//! Interrupt delivery with coalescing.
//!
//! Device completions notify the host through interrupts. Each interrupt
//! costs host CPU cycles (dispatch, handler, cache disturbance), which is
//! one of the per-packet overheads that make small-packet networking so
//! expensive in Figure 1. Real NICs mitigate with *coalescing*: holding a
//! pending interrupt until either `max_frames` completions have accumulated
//! or `max_wait` has elapsed. [`IrqCoalescer`] reproduces that policy.

use hydra_sim::time::{SimDuration, SimTime};

/// Interrupt coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Fire after this many pending completions.
    pub max_frames: u32,
    /// Fire at most this long after the first pending completion.
    pub max_wait: SimDuration,
}

impl CoalescePolicy {
    /// No coalescing: every completion interrupts immediately.
    pub fn immediate() -> Self {
        CoalescePolicy {
            max_frames: 1,
            max_wait: SimDuration::ZERO,
        }
    }

    /// A typical NIC default: up to 8 frames or 100 µs.
    pub fn typical_nic() -> Self {
        CoalescePolicy {
            max_frames: 8,
            max_wait: SimDuration::from_micros(100),
        }
    }
}

/// Decision returned by [`IrqCoalescer::on_completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqDecision {
    /// Raise the interrupt now, covering `frames` completions.
    Fire {
        /// Number of completions this interrupt covers.
        frames: u32,
    },
    /// Hold; an interrupt is due no later than the contained deadline.
    Hold {
        /// Latest instant by which the interrupt must fire.
        deadline: SimTime,
    },
}

/// State machine implementing interrupt coalescing.
///
/// The caller reports completions via [`IrqCoalescer::on_completion`] and
/// must also poll [`IrqCoalescer::on_deadline`] when a previously returned
/// deadline arrives.
///
/// # Examples
///
/// ```
/// use hydra_hw::irq::{CoalescePolicy, IrqCoalescer, IrqDecision};
/// use hydra_sim::time::SimTime;
///
/// let mut c = IrqCoalescer::new(CoalescePolicy::immediate());
/// assert_eq!(c.on_completion(SimTime::ZERO), IrqDecision::Fire { frames: 1 });
/// ```
#[derive(Debug, Clone)]
pub struct IrqCoalescer {
    policy: CoalescePolicy,
    pending: u32,
    first_pending_at: Option<SimTime>,
    fired: u64,
    completions: u64,
}

impl IrqCoalescer {
    /// Creates a coalescer with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_frames` is zero.
    pub fn new(policy: CoalescePolicy) -> Self {
        assert!(policy.max_frames > 0, "max_frames must be positive");
        IrqCoalescer {
            policy,
            pending: 0,
            first_pending_at: None,
            fired: 0,
            completions: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> CoalescePolicy {
        self.policy
    }

    /// Completions reported so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Interrupts actually raised so far.
    pub fn interrupts_fired(&self) -> u64 {
        self.fired
    }

    /// Mean completions per interrupt (the coalescing factor).
    pub fn coalescing_factor(&self) -> f64 {
        if self.fired == 0 {
            0.0
        } else {
            self.completions as f64 / self.fired as f64
        }
    }

    /// Reports one completion at `now` and decides whether to interrupt.
    pub fn on_completion(&mut self, now: SimTime) -> IrqDecision {
        self.completions += 1;
        self.pending += 1;
        let first = *self.first_pending_at.get_or_insert(now);
        if self.pending >= self.policy.max_frames || now >= first + self.policy.max_wait {
            self.fire()
        } else {
            IrqDecision::Hold {
                deadline: first + self.policy.max_wait,
            }
        }
    }

    /// Checks the timer path: called when a previously returned deadline is
    /// reached. Fires if completions are still pending and due.
    pub fn on_deadline(&mut self, now: SimTime) -> Option<IrqDecision> {
        let first = self.first_pending_at?;
        if now >= first + self.policy.max_wait {
            Some(self.fire())
        } else {
            None
        }
    }

    fn fire(&mut self) -> IrqDecision {
        let frames = self.pending;
        self.pending = 0;
        self.first_pending_at = None;
        self.fired += 1;
        IrqDecision::Fire { frames }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_policy_fires_every_time() {
        let mut c = IrqCoalescer::new(CoalescePolicy::immediate());
        for i in 0..5 {
            let d = c.on_completion(SimTime::from_micros(i));
            assert_eq!(d, IrqDecision::Fire { frames: 1 });
        }
        assert_eq!(c.interrupts_fired(), 5);
        assert_eq!(c.coalescing_factor(), 1.0);
    }

    #[test]
    fn frame_threshold_fires() {
        let mut c = IrqCoalescer::new(CoalescePolicy {
            max_frames: 3,
            max_wait: SimDuration::from_millis(1),
        });
        assert!(matches!(
            c.on_completion(SimTime::ZERO),
            IrqDecision::Hold { .. }
        ));
        assert!(matches!(
            c.on_completion(SimTime::ZERO),
            IrqDecision::Hold { .. }
        ));
        assert_eq!(
            c.on_completion(SimTime::ZERO),
            IrqDecision::Fire { frames: 3 }
        );
        assert_eq!(c.coalescing_factor(), 3.0);
    }

    #[test]
    fn wait_threshold_fires_on_late_completion() {
        let mut c = IrqCoalescer::new(CoalescePolicy {
            max_frames: 100,
            max_wait: SimDuration::from_micros(10),
        });
        c.on_completion(SimTime::ZERO);
        let d = c.on_completion(SimTime::from_micros(10));
        assert_eq!(d, IrqDecision::Fire { frames: 2 });
    }

    #[test]
    fn deadline_path_fires_pending() {
        let mut c = IrqCoalescer::new(CoalescePolicy {
            max_frames: 100,
            max_wait: SimDuration::from_micros(10),
        });
        let IrqDecision::Hold { deadline } = c.on_completion(SimTime::ZERO) else {
            panic!("expected hold");
        };
        assert_eq!(deadline, SimTime::from_micros(10));
        assert!(c.on_deadline(SimTime::from_micros(5)).is_none());
        assert_eq!(
            c.on_deadline(SimTime::from_micros(10)),
            Some(IrqDecision::Fire { frames: 1 })
        );
        // Nothing pending anymore.
        assert!(c.on_deadline(SimTime::from_micros(20)).is_none());
    }

    #[test]
    fn hold_deadline_is_anchored_to_first_completion() {
        let mut c = IrqCoalescer::new(CoalescePolicy {
            max_frames: 100,
            max_wait: SimDuration::from_micros(10),
        });
        c.on_completion(SimTime::ZERO);
        let d = c.on_completion(SimTime::from_micros(5));
        assert_eq!(
            d,
            IrqDecision::Hold {
                deadline: SimTime::from_micros(10)
            }
        );
    }

    #[test]
    #[should_panic(expected = "max_frames")]
    fn zero_frames_panics() {
        IrqCoalescer::new(CoalescePolicy {
            max_frames: 0,
            max_wait: SimDuration::ZERO,
        });
    }
}
