//! Host memory system: address-space layout and access-cost model.
//!
//! Workload models need real addresses so that the L2 [`Cache`] sees
//! realistic conflict behaviour. [`AddressSpace`] is a bump allocator that
//! hands out named regions (kernel socket buffers, user buffers, MPEG frame
//! buffers, …). [`MemorySystem`] combines the cache with L2/DRAM latencies
//! and turns buffer touches into both time costs and miss counts — the
//! "memory pressure" the paper's offloading argument is about.

use crate::cache::{AccessKind, Cache, CacheConfig};
use hydra_sim::time::SimDuration;

/// A contiguous range of simulated physical addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    base: u64,
    len: usize,
}

impl Region {
    /// First byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length region.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of byte `offset` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn at(&self, offset: usize) -> u64 {
        assert!(offset < self.len, "Region::at: offset out of bounds");
        self.base + offset as u64
    }

    /// A sub-range `[offset, offset + len)` of this region.
    ///
    /// # Panics
    ///
    /// Panics if the sub-range exceeds the region.
    pub fn slice(&self, offset: usize, len: usize) -> Region {
        assert!(
            offset + len <= self.len,
            "Region::slice: sub-range out of bounds"
        );
        Region {
            base: self.base + offset as u64,
            len,
        }
    }
}

/// A bump allocator over the simulated physical address space.
///
/// # Examples
///
/// ```
/// use hydra_hw::mem::AddressSpace;
///
/// let mut a = AddressSpace::new();
/// let r1 = a.alloc("skb", 1500);
/// let r2 = a.alloc("user-buf", 4096);
/// assert!(r2.base() >= r1.base() + 1500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: u64,
    regions: Vec<(String, Region)>,
}

/// Alignment applied to every allocation (one typical page).
const REGION_ALIGN: u64 = 4096;

impl AddressSpace {
    /// Creates an empty address space starting at a non-zero base.
    pub fn new() -> Self {
        AddressSpace {
            // Skip page zero so that address 0 can act as a sentinel.
            next: REGION_ALIGN,
            regions: Vec::new(),
        }
    }

    /// Allocates a page-aligned region with a diagnostic name.
    pub fn alloc(&mut self, name: &str, len: usize) -> Region {
        let base = self.next;
        let span = (len as u64).div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.next += span.max(REGION_ALIGN);
        let region = Region { base, len };
        self.regions.push((name.to_owned(), region));
        region
    }

    /// All allocations in order, with their names.
    pub fn regions(&self) -> &[(String, Region)] {
        &self.regions
    }

    /// Total bytes allocated (excluding alignment padding).
    pub fn allocated_bytes(&self) -> usize {
        self.regions.iter().map(|(_, r)| r.len).sum()
    }
}

/// Latency parameters of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatency {
    /// Time to satisfy an access from L2.
    pub l2_hit: SimDuration,
    /// Additional time for a DRAM fill on L2 miss.
    pub dram: SimDuration,
}

impl MemLatency {
    /// Typical 2006-era host: ~12 ns L2, ~90 ns DRAM.
    pub fn paper_host() -> Self {
        MemLatency {
            l2_hit: SimDuration::from_nanos(12),
            dram: SimDuration::from_nanos(90),
        }
    }
}

/// The host memory subsystem: L2 cache + latencies + traffic accounting.
///
/// # Examples
///
/// ```
/// use hydra_hw::cache::{AccessKind, CacheConfig};
/// use hydra_hw::mem::{AddressSpace, MemLatency, MemorySystem};
///
/// let mut space = AddressSpace::new();
/// let buf = space.alloc("buf", 4096);
/// let mut mem = MemorySystem::new(CacheConfig::paper_l2(), MemLatency::paper_host());
/// let cost = mem.touch(buf, AccessKind::Read);
/// assert!(cost.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cache: Cache,
    latency: MemLatency,
    bytes_touched: u64,
}

impl MemorySystem {
    /// Creates a memory system with an empty cache.
    pub fn new(cache: CacheConfig, latency: MemLatency) -> Self {
        MemorySystem {
            cache: Cache::new(cache),
            latency,
            bytes_touched: 0,
        }
    }

    /// The underlying cache model.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Exclusive access to the underlying cache model (e.g. to reset stats
    /// between experiment phases).
    pub fn cache_mut(&mut self) -> &mut Cache {
        &mut self.cache
    }

    /// Total bytes moved through [`MemorySystem::touch`]/`touch_at`.
    pub fn bytes_touched(&self) -> u64 {
        self.bytes_touched
    }

    /// Touches a whole region, returning the time cost of the line fills.
    pub fn touch(&mut self, region: Region, kind: AccessKind) -> SimDuration {
        self.touch_at(region.base(), region.len(), kind)
    }

    /// Touches `[addr, addr + len)`, returning the time cost.
    ///
    /// Every covered line costs one `l2_hit`; lines that miss cost `dram`
    /// on top.
    pub fn touch_at(&mut self, addr: u64, len: usize, kind: AccessKind) -> SimDuration {
        if len == 0 {
            return SimDuration::ZERO;
        }
        self.bytes_touched += len as u64;
        let line = self.cache.config().line_bytes as u64;
        let lines = (addr + len as u64 - 1) / line - addr / line + 1;
        let misses = self.cache.touch_range(addr, len, kind);
        self.latency.l2_hit * lines + self.latency.dram * misses
    }

    /// Models a CPU copy of `len` bytes from `src` to `dst`: reads the
    /// source, writes the destination, returns the combined memory time.
    ///
    /// This is the per-copy cost that `sendfile` (one copy eliminated) and
    /// offloading (all copies eliminated) avoid.
    pub fn copy(&mut self, src: Region, dst: Region, len: usize) -> SimDuration {
        let n = len.min(src.len()).min(dst.len());
        self.touch_at(src.base(), n, AccessKind::Read)
            + self.touch_at(dst.base(), n, AccessKind::Write)
    }

    /// Models a device DMA into or out of host memory: the transfer
    /// invalidates covered cache lines (hardware coherence) but does **not**
    /// pollute the cache — this is the key asymmetry that makes offloaded
    /// I/O invisible to the host L2. Returns the number of lines
    /// invalidated.
    pub fn dma_transfer(&mut self, region: Region) -> u64 {
        self.cache.invalidate_range(region.base(), region.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(
            CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                ways: 2,
            },
            MemLatency {
                l2_hit: SimDuration::from_nanos(10),
                dram: SimDuration::from_nanos(100),
            },
        )
    }

    #[test]
    fn region_slicing() {
        let mut a = AddressSpace::new();
        let r = a.alloc("r", 1000);
        let s = r.slice(100, 50);
        assert_eq!(s.base(), r.base() + 100);
        assert_eq!(s.len(), 50);
        assert_eq!(r.at(0), r.base());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let mut a = AddressSpace::new();
        let r = a.alloc("r", 10);
        let _ = r.slice(5, 6);
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc("a", 5000);
        let r2 = a.alloc("b", 100);
        assert_eq!(r1.base() % 4096, 0);
        assert_eq!(r2.base() % 4096, 0);
        assert!(r2.base() >= r1.base() + 5000);
        assert_eq!(a.allocated_bytes(), 5100);
        assert_eq!(a.regions().len(), 2);
    }

    #[test]
    fn cold_touch_costs_dram_warm_touch_does_not() {
        let mut a = AddressSpace::new();
        let r = a.alloc("buf", 640); // 10 lines
        let mut m = mem();
        let cold = m.touch(r, AccessKind::Read);
        // 10 lines * (10 + 100) ns
        assert_eq!(cold, SimDuration::from_nanos(1100));
        let warm = m.touch(r, AccessKind::Read);
        assert_eq!(warm, SimDuration::from_nanos(100));
        assert_eq!(m.bytes_touched(), 1280);
    }

    #[test]
    fn empty_touch_is_free() {
        let mut m = mem();
        assert_eq!(m.touch_at(0, 0, AccessKind::Read), SimDuration::ZERO);
    }

    #[test]
    fn copy_touches_both_buffers() {
        let mut a = AddressSpace::new();
        let src = a.alloc("src", 1024);
        let dst = a.alloc("dst", 1024);
        let mut m = mem();
        m.copy(src, dst, 1024);
        // Both buffers resident afterwards.
        assert!(m.cache().contains(src.base()));
        assert!(m.cache().contains(dst.base()));
        assert_eq!(m.cache().stats().misses, 32);
    }

    #[test]
    fn copy_respects_shorter_buffer() {
        let mut a = AddressSpace::new();
        let src = a.alloc("src", 64);
        let dst = a.alloc("dst", 4096);
        let mut m = mem();
        m.copy(src, dst, 4096);
        // Only one line read + one line written.
        assert_eq!(m.cache().stats().misses, 2);
    }

    #[test]
    fn dma_does_not_pollute_cache() {
        let mut a = AddressSpace::new();
        let app = a.alloc("app", 1024);
        let dma_buf = a.alloc("dma", 4096);
        let mut m = mem();
        m.touch(app, AccessKind::Read);
        let resident = m.cache().resident_lines();
        m.dma_transfer(dma_buf);
        // DMA brought nothing into the cache.
        assert_eq!(m.cache().resident_lines(), resident);
        // And the app buffer still hits.
        m.cache_mut().reset_stats();
        m.touch(app, AccessKind::Read);
        assert_eq!(m.cache().stats().misses, 0);
    }

    #[test]
    fn dma_invalidates_resident_lines() {
        let mut a = AddressSpace::new();
        let buf = a.alloc("buf", 256);
        let mut m = mem();
        m.touch(buf, AccessKind::Read);
        assert_eq!(m.dma_transfer(buf), 4);
        assert!(!m.cache().contains(buf.base()));
    }

    #[test]
    fn streaming_pollutes_cache() {
        // The "simple server" effect: repeatedly copying fresh packet
        // buffers through the cache evicts the application's working set.
        let mut a = AddressSpace::new();
        let working_set = a.alloc("app", 4 * 1024);
        let mut m = mem();
        m.touch(working_set, AccessKind::Read);
        let warm_misses = m.cache().stats().misses;

        // Stream 64 kB of packet data through the 8 kB cache.
        let stream = a.alloc("stream", 64 * 1024);
        m.touch(stream, AccessKind::Read);

        m.cache_mut().reset_stats();
        m.touch(working_set, AccessKind::Read);
        let after = m.cache().stats().misses;
        assert!(
            after > warm_misses / 2,
            "streaming should have evicted the working set ({after} misses)"
        );
    }
}
