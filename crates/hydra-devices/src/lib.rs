//! # hydra-devices — programmable device models
//!
//! The simulated machines of the TiVoPC testbed: the full host model
//! (CPU + L2 memory system + OS timing + PCI bus) in [`host`], the
//! programmable 3Com-class NIC with DMA, interrupt coalescing and a
//! microsecond firmware timer in [`nic`], the GPU with hardware MPEG
//! decode and framebuffer in [`gpu`], and the "smart disk" controller
//! that exports a block device backed by an NFS-lite NAS in [`disk`] —
//! the same emulation trick the paper's authors used.
//!
//! All models follow the `hydra-hw` convention: passive accounting
//! objects with busy-until processors, driven from a `hydra-sim` event
//! loop by the scenario code in `hydra-tivo`.
//!
//! Each model optionally carries a [`hydra_sim::fault::FaultInjector`]
//! (see `install_faults` on the NIC/GPU/disk): a deterministic,
//! sim-time view of a `FaultPlan` that makes the device crash, stall,
//! drop frames, or wedge descriptor-ring slots on schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod gpu;
pub mod host;
pub mod nic;
pub mod trace;

pub use disk::{DiskError, DiskOp, DiskStats, SmartDiskModel, BLOCK_BYTES};
pub use gpu::{GpuModel, GpuStats};
pub use host::HostModel;
pub use nic::{NicCosts, NicModel, NicStats};
pub use trace::{busy_if, DeviceTracer, DEVICE_BUSY_NS, LINK_BUSY_NS};
