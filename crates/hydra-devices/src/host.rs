//! The host machine model.
//!
//! [`HostModel`] bundles the hardware the paper's host-side code paths
//! exercise: the CPU (with syscall/context-switch/interrupt costs), the
//! L2-cache-backed memory system, the OS timer model whose tick
//! quantization produces jitter, and the background load that gives an
//! idle machine its ~2.9% utilization floor. The TiVoPC server and client
//! scenarios drive it from the event loop.

use hydra_hw::bus::{Bus, BusSpec};
use hydra_hw::cache::{AccessKind, CacheConfig};
use hydra_hw::cpu::{Cpu, CpuSpec, Cycles, Reservation};
use hydra_hw::mem::{AddressSpace, MemLatency, MemorySystem, Region};
use hydra_hw::os::{BackgroundLoad, TimerModel};
use hydra_obs::Recorder;
use hydra_sim::rng::DetRng;
use hydra_sim::time::{SimDuration, SimTime};

use crate::trace::{busy_if, DeviceTracer};

/// A complete host: CPU + memory system + OS model + I/O bus.
#[derive(Debug, Clone)]
pub struct HostModel {
    /// The host processor.
    pub cpu: Cpu,
    /// L2 cache + DRAM.
    pub mem: MemorySystem,
    /// Physical address allocator for workload buffers.
    pub space: AddressSpace,
    /// The user-space timer/scheduler model.
    pub timer: TimerModel,
    /// Idle-system background activity.
    pub background: BackgroundLoad,
    /// The host's I/O bus (PCI), shared by all devices.
    pub bus: Bus,
    /// Deterministic noise source.
    pub rng: DetRng,
    tracer: Option<DeviceTracer>,
}

impl HostModel {
    /// Creates the paper's host: 2.4 GHz P4, 256 kB L2, PCI, Linux-like
    /// timing.
    pub fn paper_host(seed: u64) -> Self {
        HostModel {
            cpu: Cpu::new(CpuSpec::pentium4()),
            mem: MemorySystem::new(CacheConfig::paper_l2(), MemLatency::paper_host()),
            space: AddressSpace::new(),
            timer: TimerModel::linux_host(),
            background: BackgroundLoad::paper_idle(),
            bus: Bus::new(BusSpec::pci64()),
            rng: DetRng::new(seed),
            tracer: None,
        }
    }

    /// Couples the host to a shared flight recorder under trace pid 0
    /// (label `host`): every charged reservation then feeds the
    /// `device.busy_ns{host}` utilization counter.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.tracer = Some(DeviceTracer::new(recorder, 0));
    }

    /// Executes one kernel timer tick plus any daemon burst due, charging
    /// the CPU. Returns the reservation of the tick work.
    pub fn background_tick(&mut self, now: SimTime) -> Reservation {
        let mut work = self.cpu.spec().cycles_in(self.background.tick_cost);
        // Poisson-ish daemon bursts: probability per tick chosen so the
        // long-run rate matches `daemon_mean_interval`.
        let p = self.background.tick_period.as_secs_f64()
            / self.background.daemon_mean_interval.as_secs_f64();
        if self.rng.chance(p) {
            work += self.cpu.spec().cycles_in(self.background.daemon_cost);
            // Daemons stream through memory: even an idle 2.6-era kernel
            // sustains a steady L2 miss rate (page cache scans, kswapd,
            // journald). 64 kB walks over a 16 MB region reproduce that
            // floor — and steadily churn the 256 kB L2, coupling scheduler
            // noise to cache state like real background work.
            let addr = 0x4000_0000 + self.rng.next_below(1 << 24);
            self.mem.touch_at(addr & !0x3F, 64 * 1024, AccessKind::Read);
        }
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Charges a system call entry/exit.
    pub fn syscall(&mut self, now: SimTime) -> Reservation {
        let work = self.cpu.spec().syscall;
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Charges a context switch.
    pub fn context_switch(&mut self, now: SimTime) -> Reservation {
        let work = self.cpu.spec().context_switch;
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Charges an interrupt (dispatch + handler prologue).
    pub fn interrupt(&mut self, now: SimTime) -> Reservation {
        let work = self.cpu.spec().interrupt;
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// A CPU copy of `len` bytes between two buffers: the memory system
    /// computes the cache/DRAM time, which occupies the CPU.
    pub fn cpu_copy(&mut self, now: SimTime, src: Region, dst: Region, len: usize) -> Reservation {
        let mem_time = self.mem.copy(src, dst, len);
        // Add the ALU side of the copy loop: ~1 cycle per 8 bytes.
        let work = self.cpu.spec().cycles_in(mem_time) + Cycles::new(len as u64 / 8);
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// A batched kernel copy: one syscall entry/exit covering `copies`
    /// buffer moves (the kernel-copy provider's vectored submit), instead
    /// of a syscall per message. Returns the reservation covering the
    /// whole batch, or the bare syscall for an empty one.
    pub fn cpu_copy_batch(
        &mut self,
        now: SimTime,
        copies: &[(Region, Region, usize)],
    ) -> Reservation {
        let mut work = self.cpu.spec().syscall;
        for &(src, dst, len) in copies {
            let mem_time = self.mem.copy(src, dst, len);
            work += self.cpu.spec().cycles_in(mem_time) + Cycles::new(len as u64 / 8);
        }
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// CPU work that also touches a buffer (e.g. checksum, MPEG decode on
    /// the host): charges both the compute cycles and the memory traffic.
    pub fn compute_over(
        &mut self,
        now: SimTime,
        buf: Region,
        compute: Cycles,
        kind: AccessKind,
    ) -> Reservation {
        let mem_time = self.mem.touch(buf, kind);
        let work = compute + self.cpu.spec().cycles_in(mem_time);
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Computes when a sleeping task that asked to wake at `target`
    /// actually runs (tick quantization + scheduler noise + any CPU
    /// queueing).
    pub fn wakeup(&mut self, target: SimTime) -> SimTime {
        let woken = self.timer.wakeup(target, &mut self.rng);
        // The task still has to get the CPU.
        woken.max(self.cpu.busy_until())
    }

    /// Utilization over `[0, now]` (Tables 3/4's metric).
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// L2 miss rate since the last stats reset (Figure 10's metric).
    pub fn l2_miss_rate(&self) -> f64 {
        self.mem.cache().stats().miss_rate()
    }
}

/// Spawns the recurring background-load process on a simulator whose
/// model exposes a `HostModel` via the accessor closure.
pub fn schedule_background<M: 'static>(
    sim: &mut hydra_sim::Sim<M>,
    host_of: impl Fn(&mut M) -> &mut HostModel + 'static,
    until: SimTime,
) {
    let period = SimDuration::from_millis(1);
    sim.every(SimTime::ZERO, period, move |sim| {
        let now = sim.now();
        let host = host_of(sim.model_mut());
        host.background_tick(now);
        now < until
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_host_utilization_matches_paper_floor() {
        let mut sim = hydra_sim::Sim::new(HostModel::paper_host(7));
        let until = SimTime::from_secs(10);
        schedule_background(&mut sim, |m| m, until);
        sim.run_until(until);
        let u = sim.model().cpu_utilization(until);
        assert!((u - 0.029).abs() < 0.01, "idle utilization {u}");
    }

    #[test]
    fn cpu_copy_charges_cpu_and_cache() {
        let mut host = HostModel::paper_host(1);
        let src = host.space.alloc("src", 64 * 1024);
        let dst = host.space.alloc("dst", 64 * 1024);
        let r = host.cpu_copy(SimTime::ZERO, src, dst, 64 * 1024);
        assert!(r.end > r.start);
        assert!(host.mem.cache().stats().misses > 0);
        assert!(host.cpu.retired() > Cycles::ZERO);
    }

    #[test]
    fn batched_copy_amortizes_the_syscall() {
        let mut batched = HostModel::paper_host(1);
        let mut single = HostModel::paper_host(1);
        let copies: Vec<_> = (0..8)
            .map(|i| {
                let src = batched.space.alloc(&format!("s{i}"), 4096);
                let dst = batched.space.alloc(&format!("d{i}"), 4096);
                single.space.alloc(&format!("s{i}"), 4096);
                single.space.alloc(&format!("d{i}"), 4096);
                (src, dst, 4096usize)
            })
            .collect();
        let r = batched.cpu_copy_batch(SimTime::ZERO, &copies);
        let mut end = SimTime::ZERO;
        for &(src, dst, len) in &copies {
            single.syscall(end);
            end = single.cpu_copy(end, src, dst, len).end;
        }
        // Same copies, seven fewer syscall entries: batch finishes earlier.
        assert!(r.end < end);
    }

    #[test]
    fn host_busy_time_lands_on_the_host_label() {
        let rec = Recorder::new();
        let mut host = HostModel::paper_host(5);
        host.set_recorder(rec.clone());
        let mut busy = 0;
        let src = host.space.alloc("s", 4096);
        let dst = host.space.alloc("d", 4096);
        for r in [
            host.syscall(SimTime::ZERO),
            host.context_switch(SimTime::ZERO),
            host.interrupt(SimTime::ZERO),
            host.cpu_copy(SimTime::ZERO, src, dst, 4096),
        ] {
            busy += r.end.as_nanos() - r.start.as_nanos();
        }
        assert_eq!(
            rec.snapshot().counter(crate::trace::DEVICE_BUSY_NS, "host"),
            Some(busy)
        );
    }

    #[test]
    fn wakeup_is_late_but_monotone() {
        let mut host = HostModel::paper_host(2);
        let target = SimTime::from_millis(5);
        let w = host.wakeup(target);
        assert!(w >= target);
    }

    #[test]
    fn wakeup_waits_for_busy_cpu() {
        let mut host = HostModel::paper_host(3);
        // Saturate the CPU for 100 ms.
        let work = host.cpu.spec().cycles_in(SimDuration::from_millis(100));
        host.cpu.reserve(SimTime::ZERO, work);
        let w = host.wakeup(SimTime::from_millis(5));
        assert!(w >= SimTime::from_millis(100));
    }

    #[test]
    fn compute_over_charges_memory_traffic() {
        let mut host = HostModel::paper_host(4);
        let buf = host.space.alloc("frame", 128 * 1024);
        let r1 = host.compute_over(SimTime::ZERO, buf, Cycles::new(1_000), AccessKind::Read);
        // Warm second pass is cheaper (same compute, fewer misses)...
        let mut host2 = HostModel::paper_host(4);
        let buf2 = host2.space.alloc("frame", 128 * 1024);
        host2.mem.touch(buf2, AccessKind::Read);
        let r2 = host2.compute_over(SimTime::ZERO, buf2, Cycles::new(1_000), AccessKind::Read);
        // 128 kB doesn't fit the 256 kB L2 together with nothing else, but
        // a single sequential re-walk mostly hits.
        assert!(r2.end.duration_since(r2.start) < r1.end.duration_since(r1.start));
    }
}
