//! The "smart disk" model.
//!
//! The paper emulated a programmable disk controller with a second
//! programmable NIC exporting a block device whose blocks actually live on
//! a NAS reached over NFS (§6.1). [`SmartDiskModel`] reproduces exactly
//! that: an XScale-class controller CPU, a block API, and an NFS-lite
//! client bound to a [`NasServer`] over a private link. Offcodes hosted on
//! the controller (the playback Streamer, the File Offcode) do their work
//! here without touching the host.
//!
//! [`NasServer`]: hydra_net::nfs::NasServer

use bytes::Bytes;
use hydra_hw::cpu::{Cpu, CpuSpec, Cycles, Reservation};
use hydra_net::link::{Link, LinkSpec};
use hydra_net::nfs::{FileHandle, NasServer, NfsError, NfsRequest, NfsResponse};
use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::fault::FaultInjector;
use hydra_sim::time::{SimDuration, SimTime};

use crate::trace::{busy_if, hop_if, DeviceTracer, LINK_BUSY_NS};

/// Block size of the exported block device.
pub const BLOCK_BYTES: usize = 4096;

/// Lifetime statistics of the smart disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Blocks written through the controller.
    pub blocks_written: u64,
    /// Blocks read through the controller.
    pub blocks_read: u64,
    /// NFS round trips issued to the NAS.
    pub nfs_round_trips: u64,
    /// Operations refused because the controller crashed (injected).
    pub io_faulted: u64,
    /// Injected controller stalls absorbed.
    pub fault_stalls: u64,
}

/// Errors from the smart disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The backing NAS rejected an operation.
    Nfs(NfsError),
    /// No backing file is open.
    NotOpen,
    /// An injected fault has fail-stopped the controller.
    DeviceFailed,
}

impl From<NfsError> for DiskError {
    fn from(e: NfsError) -> Self {
        DiskError::Nfs(e)
    }
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Nfs(e) => write!(f, "nas: {e}"),
            DiskError::NotOpen => f.write_str("no backing file open"),
            DiskError::DeviceFailed => f.write_str("disk controller has fail-stopped"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A completed disk operation: when it finished and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOp {
    /// Controller-CPU reservation for the operation.
    pub controller: Reservation,
    /// Instant the data is durable on (or available from) the NAS.
    pub complete_at: SimTime,
}

/// The programmable "smart disk": block device over NFS.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_devices::disk::SmartDiskModel;
/// use hydra_net::nfs::NasServer;
/// use hydra_sim::time::SimTime;
///
/// let mut nas = NasServer::default();
/// let mut disk = SmartDiskModel::new();
/// disk.open(&mut nas, "/dvr/stream0");
/// let op = disk.write_block(SimTime::ZERO, &mut nas, 0, Bytes::from_static(b"gop")).unwrap();
/// assert!(op.complete_at > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SmartDiskModel {
    /// The controller's embedded CPU.
    pub cpu: Cpu,
    /// The private link to the NAS (one direction; round trips double it).
    pub nas_link: Link,
    backing: Option<FileHandle>,
    stats: DiskStats,
    /// Controller firmware cost per block (checksums, mapping).
    per_block: Cycles,
    tracer: Option<DeviceTracer>,
    faults: Option<FaultInjector>,
}

impl Default for SmartDiskModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SmartDiskModel {
    /// Creates a controller with a gigabit NAS path.
    pub fn new() -> Self {
        SmartDiskModel {
            cpu: Cpu::new(CpuSpec::xscale()),
            nas_link: Link::new(LinkSpec::gigabit()),
            backing: None,
            stats: DiskStats::default(),
            per_block: Cycles::new(2_000),
            tracer: None,
            faults: None,
        }
    }

    /// Couples this controller to a shared flight recorder under trace
    /// pid `device`, enabling the `*_traced` block operations.
    pub fn set_recorder(&mut self, recorder: Recorder, device: u64) {
        self.tracer = Some(DeviceTracer::new(recorder, device));
    }

    /// Installs a fault injector; block operations then fail with
    /// [`DiskError::DeviceFailed`] once a crash strikes, and stall
    /// windows busy the controller CPU before an operation's own cycles.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Whether an injected crash has fail-stopped the controller by `now`.
    pub fn is_crashed(&self, now: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed(now))
    }

    /// Fault gate shared by the block operations: refuses I/O after a
    /// crash and absorbs any active stall window.
    fn fault_gate(&mut self, now: SimTime) -> Result<(), DiskError> {
        let Some(f) = &self.faults else { return Ok(()) };
        if f.crashed(now) {
            self.stats.io_faulted += 1;
            return Err(DiskError::DeviceFailed);
        }
        let stall = f.stall_penalty(now);
        if !stall.is_zero() {
            self.stats.fault_stalls += 1;
            let wasted = self.cpu.spec().cycles_in(stall);
            let r = self.cpu.reserve(now, wasted);
            busy_if(&self.tracer, r.start, r.end);
        }
        Ok(())
    }

    /// The statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Opens (creating if needed) the backing file on the NAS.
    pub fn open(&mut self, nas: &mut NasServer, path: &str) -> FileHandle {
        let (resp, _) = nas.handle(&NfsRequest::Create {
            path: path.to_owned(),
        });
        let NfsResponse::Handle(fh) = resp else {
            unreachable!("create never fails in NFS-lite")
        };
        self.backing = Some(fh);
        fh
    }

    /// Attaches to an existing NAS file (for playback of a prior
    /// recording).
    ///
    /// # Errors
    ///
    /// Fails if the path does not exist.
    pub fn open_existing(
        &mut self,
        nas: &mut NasServer,
        path: &str,
    ) -> Result<FileHandle, DiskError> {
        let (resp, _) = nas.handle(&NfsRequest::Lookup {
            path: path.to_owned(),
        });
        match resp {
            NfsResponse::Handle(fh) => {
                self.backing = Some(fh);
                Ok(fh)
            }
            NfsResponse::Error(e) => Err(e.into()),
            _ => unreachable!("lookup returns handle or error"),
        }
    }

    fn nfs_round_trip(
        &mut self,
        start: SimTime,
        nas: &mut NasServer,
        req: &NfsRequest,
        wire_bytes: usize,
    ) -> (NfsResponse, SimTime) {
        // Request on the wire, service at the NAS, response back.
        let wire_before = self.nas_link.busy_nanos();
        let arrive = self.nas_link.transmit(start, wire_bytes.max(64));
        let (resp, service) = nas.handle(req);
        let resp_bytes = match &resp {
            NfsResponse::Data(d) => d.len() + 64,
            _ => 64,
        };
        let done = self.nas_link.transmit(arrive + service, resp_bytes);
        self.stats.nfs_round_trips += 1;
        if let Some(t) = &self.tracer {
            t.counter_add(LINK_BUSY_NS, self.nas_link.busy_nanos() - wire_before);
        }
        (resp, done)
    }

    /// Writes one block at block index `idx`.
    ///
    /// # Errors
    ///
    /// Fails if no backing file is open or the NAS rejects the write.
    pub fn write_block(
        &mut self,
        now: SimTime,
        nas: &mut NasServer,
        idx: u64,
        data: Bytes,
    ) -> Result<DiskOp, DiskError> {
        self.fault_gate(now)?;
        let fh = self.backing.ok_or(DiskError::NotOpen)?;
        let controller = self.cpu.reserve(now, self.per_block);
        busy_if(&self.tracer, controller.start, controller.end);
        let wire = data.len() + 96;
        let req = NfsRequest::Write {
            fh,
            offset: idx * BLOCK_BYTES as u64,
            data,
        };
        let (resp, complete_at) = self.nfs_round_trip(controller.end, nas, &req, wire);
        match resp {
            NfsResponse::Written(_) => {
                self.stats.blocks_written += 1;
                Ok(DiskOp {
                    controller,
                    complete_at,
                })
            }
            NfsResponse::Error(e) => Err(e.into()),
            _ => unreachable!("write returns written or error"),
        }
    }

    /// Writes `blocks` consecutive blocks starting at block index `start`
    /// as one batched operation: a single controller reservation covering
    /// the whole batch and one NFS round trip carrying the concatenated
    /// payload, instead of one reservation and one round trip per block.
    ///
    /// # Errors
    ///
    /// Fails if no backing file is open or the NAS rejects the write; an
    /// empty batch is a no-op completing at `now`.
    pub fn write_blocks(
        &mut self,
        now: SimTime,
        nas: &mut NasServer,
        start: u64,
        blocks: &[Bytes],
    ) -> Result<DiskOp, DiskError> {
        self.fault_gate(now)?;
        let fh = self.backing.ok_or(DiskError::NotOpen)?;
        if blocks.is_empty() {
            return Ok(DiskOp {
                controller: self.cpu.reserve(now, Cycles::ZERO),
                complete_at: now,
            });
        }
        let controller = self.cpu.reserve(now, self.per_block * blocks.len() as u64);
        busy_if(&self.tracer, controller.start, controller.end);
        let mut data = Vec::with_capacity(blocks.iter().map(Bytes::len).sum());
        for b in blocks {
            data.extend_from_slice(b);
        }
        let wire = data.len() + 96;
        let req = NfsRequest::Write {
            fh,
            offset: start * BLOCK_BYTES as u64,
            data: Bytes::from(data),
        };
        let (resp, complete_at) = self.nfs_round_trip(controller.end, nas, &req, wire);
        match resp {
            NfsResponse::Written(_) => {
                self.stats.blocks_written += blocks.len() as u64;
                Ok(DiskOp {
                    controller,
                    complete_at,
                })
            }
            NfsResponse::Error(e) => Err(e.into()),
            _ => unreachable!("write returns written or error"),
        }
    }

    /// Reads one block at block index `idx`.
    ///
    /// # Errors
    ///
    /// Fails if no backing file is open or the NAS rejects the read.
    pub fn read_block(
        &mut self,
        now: SimTime,
        nas: &mut NasServer,
        idx: u64,
    ) -> Result<(Bytes, DiskOp), DiskError> {
        self.fault_gate(now)?;
        let fh = self.backing.ok_or(DiskError::NotOpen)?;
        let controller = self.cpu.reserve(now, self.per_block);
        busy_if(&self.tracer, controller.start, controller.end);
        let req = NfsRequest::Read {
            fh,
            offset: idx * BLOCK_BYTES as u64,
            len: BLOCK_BYTES as u32,
        };
        let (resp, complete_at) = self.nfs_round_trip(controller.end, nas, &req, 96);
        match resp {
            NfsResponse::Data(d) => {
                self.stats.blocks_read += 1;
                Ok((
                    d,
                    DiskOp {
                        controller,
                        complete_at,
                    },
                ))
            }
            NfsResponse::Error(e) => Err(e.into()),
            _ => unreachable!("read returns data or error"),
        }
    }

    /// [`SmartDiskModel::write_block`] extending a causal chain: records
    /// a `disk.write` hop once the block is durable on the NAS.
    ///
    /// # Errors
    ///
    /// As [`SmartDiskModel::write_block`]; a failed write terminates the
    /// chain with a `disk.write_failed` drop event.
    pub fn write_block_traced(
        &mut self,
        now: SimTime,
        nas: &mut NasServer,
        idx: u64,
        data: Bytes,
        ctx: TraceCtx,
    ) -> Result<(DiskOp, TraceCtx), DiskError> {
        let bytes = data.len() as u64;
        match self.write_block(now, nas, idx, data) {
            Ok(op) => {
                let ctx = hop_if(
                    &self.tracer,
                    ctx,
                    "disk.write",
                    "nas",
                    op.complete_at,
                    bytes,
                );
                Ok((op, ctx))
            }
            Err(e) => {
                if let Some(t) = &self.tracer {
                    t.drop_event(ctx, "disk.write_failed", "nas", now, bytes);
                }
                Err(e)
            }
        }
    }

    /// [`SmartDiskModel::read_block`] extending a causal chain: records a
    /// `disk.read` hop once the data is back from the NAS.
    ///
    /// # Errors
    ///
    /// As [`SmartDiskModel::read_block`]; a failed read terminates the
    /// chain with a `disk.read_failed` drop event.
    pub fn read_block_traced(
        &mut self,
        now: SimTime,
        nas: &mut NasServer,
        idx: u64,
        ctx: TraceCtx,
    ) -> Result<(Bytes, DiskOp, TraceCtx), DiskError> {
        match self.read_block(now, nas, idx) {
            Ok((data, op)) => {
                let bytes = data.len() as u64;
                let ctx = hop_if(&self.tracer, ctx, "disk.read", "nas", op.complete_at, bytes);
                Ok((data, op, ctx))
            }
            Err(e) => {
                if let Some(t) = &self.tracer {
                    t.drop_event(ctx, "disk.read_failed", "nas", now, 0);
                }
                Err(e)
            }
        }
    }

    /// Runs Offcode work on the controller CPU (e.g. the playback
    /// Streamer's pacing loop).
    pub fn offcode_work(&mut self, now: SimTime, work: Cycles) -> Reservation {
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Size of the backing file, if open.
    pub fn backing_size(&self, nas: &NasServer) -> Option<u64> {
        self.backing.and_then(|fh| nas.file_size(fh))
    }

    /// Typical per-block end-to-end latency (controller + NAS round trip),
    /// useful for pacing decisions.
    pub fn nominal_block_latency(&self) -> SimDuration {
        SimDuration::from_micros(200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.open(&mut nas, "/dvr/s0");
        let payload = Bytes::from(vec![7u8; BLOCK_BYTES]);
        let w = disk
            .write_block(SimTime::ZERO, &mut nas, 3, payload.clone())
            .unwrap();
        let (data, r) = disk.read_block(w.complete_at, &mut nas, 3).unwrap();
        assert_eq!(data, payload);
        assert!(r.complete_at > w.complete_at);
        assert_eq!(disk.stats().blocks_written, 1);
        assert_eq!(disk.stats().blocks_read, 1);
        assert_eq!(disk.stats().nfs_round_trips, 2);
    }

    #[test]
    fn batched_write_is_one_round_trip_and_reads_back() {
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.open(&mut nas, "/dvr/batched");
        let blocks: Vec<Bytes> = (0..4u8)
            .map(|i| Bytes::from(vec![i; BLOCK_BYTES]))
            .collect();
        let op = disk
            .write_blocks(SimTime::ZERO, &mut nas, 2, &blocks)
            .unwrap();
        assert_eq!(disk.stats().blocks_written, 4);
        assert_eq!(
            disk.stats().nfs_round_trips,
            1,
            "single doorbell to the NAS"
        );
        for (i, want) in blocks.iter().enumerate() {
            let (data, _) = disk
                .read_block(op.complete_at, &mut nas, 2 + i as u64)
                .unwrap();
            assert_eq!(&data, want);
        }
        // A sequential disk pays one round trip per block for the same data.
        let mut seq = SmartDiskModel::new();
        seq.open(&mut nas, "/dvr/seq");
        let mut last = SimTime::ZERO;
        for (i, b) in blocks.iter().enumerate() {
            last = seq
                .write_block(last, &mut nas, i as u64, b.clone())
                .unwrap()
                .complete_at;
        }
        assert_eq!(seq.stats().nfs_round_trips, 4);
        assert!(op.complete_at < last, "batched write completes earlier");
        // Empty batch: no NAS traffic, completes immediately.
        let trips_before = disk.stats().nfs_round_trips;
        let at = last + SimDuration::from_millis(1);
        let op = disk.write_blocks(at, &mut nas, 0, &[]).unwrap();
        assert_eq!(disk.stats().nfs_round_trips, trips_before);
        assert_eq!(op.complete_at, at);
    }

    #[test]
    fn unopened_disk_rejects_io() {
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        assert_eq!(
            disk.write_block(SimTime::ZERO, &mut nas, 0, Bytes::new()),
            Err(DiskError::NotOpen)
        );
        assert!(matches!(
            disk.read_block(SimTime::ZERO, &mut nas, 0),
            Err(DiskError::NotOpen)
        ));
    }

    #[test]
    fn open_existing_finds_prior_recording() {
        let mut nas = NasServer::default();
        let mut writer = SmartDiskModel::new();
        writer.open(&mut nas, "/dvr/movie");
        writer
            .write_block(SimTime::ZERO, &mut nas, 0, Bytes::from_static(b"x"))
            .unwrap();
        let mut reader = SmartDiskModel::new();
        reader.open_existing(&mut nas, "/dvr/movie").unwrap();
        assert!(reader.backing_size(&nas).unwrap() > 0);
        assert!(matches!(
            reader.open_existing(&mut nas, "/dvr/nope"),
            Err(DiskError::Nfs(NfsError::NotFound))
        ));
    }

    #[test]
    fn controller_work_serializes_with_io() {
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.open(&mut nas, "/f");
        let r1 = disk.offcode_work(SimTime::ZERO, Cycles::new(60_000)); // 100us at 600MHz
        let op = disk
            .write_block(SimTime::ZERO, &mut nas, 0, Bytes::from_static(b"y"))
            .unwrap();
        assert!(op.controller.start >= r1.end);
    }

    #[test]
    fn traced_write_and_read_extend_the_chain() {
        let rec = Recorder::new();
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.set_recorder(rec.clone(), 2);
        disk.open(&mut nas, "/dvr/s0");
        let ctx = rec.trace_begin("channel.send", "", 0, SimTime::ZERO, BLOCK_BYTES as u64);
        let (op, ctx) = disk
            .write_block_traced(
                SimTime::ZERO,
                &mut nas,
                0,
                Bytes::from(vec![1u8; BLOCK_BYTES]),
                ctx,
            )
            .unwrap();
        let (_, _, _ctx) = disk
            .read_block_traced(op.complete_at, &mut nas, 0, ctx)
            .unwrap();
        let snap = rec.snapshot();
        let hops = snap.events_kind("hop");
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].name, "disk.write");
        assert_eq!(hops[1].name, "disk.read");
        assert_eq!(hops[1].parent, Some(hops[0].id));
        assert!(hops.iter().all(|h| h.device == 2));
    }

    #[test]
    fn failed_traced_write_drops_the_chain() {
        let rec = Recorder::new();
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new(); // never opened
        disk.set_recorder(rec.clone(), 2);
        let ctx = rec.trace_begin("channel.send", "", 0, SimTime::ZERO, 4);
        assert!(disk
            .write_block_traced(SimTime::ZERO, &mut nas, 0, Bytes::from_static(b"xyzw"), ctx)
            .is_err());
        let snap = rec.snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].name, "disk.write_failed");
    }

    #[test]
    fn crashed_controller_refuses_io_and_stall_delays_it() {
        use hydra_sim::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new(11)
            .with_event(
                SimTime::from_micros(10),
                2,
                FaultKind::Stall {
                    duration: SimDuration::from_micros(50),
                },
            )
            .with_event(SimTime::from_millis(1), 2, FaultKind::Crash);
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.install_faults(plan.injector(2));
        disk.open(&mut nas, "/dvr/faulty");
        let payload = Bytes::from(vec![1u8; BLOCK_BYTES]);
        // Inside the stall window: the controller absorbs the remaining
        // window before the block's own cycles.
        let op = disk
            .write_block(SimTime::from_micros(10), &mut nas, 0, payload.clone())
            .unwrap();
        assert!(op.controller.start >= SimTime::from_micros(60));
        assert_eq!(disk.stats().fault_stalls, 1);
        // After the crash: every operation is refused, forever.
        assert_eq!(
            disk.write_block(SimTime::from_millis(1), &mut nas, 1, payload),
            Err(DiskError::DeviceFailed)
        );
        assert!(matches!(
            disk.read_block(SimTime::from_secs(1), &mut nas, 0),
            Err(DiskError::DeviceFailed)
        ));
        assert!(matches!(
            disk.write_blocks(SimTime::from_secs(1), &mut nas, 0, &[]),
            Err(DiskError::DeviceFailed)
        ));
        assert!(disk.is_crashed(SimTime::from_millis(1)));
        assert_eq!(disk.stats().io_faulted, 3);
    }

    #[test]
    fn busy_time_covers_controller_and_nas_wire() {
        let rec = Recorder::new();
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.set_recorder(rec.clone(), 2);
        disk.open(&mut nas, "/dvr/busy");
        let w = disk
            .write_block(
                SimTime::ZERO,
                &mut nas,
                0,
                Bytes::from(vec![9u8; BLOCK_BYTES]),
            )
            .unwrap();
        let (_, r) = disk.read_block(w.complete_at, &mut nas, 0).unwrap();
        let work = disk.offcode_work(r.complete_at, Cycles::new(6_000));
        let controller_ns = (w.controller.end.as_nanos() - w.controller.start.as_nanos())
            + (r.controller.end.as_nanos() - r.controller.start.as_nanos())
            + (work.end.as_nanos() - work.start.as_nanos());
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(crate::trace::DEVICE_BUSY_NS, "device-2"),
            Some(controller_ns)
        );
        assert_eq!(
            snap.counter(LINK_BUSY_NS, "device-2"),
            Some(disk.nas_link.busy_nanos()),
            "wire occupancy mirrors the link's own accounting"
        );
        assert!(disk.nas_link.busy_nanos() > 0);
    }

    #[test]
    fn reads_of_sparse_blocks_return_short_data() {
        let mut nas = NasServer::default();
        let mut disk = SmartDiskModel::new();
        disk.open(&mut nas, "/f");
        let (data, _) = disk.read_block(SimTime::ZERO, &mut nas, 9).unwrap();
        assert!(data.is_empty());
    }
}
