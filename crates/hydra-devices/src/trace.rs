//! Device-side causal tracing.
//!
//! A [`DeviceTracer`] couples a shared [`Recorder`] with the device's
//! trace "pid", so device models can extend the causal chain a channel
//! message carries ([`hydra_obs::TraceCtx`]) with *hop* events for their
//! own datapath stages: NIC firmware work, DMA descriptor-ring
//! transfers, GPU decode, disk block I/O. The tracer is optional on
//! every model — untraced call sites behave exactly as before.

use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::time::{SimDuration, SimTime};

/// The canonical busy-time counter every device model feeds: windowed
/// deltas of `device.busy_ns{<device label>}` divided by the window
/// width are the per-device utilization timeline.
pub const DEVICE_BUSY_NS: &str = "device.busy_ns";

/// Wire-occupancy counter for links owned by a device (e.g. the smart
/// disk's private NAS path): serialization nanoseconds clocked onto the
/// wire, labeled with the owning device's label.
pub const LINK_BUSY_NS: &str = "link.busy_ns";

/// A device model's handle into the shared flight recorder.
#[derive(Debug, Clone)]
pub struct DeviceTracer {
    recorder: Recorder,
    pid: u64,
}

impl DeviceTracer {
    /// Couples a recorder with this device's trace pid (its
    /// `DeviceId.0`; 0 is the host).
    pub fn new(recorder: Recorder, pid: u64) -> Self {
        DeviceTracer { recorder, pid }
    }

    /// The device's trace pid.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// The device's metric label: `host` for pid 0, else `device-N` —
    /// the same names the Chrome trace export gives the process rows,
    /// so Perfetto counter tracks attach to the right process.
    pub fn device_label(&self) -> String {
        if self.pid == 0 {
            "host".to_owned()
        } else {
            format!("device-{}", self.pid)
        }
    }

    /// Charges `dur` of busy time to this device's
    /// [`DEVICE_BUSY_NS`] utilization counter.
    pub fn busy(&self, dur: SimDuration) {
        self.counter_add(DEVICE_BUSY_NS, dur.as_nanos());
    }

    /// Adds to a counter labeled with this device's label.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.recorder.counter_add(name, &self.device_label(), delta);
    }

    /// Sets an instantaneous level track (queue depth, ring occupancy)
    /// labeled with this device's label.
    pub fn level_set(&self, name: &'static str, value: u64) {
        self.recorder.level_set(name, &self.device_label(), value);
    }

    /// Records a datapath *hop* on this device, returning the advanced
    /// context.
    pub fn hop(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        self.recorder
            .trace_hop(ctx, name, label, self.pid, at, bytes)
    }

    /// Terminates a chain with a *drop* event on this device (payload
    /// lost inside the device datapath).
    pub fn drop_event(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        at: SimTime,
        bytes: u64,
    ) {
        self.recorder
            .trace_drop(ctx, name, label, self.pid, at, bytes);
    }
}

/// Charges the busy span `start..end` to an optional tracer's
/// [`DEVICE_BUSY_NS`] counter: a `None` tracer is a no-op, so models can
/// account utilization unconditionally.
pub fn busy_if(tracer: &Option<DeviceTracer>, start: SimTime, end: SimTime) {
    if let Some(t) = tracer {
        t.busy(end.saturating_duration_since(start));
    }
}

/// Advances `ctx` through an optional tracer: a `None` tracer is a
/// no-op, so models can thread contexts unconditionally.
pub fn hop_if(
    tracer: &Option<DeviceTracer>,
    ctx: TraceCtx,
    name: &'static str,
    label: &str,
    at: SimTime,
    bytes: u64,
) -> TraceCtx {
    match tracer {
        Some(t) => t.hop(ctx, name, label, at, bytes),
        None => ctx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_if_without_tracer_is_identity() {
        let rec = Recorder::new();
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 1);
        let out = hop_if(&None, ctx, "hop", "", SimTime::ZERO, 1);
        assert_eq!(out, ctx);
        assert_eq!(rec.snapshot().events.len(), 1);
    }

    #[test]
    fn hop_records_on_device_pid() {
        let rec = Recorder::new();
        let tracer = DeviceTracer::new(rec.clone(), 3);
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 8);
        let out = tracer.hop(ctx, "nic.rx", "wire", SimTime::from_micros(1), 8);
        assert_ne!(out.parent, ctx.parent);
        let snap = rec.snapshot();
        let hops = snap.events_kind("hop");
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].device, 3);
        assert_eq!(hops[0].label, "wire");
    }

    #[test]
    fn busy_time_lands_on_the_device_label() {
        let rec = Recorder::new();
        let tracer = DeviceTracer::new(rec.clone(), 3);
        tracer.busy(SimDuration::from_micros(5));
        busy_if(
            &Some(tracer.clone()),
            SimTime::from_micros(10),
            SimTime::from_micros(12),
        );
        busy_if(&None, SimTime::ZERO, SimTime::from_micros(99));
        tracer.level_set("device.ring_depth", 7);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(DEVICE_BUSY_NS, "device-3"), Some(7_000));
        rec.sample_window(SimTime::from_micros(20));
        let snap = rec.snapshot();
        assert_eq!(
            snap.windows[0].level("device.ring_depth", "device-3"),
            Some(7)
        );
    }

    #[test]
    fn drop_event_terminates_chain() {
        let rec = Recorder::new();
        let tracer = DeviceTracer::new(rec.clone(), 2);
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 8);
        tracer.drop_event(ctx, "disk.lost", "", SimTime::from_micros(2), 8);
        let snap = rec.snapshot();
        assert_eq!(snap.events_kind("drop").len(), 1);
        assert_eq!(snap.events_kind("drop")[0].device, 2);
    }
}
