//! Device-side causal tracing.
//!
//! A [`DeviceTracer`] couples a shared [`Recorder`] with the device's
//! trace "pid", so device models can extend the causal chain a channel
//! message carries ([`hydra_obs::TraceCtx`]) with *hop* events for their
//! own datapath stages: NIC firmware work, DMA descriptor-ring
//! transfers, GPU decode, disk block I/O. The tracer is optional on
//! every model — untraced call sites behave exactly as before.

use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::time::SimTime;

/// A device model's handle into the shared flight recorder.
#[derive(Debug, Clone)]
pub struct DeviceTracer {
    recorder: Recorder,
    pid: u64,
}

impl DeviceTracer {
    /// Couples a recorder with this device's trace pid (its
    /// `DeviceId.0`; 0 is the host).
    pub fn new(recorder: Recorder, pid: u64) -> Self {
        DeviceTracer { recorder, pid }
    }

    /// The device's trace pid.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Records a datapath *hop* on this device, returning the advanced
    /// context.
    pub fn hop(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        at: SimTime,
        bytes: u64,
    ) -> TraceCtx {
        self.recorder
            .trace_hop(ctx, name, label, self.pid, at, bytes)
    }

    /// Terminates a chain with a *drop* event on this device (payload
    /// lost inside the device datapath).
    pub fn drop_event(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        label: &str,
        at: SimTime,
        bytes: u64,
    ) {
        self.recorder
            .trace_drop(ctx, name, label, self.pid, at, bytes);
    }
}

/// Advances `ctx` through an optional tracer: a `None` tracer is a
/// no-op, so models can thread contexts unconditionally.
pub fn hop_if(
    tracer: &Option<DeviceTracer>,
    ctx: TraceCtx,
    name: &'static str,
    label: &str,
    at: SimTime,
    bytes: u64,
) -> TraceCtx {
    match tracer {
        Some(t) => t.hop(ctx, name, label, at, bytes),
        None => ctx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_if_without_tracer_is_identity() {
        let rec = Recorder::new();
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 1);
        let out = hop_if(&None, ctx, "hop", "", SimTime::ZERO, 1);
        assert_eq!(out, ctx);
        assert_eq!(rec.snapshot().events.len(), 1);
    }

    #[test]
    fn hop_records_on_device_pid() {
        let rec = Recorder::new();
        let tracer = DeviceTracer::new(rec.clone(), 3);
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 8);
        let out = tracer.hop(ctx, "nic.rx", "wire", SimTime::from_micros(1), 8);
        assert_ne!(out.parent, ctx.parent);
        let snap = rec.snapshot();
        let hops = snap.events_kind("hop");
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].device, 3);
        assert_eq!(hops[0].label, "wire");
    }

    #[test]
    fn drop_event_terminates_chain() {
        let rec = Recorder::new();
        let tracer = DeviceTracer::new(rec.clone(), 2);
        let ctx = rec.trace_begin("send", "", 0, SimTime::ZERO, 8);
        tracer.drop_event(ctx, "disk.lost", "", SimTime::from_micros(2), 8);
        let snap = rec.snapshot();
        assert_eq!(snap.events_kind("drop").len(), 1);
        assert_eq!(snap.events_kind("drop")[0].device, 2);
    }
}
