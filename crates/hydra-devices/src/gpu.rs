//! The GPU model.
//!
//! A graphics adapter with dedicated MPEG decode hardware and an on-board
//! framebuffer. In the offloaded TiVoPC the Decoder Offcode runs here:
//! encoded frames arrive over the bus, the decode engine reconstructs
//! them, and the result lands directly in the framebuffer "without
//! involving the host CPU at all" (paper §1.1). In the user-space client
//! the host decodes in software and must *blit* each raw frame across the
//! bus instead.

use hydra_hw::cpu::{Cpu, CpuSpec, Reservation};
use hydra_media::codec::EncodedFrame;
use hydra_media::cost::DecodeCostModel;
use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::fault::FaultInjector;
use hydra_sim::time::SimTime;

use crate::trace::{busy_if, hop_if, DeviceTracer};

/// Lifetime statistics of a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GpuStats {
    /// Frames decoded by the on-board engine.
    pub frames_decoded: u64,
    /// Raw frames blitted in from the host.
    pub frames_blitted: u64,
    /// Frames scanned out to the display.
    pub frames_displayed: u64,
    /// Frames refused because of injected faults.
    pub frames_faulted: u64,
    /// Injected decode-engine stalls absorbed.
    pub fault_stalls: u64,
}

/// A GPU with hardware MPEG decode and a framebuffer.
///
/// # Examples
///
/// ```
/// use hydra_devices::gpu::GpuModel;
/// let gpu = GpuModel::new();
/// assert_eq!(gpu.stats().frames_decoded, 0);
/// ```
#[derive(Debug, Clone)]
pub struct GpuModel {
    /// The GPU's command/decode processor.
    pub cpu: Cpu,
    decode_model: DecodeCostModel,
    stats: GpuStats,
    /// Display index of the frame currently scanned out.
    current_frame: Option<u64>,
    tracer: Option<DeviceTracer>,
    faults: Option<FaultInjector>,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::new()
    }
}

impl GpuModel {
    /// Creates a GPU with the hardware decode cost model.
    pub fn new() -> Self {
        GpuModel {
            cpu: Cpu::new(CpuSpec::gpu_core()),
            decode_model: DecodeCostModel::gpu_hardware(),
            stats: GpuStats::default(),
            current_frame: None,
            tracer: None,
            faults: None,
        }
    }

    /// Couples this GPU to a shared flight recorder under trace pid
    /// `device`, enabling [`GpuModel::hw_decode_traced`].
    pub fn set_recorder(&mut self, recorder: Recorder, device: u64) {
        self.tracer = Some(DeviceTracer::new(recorder, device));
    }

    /// Installs a fault injector; [`GpuModel::hw_decode_faulted`] then
    /// consults it on every frame.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Whether an injected crash has fail-stopped the GPU by `now`.
    pub fn is_crashed(&self, now: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed(now))
    }

    /// The statistics.
    pub fn stats(&self) -> GpuStats {
        self.stats
    }

    /// Decodes an encoded frame on the hardware engine, writing straight
    /// to the framebuffer. Returns the engine reservation.
    pub fn hw_decode(&mut self, now: SimTime, frame: &EncodedFrame) -> Reservation {
        let cycles = self.decode_model.cycles(frame);
        self.stats.frames_decoded += 1;
        let r = self.cpu.reserve(now, hydra_hw::cpu::Cycles::new(cycles));
        busy_if(&self.tracer, r.start, r.end);
        self.current_frame = Some(frame.display_index);
        r
    }

    /// Fault-aware decode: like [`GpuModel::hw_decode`] but consults the
    /// installed [`FaultInjector`] first. Returns `None` when the GPU has
    /// crashed (the frame is refused); an active stall window busies the
    /// decode engine for the remaining window before the frame's cycles.
    pub fn hw_decode_faulted(&mut self, now: SimTime, frame: &EncodedFrame) -> Option<Reservation> {
        if let Some(f) = &self.faults {
            if f.crashed(now) {
                self.stats.frames_faulted += 1;
                return None;
            }
            let stall = f.stall_penalty(now);
            if !stall.is_zero() {
                self.stats.fault_stalls += 1;
                let wasted = self.cpu.spec().cycles_in(stall);
                let wasted_r = self.cpu.reserve(now, wasted);
                busy_if(&self.tracer, wasted_r.start, wasted_r.end);
            }
        }
        Some(self.hw_decode(now, frame))
    }

    /// Accepts a raw frame blitted from the host (the bus transfer is the
    /// caller's business; this charges the framebuffer write).
    pub fn blit_raw(&mut self, now: SimTime, display_index: u64, raw_bytes: usize) -> Reservation {
        self.stats.frames_blitted += 1;
        self.current_frame = Some(display_index);
        // Framebuffer writes: ~1 cycle per 16 bytes on the GPU side.
        let work = hydra_hw::cpu::Cycles::new(raw_bytes as u64 / 16);
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// [`GpuModel::hw_decode`] extending a causal chain: records a
    /// `gpu.decode` hop when the decode engine finishes the frame.
    pub fn hw_decode_traced(
        &mut self,
        now: SimTime,
        frame: &EncodedFrame,
        ctx: TraceCtx,
    ) -> (Reservation, TraceCtx) {
        let bytes = frame.data.len() as u64;
        let r = self.hw_decode(now, frame);
        let ctx = hop_if(&self.tracer, ctx, "gpu.decode", "hw-mpeg", r.end, bytes);
        (r, ctx)
    }

    /// Scans out the current frame (vsync). Returns its display index.
    pub fn display(&mut self) -> Option<u64> {
        if self.current_frame.is_some() {
            self.stats.frames_displayed += 1;
        }
        self.current_frame
    }

    /// Raw size of a decoded frame in bytes (one luma plane).
    pub fn raw_frame_bytes(frame: &EncodedFrame) -> usize {
        frame.width as usize * frame.height as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_media::codec::{CodecConfig, Encoder, GopConfig};
    use hydra_media::frame::SyntheticVideo;

    fn frames() -> Vec<EncodedFrame> {
        let video = SyntheticVideo::new(64, 48);
        let raw: Vec<_> = (0..4).map(|i| video.frame(i)).collect();
        Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&raw)
    }

    #[test]
    fn hw_decode_is_fast_and_counts() {
        let mut gpu = GpuModel::new();
        for f in &frames() {
            let r = gpu.hw_decode(SimTime::ZERO, f);
            assert!(r.end > r.start);
        }
        assert_eq!(gpu.stats().frames_decoded, 4);
        assert_eq!(gpu.display(), Some(3));
        assert_eq!(gpu.stats().frames_displayed, 1);
    }

    #[test]
    fn blit_path_counts_separately() {
        let mut gpu = GpuModel::new();
        let f = &frames()[0];
        gpu.blit_raw(SimTime::ZERO, 0, GpuModel::raw_frame_bytes(f));
        assert_eq!(gpu.stats().frames_blitted, 1);
        assert_eq!(gpu.stats().frames_decoded, 0);
        assert_eq!(gpu.display(), Some(0));
    }

    #[test]
    fn traced_decode_extends_the_chain_on_gpu_pid() {
        let rec = Recorder::new();
        let mut gpu = GpuModel::new();
        gpu.set_recorder(rec.clone(), 3);
        let f = &frames()[0];
        let ctx = rec.trace_begin("channel.send", "", 0, SimTime::ZERO, f.data.len() as u64);
        let (r, _ctx) = gpu.hw_decode_traced(SimTime::ZERO, f, ctx);
        assert!(r.end > r.start);
        let snap = rec.snapshot();
        let hops = snap.events_kind("hop");
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].name, "gpu.decode");
        assert_eq!(hops[0].device, 3);
        assert_eq!(hops[0].at_nanos, r.end.as_nanos());
    }

    #[test]
    fn decode_busy_time_matches_reservations() {
        let rec = Recorder::new();
        let mut gpu = GpuModel::new();
        gpu.set_recorder(rec.clone(), 3);
        let mut busy = 0;
        let mut at = SimTime::ZERO;
        for f in &frames() {
            let r = gpu.hw_decode(at, f);
            busy += r.end.as_nanos() - r.start.as_nanos();
            at = r.end;
        }
        assert_eq!(
            rec.snapshot()
                .counter(crate::trace::DEVICE_BUSY_NS, "device-3"),
            Some(busy)
        );
    }

    #[test]
    fn faulted_decode_refuses_after_crash_and_stalls_before() {
        use hydra_sim::fault::{FaultKind, FaultPlan};
        use hydra_sim::time::SimDuration;
        let plan = FaultPlan::new(4)
            .with_event(
                SimTime::from_micros(5),
                3,
                FaultKind::Stall {
                    duration: SimDuration::from_micros(30),
                },
            )
            .with_event(SimTime::from_millis(1), 3, FaultKind::Crash);
        let mut gpu = GpuModel::new();
        gpu.install_faults(plan.injector(3));
        let f = &frames()[0];
        let clean = gpu.hw_decode_faulted(SimTime::ZERO, f).unwrap();
        assert!(clean.end > clean.start);
        let stalled = gpu.hw_decode_faulted(SimTime::from_micros(5), f).unwrap();
        assert!(stalled.end >= SimTime::from_micros(35));
        assert_eq!(gpu.stats().fault_stalls, 1);
        assert!(gpu.hw_decode_faulted(SimTime::from_millis(1), f).is_none());
        assert!(gpu.is_crashed(SimTime::from_millis(1)));
        assert_eq!(gpu.stats().frames_faulted, 1);
        assert_eq!(gpu.stats().frames_decoded, 2);
    }

    #[test]
    fn empty_gpu_displays_nothing() {
        let mut gpu = GpuModel::new();
        assert_eq!(gpu.display(), None);
        assert_eq!(gpu.stats().frames_displayed, 0);
    }

    #[test]
    fn hw_decode_cheaper_than_host_software_decode() {
        let f = &frames()[0];
        let hw =
            DecodeCostModel::gpu_hardware().cycles(f) as f64 / CpuSpec::gpu_core().freq_hz as f64;
        let sw = DecodeCostModel::software().cycles(f) as f64 / CpuSpec::pentium4().freq_hz as f64;
        assert!(sw > 3.0 * hw, "sw {sw}s vs hw {hw}s");
    }
}
