//! The programmable NIC model.
//!
//! Modelled on the testbed's 3Com 3C985B: an XScale-class processor next
//! to the MAC, local SRAM, a bus-master DMA engine, and interrupt
//! coalescing toward the host. The NIC can host Offcodes — that is the
//! whole point — and the model exposes both the *conventional* path
//! (frame → DMA to host ring → interrupt) and the *offloaded* path
//! (frame → local Offcode work → forward over the bus to a peer device or
//! the wire, host untouched).

use hydra_hw::bus::{Bus, BusXfer};
use hydra_hw::cpu::{Cpu, CpuSpec, Cycles, Reservation};
use hydra_hw::dma::{DmaDirection, DmaEngine};
use hydra_hw::irq::{CoalescePolicy, IrqCoalescer, IrqDecision};
use hydra_hw::mem::Region;
use hydra_hw::os::TimerModel;
use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::fault::FaultInjector;
use hydra_sim::time::SimTime;

use crate::trace::{busy_if, hop_if, DeviceTracer};

/// Fixed MAC/firmware costs of the NIC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicCosts {
    /// Firmware cycles per received frame (MAC handling, filtering).
    pub rx_frame: Cycles,
    /// Firmware cycles per transmitted frame.
    pub tx_frame: Cycles,
    /// Firmware cycles per payload byte touched by an Offcode on the NIC.
    pub offcode_per_byte: Cycles,
}

impl Default for NicCosts {
    fn default() -> Self {
        NicCosts {
            rx_frame: Cycles::new(600),
            tx_frame: Cycles::new(500),
            offcode_per_byte: Cycles::new(1),
        }
    }
}

/// Lifetime statistics of a NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NicStats {
    /// Frames received from the wire.
    pub rx_frames: u64,
    /// Frames sent to the wire.
    pub tx_frames: u64,
    /// Bytes DMA'd to/from host memory.
    pub host_dma_bytes: u64,
    /// Bytes forwarded device-to-device over the bus.
    pub peer_bytes: u64,
    /// Frames lost to injected faults (crash or loss-burst).
    pub rx_faulted: u64,
    /// Injected firmware stalls absorbed by the receive path.
    pub fault_stalls: u64,
}

/// A programmable NIC.
///
/// # Examples
///
/// ```
/// use hydra_devices::nic::NicModel;
/// use hydra_sim::time::SimTime;
///
/// let mut nic = NicModel::new_3c985b(7);
/// let done = nic.rx_process(SimTime::ZERO, 1024);
/// assert!(done.end > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct NicModel {
    /// The NIC's embedded processor.
    pub cpu: Cpu,
    /// Its DMA engine (bus master).
    pub dma: DmaEngine,
    /// Interrupt coalescing toward the host.
    pub coalescer: IrqCoalescer,
    /// Its firmware timer (microsecond-class, used by offloaded pacing
    /// loops — the source of the offloaded server's tiny jitter).
    pub timer: TimerModel,
    costs: NicCosts,
    stats: NicStats,
    rng: hydra_sim::rng::DetRng,
    tracer: Option<DeviceTracer>,
    faults: Option<FaultInjector>,
}

impl NicModel {
    /// The testbed NIC with default costs and typical coalescing.
    pub fn new_3c985b(seed: u64) -> Self {
        NicModel {
            cpu: Cpu::new(CpuSpec::xscale()),
            dma: DmaEngine::new(),
            coalescer: IrqCoalescer::new(CoalescePolicy::typical_nic()),
            timer: TimerModel::device_firmware(),
            costs: NicCosts::default(),
            stats: NicStats::default(),
            rng: hydra_sim::rng::DetRng::new(seed ^ 0x3c98_5b00),
            tracer: None,
            faults: None,
        }
    }

    /// Couples this NIC to a shared flight recorder under trace pid
    /// `device` — the `*_traced` methods then extend causal chains with
    /// firmware/DMA hop events.
    pub fn set_recorder(&mut self, recorder: Recorder, device: u64) {
        self.tracer = Some(DeviceTracer::new(recorder, device));
    }

    /// Installs a fault injector (the per-device view of a
    /// [`hydra_sim::fault::FaultPlan`]); the fault-aware entry points
    /// ([`NicModel::rx_frame`] and friends) then consult it.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Whether an injected crash has fail-stopped the NIC by `now`.
    pub fn is_crashed(&self, now: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed(now))
    }

    /// Descriptor-ring slots wedged by injected ring-exhaustion faults at
    /// `now` (zero without an injector). The channel layer subtracts this
    /// from the usable ring.
    pub fn wedged_ring_slots(&self, now: SimTime) -> usize {
        self.faults.as_ref().map_or(0, |f| f.wedged_slots(now))
    }

    /// The statistics.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Processes a received frame in firmware (MAC + filtering), returning
    /// the reservation on the NIC CPU.
    pub fn rx_process(&mut self, now: SimTime, bytes: usize) -> Reservation {
        self.stats.rx_frames += 1;
        let _ = bytes; // MAC cost is per frame; payload moves by DMA.
        let r = self.cpu.reserve(now, self.costs.rx_frame);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// Fault-aware receive: like [`NicModel::rx_process`] but consults the
    /// installed [`FaultInjector`] first. Returns `None` when the frame is
    /// lost — the NIC has crashed or a loss-burst is eating frames. An
    /// active stall window busies the firmware for the remaining window
    /// before the frame's own cycles are charged.
    pub fn rx_frame(&mut self, now: SimTime, bytes: usize) -> Option<Reservation> {
        if let Some(f) = &mut self.faults {
            if f.crashed(now) || f.drop_frame(now) {
                self.stats.rx_faulted += 1;
                return None;
            }
            let stall = f.stall_penalty(now);
            if !stall.is_zero() {
                self.stats.fault_stalls += 1;
                let wasted = self.cpu.spec().cycles_in(stall);
                let r = self.cpu.reserve(now, wasted);
                busy_if(&self.tracer, r.start, r.end);
            }
        }
        Some(self.rx_process(now, bytes))
    }

    /// Processes a frame for transmission, returning the NIC CPU
    /// reservation (the wire time is the link's business).
    pub fn tx_process(&mut self, now: SimTime, bytes: usize) -> Reservation {
        self.stats.tx_frames += 1;
        let _ = bytes;
        let r = self.cpu.reserve(now, self.costs.tx_frame);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// DMAs a payload into host memory (the conventional receive path),
    /// then reports the completion to the coalescer. Returns the bus
    /// transfer and the interrupt decision.
    pub fn dma_to_host(
        &mut self,
        now: SimTime,
        bus: &mut Bus,
        region: Region,
    ) -> (BusXfer, IrqDecision) {
        let xfer = self.dma.transfer(bus, now, region, DmaDirection::ToHost);
        self.stats.host_dma_bytes += region.len() as u64;
        let decision = self.coalescer.on_completion(xfer.end);
        (xfer, decision)
    }

    /// DMAs a batch of payloads into host memory as one vectored
    /// scatter-gather transfer: a single doorbell, one interrupt-coalescer
    /// completion for the whole batch instead of one per region.
    ///
    /// Returns `None` for an empty batch.
    pub fn dma_to_host_batch(
        &mut self,
        now: SimTime,
        bus: &mut Bus,
        regions: &[Region],
    ) -> Option<(BusXfer, IrqDecision)> {
        let xfer = self
            .dma
            .scatter_gather(bus, now, regions, DmaDirection::ToHost)?;
        self.stats.host_dma_bytes += xfer.bytes as u64;
        let decision = self.coalescer.on_completion(xfer.end);
        Some((xfer, decision))
    }

    /// DMAs a payload from host memory (the conventional transmit path).
    pub fn dma_from_host(&mut self, now: SimTime, bus: &mut Bus, region: Region) -> BusXfer {
        let xfer = self.dma.transfer(bus, now, region, DmaDirection::FromHost);
        self.stats.host_dma_bytes += region.len() as u64;
        xfer
    }

    /// Forwards a payload directly to a peer device over the bus (the
    /// offloaded path: NIC → GPU / NIC → disk without host involvement).
    /// `hops` is [`Bus::peer_to_peer_hops`] of the interconnect.
    pub fn forward_to_peer(&mut self, now: SimTime, bus: &mut Bus, bytes: usize) -> BusXfer {
        let hops = bus.peer_to_peer_hops();
        let mut xfer = bus.transfer(now, bytes);
        for _ in 1..hops {
            xfer = bus.transfer(xfer.end, bytes);
        }
        self.stats.peer_bytes += bytes as u64;
        xfer
    }

    /// Runs Offcode work over a payload on the NIC CPU (e.g. the Streamer
    /// extracting MPEG payloads): per-byte firmware cost plus declared
    /// extra cycles.
    pub fn offcode_work(&mut self, now: SimTime, bytes: usize, extra: Cycles) -> Reservation {
        let work = self.costs.offcode_per_byte * bytes as u64 + extra;
        let r = self.cpu.reserve(now, work);
        busy_if(&self.tracer, r.start, r.end);
        r
    }

    /// The firmware timer's actual fire time for a target instant — the
    /// offloaded server's pacing source.
    pub fn timer_fire(&mut self, target: SimTime) -> SimTime {
        self.timer
            .wakeup(target, &mut self.rng)
            .max(self.cpu.busy_until())
    }

    /// [`NicModel::rx_process`] extending a causal chain: records a
    /// `nic.rx` hop at the reservation's end (when firmware is done with
    /// the frame). Without a recorder installed the context passes
    /// through unchanged.
    pub fn rx_process_traced(
        &mut self,
        now: SimTime,
        bytes: usize,
        ctx: TraceCtx,
    ) -> (Reservation, TraceCtx) {
        let r = self.rx_process(now, bytes);
        let ctx = hop_if(&self.tracer, ctx, "nic.rx", "firmware", r.end, bytes as u64);
        (r, ctx)
    }

    /// [`NicModel::dma_to_host`] extending a causal chain: records a
    /// `nic.dma` hop when the descriptor-ring transfer completes.
    pub fn dma_to_host_traced(
        &mut self,
        now: SimTime,
        bus: &mut Bus,
        region: Region,
        ctx: TraceCtx,
    ) -> (BusXfer, IrqDecision, TraceCtx) {
        let bytes = region.len() as u64;
        let (xfer, decision) = self.dma_to_host(now, bus, region);
        let ctx = hop_if(&self.tracer, ctx, "nic.dma", "to-host", xfer.end, bytes);
        (xfer, decision, ctx)
    }

    /// [`NicModel::dma_to_host_batch`] extending a causal chain: one
    /// `nic.dma_batch` hop for the whole vectored completion.
    pub fn dma_to_host_batch_traced(
        &mut self,
        now: SimTime,
        bus: &mut Bus,
        regions: &[Region],
        ctx: TraceCtx,
    ) -> Option<(BusXfer, IrqDecision, TraceCtx)> {
        let (xfer, decision) = self.dma_to_host_batch(now, bus, regions)?;
        let ctx = hop_if(
            &self.tracer,
            ctx,
            "nic.dma_batch",
            "to-host",
            xfer.end,
            xfer.bytes as u64,
        );
        Some((xfer, decision, ctx))
    }

    /// [`NicModel::forward_to_peer`] extending a causal chain: records a
    /// `nic.forward` hop when the last bus transaction lands at the peer.
    pub fn forward_to_peer_traced(
        &mut self,
        now: SimTime,
        bus: &mut Bus,
        bytes: usize,
        ctx: TraceCtx,
    ) -> (BusXfer, TraceCtx) {
        let xfer = self.forward_to_peer(now, bus, bytes);
        let ctx = hop_if(
            &self.tracer,
            ctx,
            "nic.forward",
            "peer",
            xfer.end,
            bytes as u64,
        );
        (xfer, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_hw::bus::BusSpec;
    use hydra_hw::mem::AddressSpace;

    #[test]
    fn rx_tx_charge_nic_cpu() {
        let mut nic = NicModel::new_3c985b(1);
        let r1 = nic.rx_process(SimTime::ZERO, 1024);
        let r2 = nic.tx_process(SimTime::ZERO, 1024);
        assert!(r2.start >= r1.end, "NIC firmware serializes");
        assert_eq!(nic.stats().rx_frames, 1);
        assert_eq!(nic.stats().tx_frames, 1);
    }

    #[test]
    fn dma_to_host_raises_coalesced_interrupts() {
        let mut nic = NicModel::new_3c985b(2);
        let mut bus = Bus::new(BusSpec::pci64());
        let mut space = AddressSpace::new();
        let buf = space.alloc("pkt", 1024);
        let mut fires = 0;
        for _ in 0..16 {
            let (_, d) = nic.dma_to_host(SimTime::ZERO, &mut bus, buf);
            if matches!(d, IrqDecision::Fire { .. }) {
                fires += 1;
            }
        }
        // Default policy: 8 frames per interrupt.
        assert_eq!(fires, 2);
        assert_eq!(nic.stats().host_dma_bytes, 16 * 1024);
    }

    #[test]
    fn batched_dma_coalesces_completions() {
        let mut batched = NicModel::new_3c985b(2);
        let mut single = NicModel::new_3c985b(2);
        let mut bus_b = Bus::new(BusSpec::pci64());
        let mut bus_s = Bus::new(BusSpec::pci64());
        let mut space = AddressSpace::new();
        let bufs: Vec<_> = (0..8)
            .map(|i| space.alloc(&format!("pkt{i}"), 1024))
            .collect();
        let (xfer, _) = batched
            .dma_to_host_batch(SimTime::ZERO, &mut bus_b, &bufs)
            .unwrap();
        assert_eq!(xfer.bytes, 8 * 1024);
        assert_eq!(batched.stats().host_dma_bytes, 8 * 1024);
        // One vectored completion vs. eight: the coalescer sees 1 event,
        // so the default fire-every-8 policy does not fire.
        assert_eq!(batched.coalescer.completions(), 1);
        for buf in &bufs {
            single.dma_to_host(SimTime::ZERO, &mut bus_s, *buf);
        }
        assert_eq!(single.coalescer.completions(), 8);
        assert!(batched
            .dma_to_host_batch(SimTime::ZERO, &mut bus_b, &[])
            .is_none());
    }

    #[test]
    fn peer_forwarding_counts_hops() {
        let mut nic = NicModel::new_3c985b(3);
        let mut pci = Bus::new(BusSpec::pci64());
        let x_pci = nic.forward_to_peer(SimTime::ZERO, &mut pci, 1024);
        let mut nic2 = NicModel::new_3c985b(3);
        let mut pcie = Bus::new(BusSpec::pcie_x4());
        let x_pcie = nic2.forward_to_peer(SimTime::ZERO, &mut pcie, 1024);
        assert_eq!(pci.transactions(), 2, "PCI needs two hops");
        assert_eq!(pcie.transactions(), 1, "PCIe peer-to-peer is one hop");
        assert!(x_pci.end > x_pcie.end);
    }

    #[test]
    fn offcode_work_scales_with_bytes() {
        let mut nic = NicModel::new_3c985b(4);
        let r_small = nic.offcode_work(SimTime::ZERO, 100, Cycles::ZERO);
        let d_small = r_small.end.duration_since(r_small.start);
        let r_big = nic.offcode_work(r_small.end, 10_000, Cycles::ZERO);
        let d_big = r_big.end.duration_since(r_big.start);
        assert!(d_big > d_small * 50);
    }

    #[test]
    fn traced_rx_and_forward_extend_the_chain() {
        let rec = Recorder::new();
        let mut nic = NicModel::new_3c985b(6);
        nic.set_recorder(rec.clone(), 1);
        let mut bus = Bus::new(BusSpec::pcie_x4());
        let ctx = rec.trace_begin("wire.frame", "", 0, SimTime::ZERO, 1024);
        let (r, ctx) = nic.rx_process_traced(SimTime::ZERO, 1024, ctx);
        let (_, _ctx) = nic.forward_to_peer_traced(r.end, &mut bus, 1024, ctx);
        let snap = rec.snapshot();
        let hops = snap.events_kind("hop");
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].name, "nic.rx");
        assert_eq!(hops[1].name, "nic.forward");
        assert_eq!(hops[1].parent, Some(hops[0].id), "chain is connected");
        assert!(hops.iter().all(|h| h.device == 1));
    }

    #[test]
    fn untraced_nic_records_nothing() {
        let rec = Recorder::new();
        let mut nic = NicModel::new_3c985b(7);
        let ctx = rec.trace_begin("wire.frame", "", 0, SimTime::ZERO, 64);
        let (_, out) = nic.rx_process_traced(SimTime::ZERO, 64, ctx);
        assert_eq!(out, ctx, "no tracer: context passes through");
        assert_eq!(rec.snapshot().events.len(), 1);
    }

    #[test]
    fn firmware_busy_time_sums_rx_tx_offcode() {
        let rec = Recorder::new();
        let mut nic = NicModel::new_3c985b(11);
        nic.set_recorder(rec.clone(), 1);
        let mut busy = 0;
        for r in [
            nic.rx_process(SimTime::ZERO, 1024),
            nic.tx_process(SimTime::ZERO, 1024),
            nic.offcode_work(SimTime::ZERO, 4096, Cycles::new(1_000)),
        ] {
            busy += r.end.as_nanos() - r.start.as_nanos();
        }
        assert_eq!(
            rec.snapshot()
                .counter(crate::trace::DEVICE_BUSY_NS, "device-1"),
            Some(busy)
        );
    }

    #[test]
    fn fault_injector_drops_and_stalls_rx() {
        use hydra_sim::fault::{FaultKind, FaultPlan};
        use hydra_sim::time::SimDuration;
        let plan = FaultPlan::new(9)
            .with_event(
                SimTime::from_micros(10),
                1,
                FaultKind::LossBurst { frames: 2 },
            )
            .with_event(
                SimTime::from_micros(50),
                1,
                FaultKind::Stall {
                    duration: SimDuration::from_micros(40),
                },
            )
            .with_event(SimTime::from_millis(1), 1, FaultKind::Crash);
        let mut nic = NicModel::new_3c985b(8);
        nic.install_faults(plan.injector(1));
        // Before any fault: frames flow.
        assert!(nic.rx_frame(SimTime::ZERO, 512).is_some());
        // The burst eats exactly two frames.
        assert!(nic.rx_frame(SimTime::from_micros(10), 512).is_none());
        assert!(nic.rx_frame(SimTime::from_micros(10), 512).is_none());
        let after_burst = nic.rx_frame(SimTime::from_micros(20), 512);
        assert!(after_burst.is_some());
        assert_eq!(nic.stats().rx_faulted, 2);
        // Inside the stall window firmware pays the remaining window
        // before the frame's own cycles.
        let stalled = nic.rx_frame(SimTime::from_micros(50), 512).unwrap();
        assert!(stalled.end >= SimTime::from_micros(90));
        assert_eq!(nic.stats().fault_stalls, 1);
        // After the crash nothing flows, ever.
        assert!(nic.is_crashed(SimTime::from_millis(1)));
        assert!(nic.rx_frame(SimTime::from_millis(1), 512).is_none());
        assert!(nic.rx_frame(SimTime::from_secs(10), 512).is_none());
    }

    #[test]
    fn faultless_nic_behaves_as_before() {
        let mut plain = NicModel::new_3c985b(1);
        let mut faulty = NicModel::new_3c985b(1);
        faulty.install_faults(FaultInjector::inert(1));
        let a = plain.rx_frame(SimTime::ZERO, 1024).unwrap();
        let b = faulty.rx_frame(SimTime::ZERO, 1024).unwrap();
        assert_eq!(a.end, b.end);
        assert_eq!(plain.wedged_ring_slots(SimTime::ZERO), 0);
    }

    #[test]
    fn firmware_timer_is_tight() {
        let mut nic = NicModel::new_3c985b(5);
        let target = SimTime::from_millis(5);
        let fire = nic.timer_fire(target);
        assert!(fire >= target);
        assert!(fire.duration_since(target) < hydra_sim::time::SimDuration::from_micros(200));
    }
}
