//! Property tests: `send_batch` is observably identical to the
//! equivalent sequence of single `send` calls.
//!
//! "Observably identical" covers delivery order and payloads, the
//! channel's stats, the recorder's counter totals (`channel.sent`,
//! `channel.received`, `channel.dropped`, `channel.rejected`,
//! `channel.bytes`) and the number of per-message trace drop events
//! under injected capacity faults. It deliberately does *not* cover
//! sim-time (batching is strictly faster — that is the point) or the
//! flight-recorder send/hop event count (amortized by design: one span
//! per batch instead of one per message).

use bytes::Bytes;
use hydra::core::channel::{
    Buffering, ChannelConfig, ChannelExecutive, Reliability, RetryPolicy, SyncPolicy, Transport,
};
use hydra::core::device::DeviceId;
use hydra::sim::time::SimTime;
use proptest::prelude::*;

fn config(reliable: bool, zero_copy: bool, capacity: usize, target: usize) -> ChannelConfig {
    ChannelConfig {
        transport: Transport::Unicast,
        reliability: if reliable {
            Reliability::Reliable
        } else {
            Reliability::Unreliable
        },
        sync: SyncPolicy::Sequential,
        buffering: if zero_copy {
            Buffering::ZeroCopy
        } else {
            Buffering::Copied
        },
        capacity,
        target: DeviceId(target as u32),
        retry: RetryPolicy::none(),
    }
}

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(vec![i as u8; i + 1])).collect()
}

/// Drives `msgs` through one channel the single-send way and through a
/// second identical channel the batched way, then returns both
/// executives for observation. Neither channel is drained.
fn drive(
    cfg: ChannelConfig,
    msgs: &[Bytes],
) -> (
    (ChannelExecutive, hydra::core::channel::ChannelId),
    (ChannelExecutive, hydra::core::channel::ChannelId),
    u64, // single-path rejected count
) {
    let mut single = ChannelExecutive::with_default_providers();
    let sid = single.create_channel(cfg).unwrap();
    let sch = single.get_mut(sid).unwrap();
    sch.connect_endpoint().unwrap();
    let mut rejected = 0u64;
    for m in msgs {
        if sch.send(SimTime::ZERO, m.clone()).is_err() {
            rejected += 1;
        }
    }

    let mut batched = ChannelExecutive::with_default_providers();
    let bid = batched.create_channel(cfg).unwrap();
    let bch = batched.get_mut(bid).unwrap();
    bch.connect_endpoint().unwrap();
    let outcome = bch.send_batch(SimTime::ZERO, msgs);
    assert_eq!(outcome.rejected, rejected as usize);

    ((single, sid), (batched, bid), rejected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Without faults: same delivery order and payloads, same stats and
    /// counter totals, and the batch completes no later than the single
    /// sequence (strictly earlier from two messages up).
    #[test]
    fn batch_matches_singles_without_faults(
        n in 1usize..=32,
        zero_copy in any::<bool>(),
        reliable in any::<bool>(),
        target in 1usize..4,
    ) {
        let cfg = config(reliable, zero_copy, 64, target);
        let msgs = payloads(n);

        let mut single = ChannelExecutive::with_default_providers();
        let sid = single.create_channel(cfg).unwrap();
        let sch = single.get_mut(sid).unwrap();
        let sep = sch.connect_endpoint().unwrap();
        let mut single_done = SimTime::ZERO;
        for m in &msgs {
            single_done = sch.send(SimTime::ZERO, m.clone()).unwrap();
        }

        let mut batched = ChannelExecutive::with_default_providers();
        let bid = batched.create_channel(cfg).unwrap();
        let bch = batched.get_mut(bid).unwrap();
        let bep = bch.connect_endpoint().unwrap();
        let outcome = bch.send_batch(SimTime::ZERO, &msgs);

        prop_assert_eq!(outcome.accepted(), n);
        prop_assert!(outcome.complete_at <= single_done);
        if n >= 2 {
            prop_assert!(outcome.complete_at < single_done, "batch amortizes the doorbell");
        }

        // Drain both; delivery order and payloads must agree.
        let late = single_done.max(outcome.complete_at);
        let got_single: Vec<Bytes> = std::iter::from_fn(|| {
            single.get_mut(sid).unwrap().recv(late, sep).map(|m| m.data)
        })
        .collect();
        let got_batched: Vec<Bytes> = batched
            .get_mut(bid)
            .unwrap()
            .recv_batch(late, bep, usize::MAX)
            .into_iter()
            .map(|m| m.data)
            .collect();
        prop_assert_eq!(&got_single, &msgs);
        prop_assert_eq!(&got_batched, &msgs);

        // Stats and counter totals agree.
        let (s, b) = (
            single.get(sid).unwrap().stats(),
            batched.get(bid).unwrap().stats(),
        );
        prop_assert_eq!(s, b);
        let ssnap = single.recorder().snapshot();
        let bsnap = batched.recorder().snapshot();
        for c in ["channel.sent", "channel.received", "channel.bytes",
                  "channel.dropped", "channel.rejected"] {
            prop_assert_eq!(ssnap.counter_total(c), bsnap.counter_total(c), "{}", c);
        }
    }

    /// With injected capacity faults (batch larger than capacity): the
    /// accepted prefix, fault counts, and per-message drop-event counts
    /// all match the sequential path.
    #[test]
    fn batch_matches_singles_under_capacity_faults(
        capacity in 1usize..=8,
        extra in 1usize..=8,
        zero_copy in any::<bool>(),
        reliable in any::<bool>(),
        target in 1usize..4,
    ) {
        let cfg = config(reliable, zero_copy, capacity, target);
        let msgs = payloads(capacity + extra);
        let ((single, sid), (batched, bid), rejected) = drive(cfg, &msgs);

        if reliable {
            prop_assert_eq!(rejected, extra as u64);
        } else {
            prop_assert_eq!(rejected, 0);
        }
        let (s, b) = (
            single.get(sid).unwrap().stats(),
            batched.get(bid).unwrap().stats(),
        );
        prop_assert_eq!(s, b);
        prop_assert_eq!(s.sent, capacity as u64);
        if !reliable {
            prop_assert_eq!(s.dropped, extra as u64);
        }

        let ssnap = single.recorder().snapshot();
        let bsnap = batched.recorder().snapshot();
        for c in ["channel.sent", "channel.bytes", "channel.dropped", "channel.rejected"] {
            prop_assert_eq!(ssnap.counter_total(c), bsnap.counter_total(c), "{}", c);
        }
        // Fault paths keep per-message accounting: the flight recorder
        // holds exactly one drop event per overflowed message, with the
        // same name either way.
        let sdrops = ssnap.events_kind("drop");
        let bdrops = bsnap.events_kind("drop");
        prop_assert_eq!(sdrops.len(), extra);
        prop_assert_eq!(bdrops.len(), extra);
        let want = if reliable { "channel.reject" } else { "channel.drop" };
        prop_assert!(sdrops.iter().chain(&bdrops).all(|d| d.name == want));
    }
}
