//! Second wave of property tests: the event engine's ordering guarantee,
//! channel FIFO, LP relaxation bounds, and layout-resolver feasibility.

use proptest::prelude::*;

use bytes::Bytes;
use hydra::core::channel::{ChannelConfig, ChannelExecutive};
use hydra::core::device::DeviceId;
use hydra::core::layout::{LayoutGraph, LayoutNode, NodeIdx, Objective};
use hydra::ilp::model::{Direction, Problem, Sense};
use hydra::ilp::{solve_ilp, solve_lp, Outcome};
use hydra::odf::odf::{ConstraintKind, Guid};
use hydra::sim::time::{SimDuration, SimTime};
use hydra::sim::Sim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- engine ordering --------------------------------------------------

    #[test]
    fn events_fire_in_time_order(delays in proptest::collection::vec(0u64..10_000, 1..64)) {
        let mut sim = Sim::new(Vec::<u64>::new());
        for &d in &delays {
            sim.schedule_at(SimTime::from_micros(d), move |s| {
                let now = s.now().as_micros();
                s.model_mut().push(now);
            });
        }
        sim.run();
        let fired = sim.into_model();
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&fired, &sorted, "events must fire in time order");
        prop_assert_eq!(fired.len(), delays.len());
    }

    #[test]
    fn run_until_never_overshoots(
        delays in proptest::collection::vec(1u64..1_000, 1..32),
        cut in 1u64..1_000,
    ) {
        let mut sim = Sim::new(0u32);
        for &d in &delays {
            sim.schedule_at(SimTime::from_micros(d), |s| *s.model_mut() += 1);
        }
        sim.run_until(SimTime::from_micros(cut));
        let expected = delays.iter().filter(|&&d| d <= cut).count() as u32;
        prop_assert_eq!(*sim.model(), expected);
        prop_assert_eq!(sim.now(), SimTime::from_micros(cut));
    }

    // ---- channel FIFO -------------------------------------------------------

    #[test]
    fn channel_delivery_is_fifo(sizes in proptest::collection::vec(1usize..2048, 1..40)) {
        let mut exec = ChannelExecutive::with_default_providers();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = sizes.len() + 1;
        let id = exec.create_channel(cfg).expect("provider available");
        let ch = exec.get_mut(id).expect("channel exists");
        let ep = ch.connect_endpoint().expect("first endpoint");
        let mut deliveries = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; n];
            payload[0] = i as u8;
            deliveries.push(ch.send(SimTime::ZERO, Bytes::from(payload)).expect("capacity ok"));
        }
        // Delivery times serialize monotonically.
        for w in deliveries.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Draining at the end returns messages in send order.
        let end = *deliveries.last().expect("non-empty");
        for (i, _) in sizes.iter().enumerate() {
            let msg = ch.recv(end, ep).expect("all delivered by the last instant");
            prop_assert_eq!(msg.data[0], i as u8);
        }
        prop_assert!(ch.recv(end, ep).is_none());
    }

    // ---- LP relaxation bounds ----------------------------------------------

    #[test]
    fn relaxation_bounds_the_ilp(seed in any::<u64>(), n in 2usize..6) {
        let mut rng = hydra::sim::rng::DetRng::new(seed);
        let mut p = Problem::new(Direction::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_binary(&format!("x{i}"))).collect();
        p.set_objective(vars.iter().map(|&v| (v, rng.normal(1.0, 2.0))).collect());
        for c in 0..2 {
            let terms: Vec<_> = vars.iter().map(|&v| (v, rng.normal(1.0, 1.0))).collect();
            p.add_constraint(&format!("c{c}"), terms, Sense::Le, 1.0 + rng.next_f64() * 3.0);
        }
        let lp = solve_lp(&p);
        let ilp = solve_ilp(&p).outcome;
        match (&lp, &ilp) {
            (Outcome::Optimal(r), Outcome::Optimal(i)) => {
                prop_assert!(
                    r.objective >= i.objective - 1e-6,
                    "relaxation {} below ILP {}",
                    r.objective,
                    i.objective
                );
            }
            (_, Outcome::Infeasible) => {} // relaxation may be feasible or not
            (Outcome::Infeasible, Outcome::Optimal(_)) => {
                prop_assert!(false, "ILP feasible but relaxation infeasible");
            }
            _ => {}
        }
    }

    // ---- layout feasibility --------------------------------------------------

    #[test]
    fn resolved_layouts_always_check(
        seed in any::<u64>(),
        n in 2usize..7,
        k in 1usize..4,
    ) {
        let mut rng = hydra::sim::rng::DetRng::new(seed);
        let mut g = LayoutGraph::new();
        for i in 0..n {
            let mut compat = vec![true];
            for _ in 0..k {
                compat.push(rng.chance(0.5));
            }
            g.add_node(LayoutNode {
                guid: Guid(i as u64 + 1),
                bind_name: format!("oc{i}"),
                compat,
                price: 1.0 + rng.index(4) as f64,
            });
        }
        for _ in 0..n {
            let a = rng.index(n);
            let b = rng.index(n);
            if a == b {
                continue;
            }
            let c = [
                ConstraintKind::Link,
                ConstraintKind::Pull,
                ConstraintKind::Gang,
                ConstraintKind::AsymGang,
            ][rng.index(4)];
            g.add_edge(NodeIdx(a), NodeIdx(b), c);
        }
        for objective in [
            Objective::MaximizeOffloading,
            Objective::MaximizeBusUsage {
                capacities: (0..=k).map(|_| 2.0 + rng.index(6) as f64).collect(),
            },
        ] {
            let exact = g.resolve_ilp(&objective).expect("host-everything is feasible");
            prop_assert!(g.check(&exact).is_ok(), "ILP placement violates graph");
            let greedy = g.resolve_greedy(&objective);
            prop_assert!(g.check(&greedy).is_ok(), "greedy placement violates graph");
            prop_assert!(
                g.bus_value(&exact) >= g.bus_value(&greedy) - 1e-9
                    || matches!(objective, Objective::MaximizeOffloading),
                "ILP worse than greedy under bus objective"
            );
        }
    }

    // ---- timer model ----------------------------------------------------------

    #[test]
    fn wakeups_never_fire_early(target_us in 1u64..100_000, seed in any::<u64>()) {
        use hydra::hw::os::TimerModel;
        let mut rng = hydra::sim::rng::DetRng::new(seed);
        let target = SimTime::from_micros(target_us);
        for m in [
            TimerModel::linux_host(),
            TimerModel::linux_kernel_path(),
            TimerModel::device_firmware(),
            TimerModel::ideal(),
        ] {
            let fire = m.wakeup(target, &mut rng);
            prop_assert!(fire >= target);
            // And never absurdly late: bound by resolution + overshoot + 6σ.
            let bound = m.resolution + m.overshoot + m.noise_std * 6 + m.spike_max
                + SimDuration::from_micros(1);
            prop_assert!(fire <= target + bound, "fire {fire} way past {target}");
        }
    }
}
