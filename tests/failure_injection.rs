//! Failure injection: the system must degrade cleanly, never corrupt
//! state or panic, under dropped packets, exhausted rings, corrupted
//! streams, stale handles, and resource-starved devices.

use bytes::Bytes;
use hydra::core::call::Call;
use hydra::core::channel::{ChannelConfig, ChannelError, Reliability};
use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra::core::error::RuntimeError;
use hydra::core::offcode::{Offcode, OffcodeCtx};
use hydra::core::runtime::{Runtime, RuntimeConfig};
use hydra::media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
use hydra::media::frame::SyntheticVideo;
use hydra::net::nfs::{FileHandle, NasServer, NfsError, NfsRequest, NfsResponse};
use hydra::odf::odf::{Guid, OdfDocument};
use hydra::sim::rng::DetRng;
use hydra::sim::time::SimTime;

#[derive(Debug)]
struct Flaky {
    fail_initialize: bool,
    fail_start: bool,
}

impl Offcode for Flaky {
    fn guid(&self) -> Guid {
        Guid(0xBAD)
    }
    fn bind_name(&self) -> &'static str {
        "test.Flaky"
    }
    fn initialize(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
        if self.fail_initialize {
            Err(RuntimeError::Rejected("init failed".into()))
        } else {
            Ok(())
        }
    }
    fn start(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
        if self.fail_start {
            Err(RuntimeError::Rejected("start failed".into()))
        } else {
            Ok(())
        }
    }
    fn handle_call(
        &mut self,
        _ctx: &mut OffcodeCtx,
        _call: &Call,
    ) -> Result<hydra::core::call::Value, RuntimeError> {
        Ok(hydra::core::call::Value::Unit)
    }
}

fn machine() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg
}

#[test]
fn failing_initialize_rolls_back_the_deployment() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.register_offcode(OdfDocument::new("test.Flaky", Guid(0xBAD)), || {
        Box::new(Flaky {
            fail_initialize: true,
            fail_start: false,
        })
    })
    .expect("registers");
    let baseline = rt.resources().len();
    let err = rt.create_offcode(Guid(0xBAD), SimTime::ZERO).unwrap_err();
    assert!(matches!(err, RuntimeError::Rejected(_)));
    assert!(rt.deployments().is_empty(), "nothing stays deployed");
    assert_eq!(rt.resources().len(), baseline, "resources rolled back");
    // The depot entry survives; a fixed factory could redeploy.
    assert_eq!(rt.lookup_bind_name("test.Flaky"), Some(Guid(0xBAD)));
}

#[test]
fn failing_start_also_rolls_back() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.register_offcode(OdfDocument::new("test.Flaky", Guid(0xBAD)), || {
        Box::new(Flaky {
            fail_initialize: false,
            fail_start: true,
        })
    })
    .expect("registers");
    assert!(rt.create_offcode(Guid(0xBAD), SimTime::ZERO).is_err());
    assert!(rt.deployments().is_empty());
}

#[test]
fn reliable_channel_backpressure_then_recovery() {
    let mut exec = hydra::core::channel::ChannelExecutive::with_default_providers();
    let mut cfg = ChannelConfig::figure3(DeviceId(1));
    cfg.capacity = 4;
    let id = exec.create_channel(cfg).expect("provider exists");
    let ch = exec.get_mut(id).expect("channel exists");
    let ep = ch.connect_endpoint().expect("endpoint");
    let mut last = SimTime::ZERO;
    for _ in 0..4 {
        last = ch
            .send(SimTime::ZERO, Bytes::from_static(b"m"))
            .expect("fits");
    }
    // Ring full: reliable channels refuse rather than drop.
    assert_eq!(
        ch.send(SimTime::ZERO, Bytes::from_static(b"m")),
        Err(ChannelError::WouldBlock)
    );
    assert_eq!(ch.stats().dropped, 0);
    // Drain one, retry succeeds — no message was lost.
    ch.recv(last, ep).expect("visible by then");
    ch.send(last, Bytes::from_static(b"m"))
        .expect("accepts again");
    assert_eq!(ch.stats().sent, 5);
}

#[test]
fn unreliable_channel_sheds_load_without_corruption() {
    let mut exec = hydra::core::channel::ChannelExecutive::with_default_providers();
    let mut cfg = ChannelConfig::figure3(DeviceId(1));
    cfg.capacity = 8;
    cfg.reliability = Reliability::Unreliable;
    let id = exec.create_channel(cfg).expect("provider exists");
    let ch = exec.get_mut(id).expect("channel exists");
    let ep = ch.connect_endpoint().expect("endpoint");
    for i in 0..100u8 {
        let _ = ch.send(SimTime::ZERO, Bytes::from(vec![i]));
    }
    assert_eq!(ch.stats().sent + ch.stats().dropped, 100);
    assert_eq!(ch.stats().dropped, 92);
    // Surviving messages are a prefix in order (head-of-ring semantics).
    let mut expected = 0u8;
    while let Some(m) = ch.recv(SimTime::from_secs(10), ep) {
        assert_eq!(m.data[0], expected);
        expected += 1;
    }
    assert_eq!(expected, 8);
}

#[test]
fn injected_ring_exhaustion_surfaces_as_trace_drops() {
    // Reliable ring full → rejection: no message lost (stats.dropped
    // stays 0) but the fault is visible as a terminated trace chain and
    // a bumped channel.rejected counter.
    let mut exec = hydra::core::channel::ChannelExecutive::with_default_providers();
    let mut cfg = ChannelConfig::figure3(DeviceId(1));
    cfg.capacity = 2;
    let id = exec.create_channel(cfg).expect("provider exists");
    let ch = exec.get_mut(id).expect("channel exists");
    ch.connect_endpoint().expect("endpoint");
    ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
    ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
    for _ in 0..3 {
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"x")),
            Err(ChannelError::WouldBlock)
        );
    }
    assert_eq!(ch.stats().dropped, 0, "reliable channels lose nothing");
    let snap = exec.recorder().snapshot();
    let drops = snap.events_kind("drop");
    assert_eq!(drops.len(), 3, "each rejection terminates its trace");
    assert!(drops.iter().all(|d| d.name == "channel.reject"));
    assert_eq!(
        snap.counter("channel.rejected", "zero-copy-dma"),
        Some(3),
        "rejections are counted per provider"
    );

    // Unreliable ring full → genuine loss: stats.dropped, the
    // channel.dropped counter, and a channel.drop trace event all agree.
    let mut cfg = ChannelConfig::figure3(DeviceId(1));
    cfg.capacity = 1;
    cfg.reliability = Reliability::Unreliable;
    let id = exec.create_channel(cfg).expect("provider exists");
    let ch = exec.get_mut(id).expect("channel exists");
    ch.connect_endpoint().expect("endpoint");
    ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
    ch.send(SimTime::ZERO, Bytes::from_static(b"lost")).unwrap();
    assert_eq!(ch.stats().dropped, 1);
    let snap = exec.recorder().snapshot();
    let lost: Vec<_> = snap
        .events_kind("drop")
        .into_iter()
        .filter(|d| d.name == "channel.drop")
        .collect();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].bytes, 4, "the lost payload's size is recorded");
    assert_eq!(snap.counter("channel.dropped", "zero-copy-dma"), Some(1));
}

#[test]
fn destroying_a_channel_terminates_in_flight_traces() {
    let mut exec = hydra::core::channel::ChannelExecutive::with_default_providers();
    let id = exec
        .create_channel(ChannelConfig::figure3(DeviceId(1)))
        .expect("provider exists");
    let ch = exec.get_mut(id).expect("channel exists");
    ch.connect_endpoint().expect("endpoint");
    ch.send(SimTime::ZERO, Bytes::from_static(b"pending"))
        .unwrap();
    assert!(exec.destroy(id));
    let snap = exec.recorder().snapshot();
    let drops = snap.events_kind("drop");
    assert_eq!(drops.len(), 1);
    assert_eq!(drops[0].name, "channel.destroyed");
    // Every minted trace terminates: no chain ends on a send/hop event.
    for send in snap.events_kind("send") {
        let chain = snap.trace_events(send.trace);
        let last = chain.last().expect("chain is non-empty");
        assert!(
            last.kind == "recv" || last.kind == "drop",
            "trace {} dangles on a {} event",
            send.trace,
            last.kind
        );
    }
}

#[test]
fn corrupted_bitstreams_error_but_never_panic() {
    let video = SyntheticVideo::new(32, 32);
    let frames: Vec<_> = (0..4).map(|i| video.frame(i)).collect();
    let stream = Encoder::new(CodecConfig {
        quantizer: 4,
        gop: GopConfig::ibbp(),
    })
    .encode_sequence(&frames);
    let mut rng = DetRng::new(99);
    for round in 0..200 {
        let mut frame = stream[rng.index(stream.len())].clone();
        let mut data = frame.data.to_vec();
        if data.is_empty() {
            continue;
        }
        match round % 3 {
            0 => {
                // Flip a byte.
                let at = rng.index(data.len());
                data[at] ^= 1 << rng.index(8);
            }
            1 => {
                // Truncate.
                data.truncate(rng.index(data.len()));
            }
            _ => {
                // Append garbage.
                data.push(rng.next_below(256) as u8);
            }
        }
        frame.data = Bytes::from(data);
        let mut dec = Decoder::new();
        // Feed the intact prefix first so references exist.
        for f in &stream {
            if f.display_index == frame.display_index && f.kind == frame.kind {
                break;
            }
            let _ = dec.push(f);
        }
        // The corrupted frame must fail cleanly or decode to *something*;
        // it must never panic or poison the decoder.
        let _ = dec.push(&frame);
        // Decoder still usable afterwards.
        let _ = dec.flush();
    }
}

#[test]
fn nas_recreate_invalidates_old_view_cleanly() {
    let mut nas = NasServer::default();
    let (r, _) = nas.handle(&NfsRequest::Create { path: "/f".into() });
    let NfsResponse::Handle(fh) = r else { panic!() };
    nas.handle(&NfsRequest::Write {
        fh,
        offset: 0,
        data: Bytes::from_static(b"old"),
    });
    // Recreate truncates but keeps the handle valid (NFS-lite semantics).
    let (r2, _) = nas.handle(&NfsRequest::Create { path: "/f".into() });
    assert_eq!(r2, NfsResponse::Handle(fh));
    let (read, _) = nas.handle(&NfsRequest::Read {
        fh,
        offset: 0,
        len: 16,
    });
    assert_eq!(read, NfsResponse::Data(Bytes::new()), "truncated");
    // A fabricated handle still errors.
    let (bad, _) = nas.handle(&NfsRequest::Read {
        fh: FileHandle(0xDEAD),
        offset: 0,
        len: 1,
    });
    assert_eq!(bad, NfsResponse::Error(NfsError::StaleHandle));
}

#[test]
fn switch_overload_drops_are_bounded_and_counted() {
    use hydra::net::link::LinkSpec;
    use hydra::net::packet::{MacAddr, Packet, Port, Protocol};
    use hydra::net::switch::{ForwardOutcome, Switch};
    let mut sw = Switch::new(LinkSpec::fast_ethernet(), 8);
    let a = sw.add_port(MacAddr(1));
    let _b = sw.add_port(MacAddr(2));
    let mut delivered = 0u32;
    for i in 0..100 {
        let pkt = Packet::new(
            MacAddr(1),
            Port(1),
            MacAddr(2),
            Port(2),
            Protocol::Udp,
            Bytes::from(vec![0u8; 1400]),
        )
        .with_seq(i);
        if matches!(
            sw.forward(SimTime::ZERO, a, &pkt),
            ForwardOutcome::Deliver { .. }
        ) {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 8, "queue capacity bounds burst acceptance");
    assert_eq!(sw.stats().dropped, 92);
    assert_eq!(sw.stats().forwarded, 8);
}

// ---------------------------------------------------------------------------
// Fault-plan injection and automatic recovery (PR 5).

/// Two runs of the same committed fault schedule must be byte-identical:
/// same recovery JSON, same metrics snapshot, same trace export. This is
/// the property the CI faults-gate diffs.
#[test]
fn fault_schedule_replay_is_deterministic() {
    use hydra::tivo::faults::{fault_demo_plan, run_fault_demo};
    let plan = fault_demo_plan();
    let (rt_a, json_a) = run_fault_demo(&plan);
    let (rt_b, json_b) = run_fault_demo(&plan);
    assert_eq!(json_a, json_b, "recovery reports diverge");
    assert_eq!(
        rt_a.metrics_snapshot().to_json(),
        rt_b.metrics_snapshot().to_json(),
        "metrics snapshots diverge"
    );
    assert_eq!(
        rt_a.trace_export(),
        rt_b.trace_export(),
        "trace exports diverge"
    );
    // The committed fixture is this plan's canonical rendering: parsing it
    // back must replay identically.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/faults/nic_crash.faults"
    ))
    .expect("fixture exists");
    let parsed = hydra::sim::fault::FaultPlan::parse(&text).expect("fixture parses");
    assert_eq!(parsed, plan, "fixture drifted from fault_demo_plan()");
    let (_, json_c) = run_fault_demo(&parsed);
    assert_eq!(json_a, json_c);
}

mod fault_plans {
    use hydra::core::call::{Call, Value};
    use hydra::core::channel::{ChannelConfig, Transport};
    use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
    use hydra::core::error::RuntimeError;
    use hydra::core::health::DeviceHealth;
    use hydra::core::offcode::{Offcode, OffcodeCtx};
    use hydra::core::runtime::{Runtime, RuntimeConfig};
    use hydra::odf::odf::{class_ids, DeviceClassSpec, Guid, OdfDocument};
    use hydra::sim::fault::{FaultKind, FaultPlan};
    use hydra::sim::time::{SimDuration, SimTime};

    fn nic_machine() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic()); // dev1
        reg
    }

    /// A transient firmware stall must round-trip the health state
    /// machine: the device misses beats inside the stall window, goes
    /// Suspect, then resumes beating and is declared Healthy again with
    /// an observable `fault.device_recovered` — never Failed, and never
    /// a recovery re-layout. (Historically `beat` snapped Suspect back to
    /// Healthy without `poll` ever seeing the edge, so the recovery
    /// counter stayed at zero forever.)
    #[test]
    fn stall_then_recover_emits_recovery_not_failure() {
        let mut rt = Runtime::new(nic_machine(), RuntimeConfig::default());
        // Stall window [2ms, 3.5ms + jitter≤187us): the 2ms and 3ms beats
        // are lost, the 4ms beat lands.
        let plan = FaultPlan::new(7).with_event(
            SimTime::from_millis(2),
            1,
            FaultKind::Stall {
                duration: SimDuration::from_micros(1_500),
            },
        );
        rt.install_fault_plan(&plan);
        let beat = SimDuration::from_millis(1);
        for tick in 0..=5u64 {
            let now = SimTime::ZERO + beat * tick;
            let reports = rt.pulse(now).expect("pulses never fail here");
            assert!(reports.is_empty(), "a stall must not trigger recovery");
            if tick == 3 {
                assert_eq!(
                    rt.device_health(DeviceId(1)),
                    DeviceHealth::Suspect,
                    "two missed beats escalate to Suspect"
                );
            }
        }
        assert_eq!(
            rt.device_health(DeviceId(1)),
            DeviceHealth::Healthy,
            "the device recovers once the stall window passes"
        );
        let snap = rt.metrics_snapshot();
        assert_eq!(snap.counter_total("fault.heartbeat_missed"), 2);
        assert_eq!(snap.counter_total("fault.device_suspect"), 1);
        assert_eq!(snap.counter_total("fault.device_recovered"), 1);
        assert_eq!(snap.counter_total("fault.device_failed"), 0);
    }

    #[derive(Debug)]
    struct Plain;

    impl Offcode for Plain {
        fn guid(&self) -> Guid {
            Guid(0x11)
        }
        fn bind_name(&self) -> &'static str {
            "test.Plain"
        }
        fn handle_call(
            &mut self,
            _ctx: &mut OffcodeCtx,
            _call: &Call,
        ) -> Result<Value, RuntimeError> {
            Ok(Value::Unit)
        }
    }

    fn network_odf() -> OdfDocument {
        OdfDocument::new("test.Plain", Guid(0x11)).with_target(DeviceClassSpec {
            id: class_ids::NETWORK,
            name: "class-network".into(),
            bus: None,
            mac: None,
            vendor: None,
        })
    }

    /// Wedged descriptor-ring slots belong to the live ring: once every
    /// endpoint closes (teardown), the wedge must be swept with the ring,
    /// and a re-opened ring must start clean. (Historically the wedge
    /// count survived teardown, so `audit_connections` now asserts no
    /// channel carries wedged slots with zero open endpoints — the exact
    /// orphan this test would have produced.)
    #[test]
    fn wedged_slots_are_swept_on_teardown_and_reopen() {
        let mut rt = Runtime::new(nic_machine(), RuntimeConfig::default());
        rt.register_offcode(network_odf(), || Box::new(Plain))
            .expect("fresh depot");
        let id = rt
            .create_offcode(Guid(0x11), SimTime::ZERO)
            .expect("deploys");
        assert_eq!(rt.device_of(id), Some(DeviceId(1)), "lands on the NIC");
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 8;
        // Multicast so the ring can be re-opened after teardown closes
        // the last endpoint (unicast channels accept exactly one, ever).
        cfg.transport = Transport::Multicast;
        let chan = rt.create_channel(cfg).expect("provider exists");
        rt.connect_offcode(chan, id).expect("same device");

        let plan = FaultPlan::new(3).with_event(
            SimTime::from_millis(1),
            1,
            FaultKind::RingExhaustion { slots: 3 },
        );
        rt.install_fault_plan(&plan);
        rt.pulse(SimTime::from_millis(1)).expect("no failures");
        // Both dev1 rings (the Offcode's OOB channel and the data
        // channel) picked up the wedge.
        let snap = rt.metrics_snapshot();
        assert_eq!(snap.counter_total("fault.ring_wedged"), 2);
        assert!(rt.audit_connections().is_empty(), "live wedges are fine");

        // Teardown closes the data channel's last endpoint; the wedge
        // must die with the ring or the audit flags an orphan.
        assert!(rt.teardown(id));
        assert!(
            rt.audit_connections().is_empty(),
            "no wedged slots may outlive their ring: {:?}",
            rt.audit_connections()
        );

        // Re-deploy and re-open the same channel: the fresh ring starts
        // clean, and the still-active injector re-wedges it on the next
        // pulse — which is correct, the fault never lifted.
        let id2 = rt
            .create_offcode(Guid(0x11), SimTime::from_millis(2))
            .expect("redeploys");
        rt.connect_offcode(chan, id2).expect("ring reopened");
        assert!(rt.audit_connections().is_empty());
        rt.pulse(SimTime::from_millis(2)).expect("no failures");
        let snap = rt.metrics_snapshot();
        assert_eq!(
            snap.counter_total("fault.ring_wedged"),
            4,
            "the reopened rings wedge again while the fault is active"
        );
        assert!(rt.audit_connections().is_empty());
    }
}

mod gang_recovery {
    use bytes::Bytes;
    use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
    use hydra::core::error::RuntimeError;
    use hydra::core::offcode::{Offcode, OffcodeCtx};
    use hydra::core::runtime::{Runtime, RuntimeConfig};
    use hydra::odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
    use hydra::sim::time::SimTime;

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    #[derive(Debug)]
    struct Snap {
        guid: Guid,
        name: &'static str,
    }

    impl Offcode for Snap {
        fn guid(&self) -> Guid {
            self.guid
        }
        fn bind_name(&self) -> &str {
            self.name
        }
        fn handle_call(
            &mut self,
            _ctx: &mut OffcodeCtx,
            _call: &hydra::core::call::Call,
        ) -> Result<hydra::core::call::Value, RuntimeError> {
            Ok(hydra::core::call::Value::Unit)
        }
        fn snapshot(&self) -> Option<Bytes> {
            Some(Bytes::from_static(b"s"))
        }
        fn restore(&mut self, _state: Bytes) -> Result<(), RuntimeError> {
            Ok(())
        }
    }

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic()); // dev1
        reg.install(DeviceDescriptor::gpu()); // dev2
        reg
    }

    fn deploy_pair(a_classes: &[u32]) -> Runtime {
        let mut rt = Runtime::new(registry(), RuntimeConfig::default());
        let mut a = OdfDocument::new("test.A", Guid(1)).with_import(Import {
            file: String::new(),
            bind_name: "test.B".into(),
            guid: Guid(2),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
        for c in a_classes {
            a = a.with_target(class(*c));
        }
        let b = OdfDocument::new("test.B", Guid(2)).with_target(class(class_ids::GPU));
        rt.register_offcode(a, || {
            Box::new(Snap {
                guid: Guid(1),
                name: "test.A",
            })
        })
        .expect("fresh depot");
        rt.register_offcode(b, || {
            Box::new(Snap {
                guid: Guid(2),
                name: "test.B",
            })
        })
        .expect("fresh depot");
        rt.create_offcode(Guid(1), SimTime::ZERO).expect("deploys");
        rt
    }

    /// Gang-constrained recovery, offload reachable: the Gang edge means
    /// "both offloaded, or neither" (layout eq. 3). When the NIC dies but
    /// the displaced Offcode can also run on the GPU, it follows its
    /// partner into offload instead of dragging the gang to the host.
    #[test]
    fn gang_partner_follows_to_surviving_device() {
        let mut rt = deploy_pair(&[class_ids::NETWORK, class_ids::GPU]);
        let a = rt.get_offcode(Guid(1)).expect("deployed");
        let b = rt.get_offcode(Guid(2)).expect("deployed");
        // Pin the interesting shape: a on the NIC, b offloaded on the GPU.
        if rt.device_of(a) != Some(DeviceId(1)) {
            rt.migrate(a, DeviceId(1), SimTime::from_millis(1))
                .expect("a fits on the NIC");
        }
        assert_eq!(rt.device_of(b), Some(DeviceId(2)), "b offloaded on GPU");
        let report = rt
            .on_device_failure(DeviceId(1), SimTime::from_millis(5))
            .expect("recovers");
        let a2 = rt.get_offcode(Guid(1)).expect("a survived");
        let b2 = rt.get_offcode(Guid(2)).expect("b survived");
        assert_eq!(
            rt.device_of(a2),
            Some(DeviceId(2)),
            "a follows its gang partner onto the surviving GPU"
        );
        assert_eq!(rt.device_of(b2), Some(DeviceId(2)), "b never moved");
        assert!(report.constraints_ok, "achieved layout satisfies the ODFs");
        assert_eq!(
            rt.metrics_snapshot().counter_total("recover.migrations"),
            report.displaced.len() as u64,
            "every displaced offcode is accounted as a migration"
        );
        assert_eq!(report.host_fallbacks, 0, "nobody degraded to the host");
    }

    /// Gang-constrained recovery, offload unreachable: a NETWORK-only
    /// Offcode can land nowhere but the host once the NIC dies, and the
    /// Gang edge drags its partner off the (healthy!) GPU down with it.
    #[test]
    fn gang_falls_back_to_host_together() {
        let mut rt = deploy_pair(&[class_ids::NETWORK]);
        let a = rt.get_offcode(Guid(1)).expect("deployed");
        let b = rt.get_offcode(Guid(2)).expect("deployed");
        let home = rt.device_of(a).expect("live");
        assert_eq!(home, DeviceId(1), "NETWORK-only a sits on the NIC");
        assert_eq!(rt.device_of(b), Some(DeviceId(2)), "b offloaded on GPU");
        let report = rt
            .on_device_failure(home, SimTime::from_millis(5))
            .expect("recovers");
        let a2 = rt.get_offcode(Guid(1)).expect("a survived");
        let b2 = rt.get_offcode(Guid(2)).expect("b survived");
        assert_eq!(rt.device_of(a2), Some(DeviceId::HOST));
        assert_eq!(
            rt.device_of(b2),
            Some(DeviceId::HOST),
            "the gang constraint drags b down with a"
        );
        assert!(report.constraints_ok);
        assert!(report.host_fallbacks >= 2);
        assert!(rt.audit_connections().is_empty());
    }
}
