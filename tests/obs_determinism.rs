//! The observability layer's core guarantee: two identical executions
//! produce byte-identical metrics snapshots.
//!
//! Nothing in `hydra-obs` touches the wall clock — spans are stamped with
//! simulation time and measured in modeled work units, and every snapshot
//! collection iterates `BTreeMap`s. These tests deploy the same
//! application twice (through the full `create_offcode` pipeline, channel
//! traffic included) and compare the JSON renderings bytewise.

use hydra::core::call::{Call, Value};
use hydra::core::channel::ChannelConfig;
use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::core::error::RuntimeError;
use hydra::core::offcode::{Offcode, OffcodeCtx};
use hydra::core::runtime::{Runtime, RuntimeConfig, SolverKind};
use hydra::odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra::sim::time::SimTime;

#[derive(Debug)]
struct Sink {
    guid: Guid,
    name: &'static str,
}

impl Offcode for Sink {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        self.name
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, _call: &Call) -> Result<Value, RuntimeError> {
        Ok(Value::Unit)
    }
}

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

/// Deploys a three-Offcode app with Gang and Pull constraints, then
/// pushes traffic through a Figure-3 channel. Returns the runtime with
/// its populated recorder.
fn run_scenario(solver: SolverKind) -> Runtime {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    let mut rt = Runtime::new(
        reg,
        RuntimeConfig {
            solver,
            ..RuntimeConfig::default()
        },
    );

    let a = OdfDocument::new("d.A", Guid(1))
        .with_target(class(class_ids::NETWORK))
        .with_import(Import {
            file: String::new(),
            bind_name: "d.B".into(),
            guid: Guid(2),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
    let b = OdfDocument::new("d.B", Guid(2))
        .with_target(class(class_ids::GPU))
        .with_import(Import {
            file: String::new(),
            bind_name: "d.C".into(),
            guid: Guid(3),
            constraint: ConstraintKind::Pull,
            priority: 0,
        });
    let c = OdfDocument::new("d.C", Guid(3)).with_target(class(class_ids::GPU));
    rt.register_offcode(a, || {
        Box::new(Sink {
            guid: Guid(1),
            name: "d.A",
        })
    })
    .unwrap();
    rt.register_offcode(b, || {
        Box::new(Sink {
            guid: Guid(2),
            name: "d.B",
        })
    })
    .unwrap();
    rt.register_offcode(c, || {
        Box::new(Sink {
            guid: Guid(3),
            name: "d.C",
        })
    })
    .unwrap();

    let root = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
    let device = rt.device_of(root).unwrap();
    let chan = rt.create_channel(ChannelConfig::figure3(device)).unwrap();
    rt.connect_offcode(chan, root).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..8u64 {
        let call = Call::new(Guid(1), "tick").with_return_id(i);
        t = rt.send_call(chan, &call, t).unwrap();
    }
    rt.pump(t);
    rt
}

#[test]
fn identical_deployments_render_identical_snapshots() {
    let first = run_scenario(SolverKind::Ilp).metrics_snapshot();
    let second = run_scenario(SolverKind::Ilp).metrics_snapshot();
    assert_eq!(first, second, "snapshot structs must match");
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "JSON renderings must be byte-identical"
    );
    assert_eq!(
        first.to_string(),
        second.to_string(),
        "Display renderings must be byte-identical"
    );
}

#[test]
fn greedy_runs_are_also_deterministic() {
    let first = run_scenario(SolverKind::Greedy).metrics_snapshot();
    let second = run_scenario(SolverKind::Greedy).metrics_snapshot();
    assert_eq!(first.to_json(), second.to_json());
}

/// The acceptance shape of a populated snapshot: pipeline-stage spans
/// with work attributed, channel counters, and solver node counts.
#[test]
fn snapshot_reports_pipeline_channels_and_solver() {
    let snap = run_scenario(SolverKind::Ilp).metrics_snapshot();

    for stage in [
        "deploy.closure",
        "deploy.layout",
        "deploy.solve",
        "deploy.link_load",
        "deploy.channels",
        "deploy.initialize",
        "deploy.start",
    ] {
        let spans = snap.spans_named(stage);
        assert_eq!(spans.len(), 1, "exactly one {stage} span");
        assert!(spans[0].work_units > 0, "{stage} must attribute work");
    }
    // Per-Offcode child spans under link/load.
    let parent = snap.spans_named("deploy.link_load")[0].seq;
    let children = snap.spans_named("deploy.offcode");
    assert_eq!(children.len(), 3, "one child span per deployed Offcode");
    assert!(children.iter().all(|s| s.parent == Some(parent)));

    // Channel traffic counters (8 explicit sends plus OOB bookkeeping).
    assert!(snap.counter_total("channel.sent") >= 8);
    assert!(snap.counter_total("channel.bytes") > 0);
    assert!(snap.counter_total("channel.provider_selected") >= 4);

    // Solver statistics.
    assert!(snap.counter("solver.nodes_explored", "ilp").unwrap() >= 1);
    let pruned = snap.counter("solver.bounds_pruned", "ilp").unwrap_or(0);
    assert!(pruned <= snap.counter("solver.nodes_explored", "ilp").unwrap());
    // The exact solver can never offload fewer Offcodes than greedy.
    assert!(
        snap.counter("solver.offloaded", "ilp").unwrap_or(0)
            >= snap.counter("solver.offloaded", "greedy").unwrap_or(0)
    );

    // Loader statistics.
    assert!(snap.counter("load.strategy", "host-side").unwrap_or(0) >= 3);
    assert!(snap.counter("link.relocations_applied", "").unwrap_or(0) > 0);
}

#[test]
fn chrome_trace_export_is_byte_identical_across_runs() {
    let first = run_scenario(SolverKind::Ilp).trace_export();
    let second = run_scenario(SolverKind::Ilp).trace_export();
    assert_eq!(first, second, "Chrome trace JSON must be byte-identical");
    // And so is the demo deployment the CI artifact is built from.
    let demo_a = hydra::tivo::demo::demo_deployment().trace_export();
    let demo_b = hydra::tivo::demo::demo_deployment().trace_export();
    assert_eq!(demo_a, demo_b);
}

/// The tentpole acceptance criterion: at least one message's events form
/// a connected send → provider-hop → recv chain spanning two devices, and
/// the exported JSON carries the flow events that stitch it together.
#[test]
fn trace_chains_connect_across_devices() {
    let rt = run_scenario(SolverKind::Ilp);
    let snap = rt.metrics_snapshot();
    let recvs = snap.events_kind("recv");
    assert!(!recvs.is_empty(), "pumped messages were received");
    let chain = snap.trace_events(recvs[0].trace);
    assert_eq!(chain.len(), 3, "send, provider hop, recv");
    assert_eq!(chain[0].kind, "send");
    assert_eq!(chain[1].kind, "hop");
    assert_eq!(chain[2].kind, "recv");
    // Connected by parent ids...
    assert_eq!(chain[1].parent, Some(chain[0].id));
    assert_eq!(chain[2].parent, Some(chain[1].id));
    // ...monotone in sim time...
    assert!(chain[0].at_nanos <= chain[1].at_nanos);
    assert!(chain[1].at_nanos <= chain[2].at_nanos);
    // ...and spanning two devices: send on the host, the rest on-device.
    assert_eq!(chain[0].device, 0);
    assert_ne!(chain[1].device, 0);
    // The export stitches the chain with flow events.
    let json = rt.trace_export();
    assert!(json.contains("\"ph\":\"s\""));
    assert!(json.contains("\"ph\":\"f\""));
}

#[test]
fn flight_recorder_overflow_is_deterministic_and_accounted() {
    let run = |capacity: usize| {
        let mut rt = run_scenario(SolverKind::Ilp);
        rt.recorder().set_flight_capacity(capacity);
        // Push more traffic than the shrunken ring can hold.
        let chan = rt
            .create_channel(ChannelConfig::figure3(hydra::core::device::DeviceId(1)))
            .unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..16u64 {
            let call = Call::new(Guid(9), "tick").with_return_id(i);
            t = rt.send_call(chan, &call, t).unwrap();
        }
        rt.metrics_snapshot()
    };
    let a = run(8);
    let b = run(8);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.events.len(), 8, "ring holds exactly its capacity");
    assert!(a.events_dropped > 0, "overflow is visible, not silent");
}
