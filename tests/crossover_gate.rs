//! The provider-crossover regression gate (tier 1).
//!
//! `budgets/bench_crossover.json` is the committed baseline for the
//! PIO / doorbell-batched / DMA sweep, and `BENCH_crossover.json` at
//! the workspace root is the committed rendering of the report. The
//! crossover report is pure sim-time — no `wall_` lines — so the byte
//! comparison here (and in CI's `crossover-gate` job) covers the whole
//! file. The two crossover points are gated as bands: PIO must stop
//! winning somewhere in the small-message range, and synchronous DMA
//! must take over somewhere in the bulk range.

use hydra::obs::{check_budget, parse_budget};
use hydra_bench::crossover_bench::{
    bench_snapshot, check_bench, render_json, run_crossover_bench, SIZES,
};
use hydra_bench::report::{read_u64, schema_version, sim_fields, SCHEMA_VERSION};

const BASELINE: &str = include_str!("../budgets/bench_crossover.json");
const COMMITTED_REPORT: &str = include_str!("../BENCH_crossover.json");

#[test]
fn crossover_results_stay_within_committed_baseline() {
    let violations = check_bench(&run_crossover_bench(), BASELINE).expect("baseline parses");
    assert!(
        violations.is_empty(),
        "crossover bench regressions:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn report_is_byte_identical_across_runs_and_matches_committed() {
    let a = render_json(&run_crossover_bench());
    let b = render_json(&run_crossover_bench());
    assert_eq!(a, b, "crossover report is deterministic");
    // No wall-clock fields at all: the sim filter must be a no-op.
    assert_eq!(a, sim_fields(&a), "crossover report carries no wall_ lines");
    assert_eq!(
        a, COMMITTED_REPORT,
        "BENCH_crossover.json is stale — regenerate with \
         `cargo run --release -p hydra-bench --bin repro -- bench crossover > BENCH_crossover.json`"
    );
}

#[test]
fn committed_report_pins_the_crossover_structure() {
    assert_eq!(schema_version(COMMITTED_REPORT), Some(SCHEMA_VERSION));
    let pio_to_db = read_u64(COMMITTED_REPORT, "pio_to_doorbell_bytes")
        .expect("committed report carries the first crossover point");
    let db_to_dma = read_u64(COMMITTED_REPORT, "doorbell_to_dma_bytes")
        .expect("committed report carries the second crossover point");
    let smallest = SIZES[0] as u64;
    let largest = *SIZES.last().unwrap() as u64;
    assert!(
        pio_to_db > smallest,
        "PIO must win at least the smallest size ({pio_to_db} <= {smallest})"
    );
    assert!(
        db_to_dma > pio_to_db,
        "the doorbell-batched ring must own a middle band ({db_to_dma} <= {pio_to_db})"
    );
    assert!(
        db_to_dma < largest,
        "DMA must win before the largest size ({db_to_dma} >= {largest})"
    );
    // The repriced layout exercise gave the NIC slot to the bulk node.
    assert_eq!(read_u64(COMMITTED_REPORT, "bulk_device"), Some(1));
    assert_eq!(read_u64(COMMITTED_REPORT, "chatty_device"), Some(0));
}

#[test]
fn adaptive_channel_never_costs_more_than_the_worst_static_provider() {
    let rep = run_crossover_bench();
    for &size in SIZES {
        let adaptive = rep
            .results
            .iter()
            .find(|r| r.provider == "adaptive" && r.bytes_per_message == size)
            .expect("adaptive run per size");
        let worst = rep
            .results
            .iter()
            .filter(|r| r.provider != "adaptive" && r.bytes_per_message == size)
            .map(|r| r.elapsed_ns)
            .max()
            .expect("forced runs per size");
        assert!(
            adaptive.elapsed_ns <= worst,
            "{size} B: adaptive {} ns > worst static {worst} ns",
            adaptive.elapsed_ns
        );
    }
}

#[test]
fn gate_fails_when_baseline_is_perturbed_beyond_tolerance() {
    // Perturb the baseline instead of the code: move the first crossover
    // point out of its band with zero tolerance. The gate must report
    // exactly that line.
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let line = spec
        .counters
        .iter_mut()
        .find(|c| {
            c.name == "bench.crossover_bytes" && c.label.as_deref() == Some("pio_to_doorbell")
        })
        .expect("baseline budgets the first crossover point");
    line.expect *= 16;
    line.tolerance = 0;
    let snap = bench_snapshot(&run_crossover_bench());
    let violations = check_budget(&snap, &spec);
    assert_eq!(violations.len(), 1, "exactly the perturbed line fails");
    assert_eq!(violations[0].name, "bench.crossover_bytes");
    assert_eq!(violations[0].label.as_deref(), Some("pio_to_doorbell"));
}

#[test]
fn gate_tolerance_absorbs_small_drift() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    for line in &mut spec.counters {
        line.expect += line.tolerance / 2;
    }
    let snap = bench_snapshot(&run_crossover_bench());
    assert!(check_budget(&snap, &spec).is_empty());
}
