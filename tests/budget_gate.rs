//! The metrics-budget regression gate (tier 1).
//!
//! `budgets/demo_deployment.json` is the committed baseline for the demo
//! deployment's counters. Because every snapshot is deterministic, the
//! gate is tight: a change that alters channel traffic, provider
//! selection, solver effort or loader work beyond the per-counter
//! tolerances fails here (and in CI) instead of drifting silently.

use hydra::obs::{check_budget, parse_budget};
use hydra::tivo::demo::demo_deployment;

const BASELINE: &str = include_str!("../budgets/demo_deployment.json");

#[test]
fn demo_deployment_stays_within_committed_budget() {
    let spec = parse_budget(BASELINE).expect("committed baseline parses");
    assert_eq!(spec.name, "demo-deployment");
    let snap = demo_deployment().metrics_snapshot();
    let violations = check_budget(&snap, &spec);
    assert!(
        violations.is_empty(),
        "budget violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn gate_fails_when_a_counter_drifts_beyond_tolerance() {
    // Perturb the baseline instead of the code: demand one more sent
    // message than the demo produces, with zero tolerance. The gate must
    // report exactly that line.
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let sent = spec
        .counters
        .iter_mut()
        .find(|c| c.name == "channel.sent")
        .expect("baseline budgets channel.sent");
    sent.expect += 1;
    sent.tolerance = 0;
    let snap = demo_deployment().metrics_snapshot();
    let violations = check_budget(&snap, &spec);
    assert_eq!(violations.len(), 1, "exactly the perturbed line fails");
    assert_eq!(violations[0].name, "channel.sent");
    assert_eq!(violations[0].actual + 1, violations[0].expect);
}

#[test]
fn gate_tolerance_absorbs_small_drift() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let bytes = spec
        .counters
        .iter_mut()
        .find(|c| c.name == "channel.bytes")
        .expect("baseline budgets channel.bytes");
    // Within tolerance: shifting expect by less than the tolerance passes.
    bytes.expect += bytes.tolerance;
    let snap = demo_deployment().metrics_snapshot();
    assert!(check_budget(&snap, &spec).is_empty());
}

#[test]
fn vanished_instrumentation_reads_as_zero_and_fails() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    spec.counters.push(hydra::obs::CounterBudget {
        name: "no.such.counter".into(),
        label: None,
        expect: 7,
        tolerance: 0,
    });
    let snap = demo_deployment().metrics_snapshot();
    let violations = check_budget(&snap, &spec);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].actual, 0, "missing counter reads as zero");
}
