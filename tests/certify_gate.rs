//! The quantitative-certification gate (tier 1).
//!
//! Four contracts, mirrored by the CI certify-gate job:
//!
//! 1. the built-in declared-traffic sets (`demo`, `tivo`, `stats`)
//!    certify with zero errors and a byte-stable canonical JSON report;
//! 2. each committed `fixtures/certify/*.xml` failure case fires
//!    exactly its designated diagnostic code (HV040 queue overflow,
//!    HV042 utilization overrun, HV050 ring-write race);
//! 3. the **differential**: replaying each set's declared arrival
//!    curves against real channels never observes a p99 latency or
//!    peak queue depth above the certificate's static bounds;
//! 4. the stats scenario's full telemetry — clean *and* under its
//!    committed fault plan — stays bracketed by the (overlay-widened)
//!    certificate: per-ring p99/depth and per-device busy permille.

use hydra::devices::DEVICE_BUSY_NS;
use hydra::obs::sustained_busy_permille;
use hydra::tivo::certify::{
    certify_service_table, certify_set, demo_certify_odfs, observe_declared, stats_observation,
    tivo_certify_odfs, Observation,
};
use hydra::tivo::stats::stats_demo_plan;
use hydra::verify::{Certification, CertifyInput, FaultOverlay, HvCode, VerifyInput};
use hydra_bench::certify::{any_errors, render_json, run_certify};

fn certify(name: &str, overlay: Option<&FaultOverlay>) -> Certification {
    let (odfs, _) = certify_set(name).expect("built-in set");
    let mut reg = hydra::core::device::DeviceRegistry::new();
    reg.install(hydra::core::device::DeviceDescriptor::programmable_nic());
    reg.install(hydra::core::device::DeviceDescriptor::smart_disk());
    reg.install(hydra::core::device::DeviceDescriptor::gpu());
    let table = reg.verify_table();
    let services = certify_service_table();
    hydra::verify::certify(&CertifyInput {
        verify: VerifyInput {
            odfs: &odfs,
            devices: &table,
            demands: None,
            roots: None,
        },
        services: &services,
        overlay,
    })
}

/// Asserts every observed per-ring value sits inside the certificate.
fn assert_bracketed(name: &str, cert: &Certification, obs: &Observation) {
    assert!(!obs.channels.is_empty(), "{name}: the replay drove traffic");
    for ch in &obs.channels {
        let bound = cert
            .certificate
            .channel(&ch.ring)
            .unwrap_or_else(|| panic!("{name}: ring {} is certified", ch.ring));
        let latency = bound
            .latency_bound_ns
            .unwrap_or_else(|| panic!("{name}: ring {} is stable", ch.ring));
        assert!(
            ch.p99_ns <= latency,
            "{name}: {} observed p99 {} ns escapes bound {} ns",
            ch.ring,
            ch.p99_ns,
            latency
        );
        assert!(
            ch.peak_depth <= bound.queue_bound,
            "{name}: {} observed depth {} escapes bound {}",
            ch.ring,
            ch.peak_depth,
            bound.queue_bound
        );
    }
    for d in &cert.certificate.devices {
        let label = if d.index == 0 {
            "host".to_owned()
        } else {
            format!("device-{}", d.index)
        };
        let observed =
            sustained_busy_permille(&obs.snapshot, DEVICE_BUSY_NS, &label, obs.horizon_ns);
        assert!(
            observed <= d.permille,
            "{name}: {label} observed {observed} permille escapes bound {}",
            d.permille
        );
    }
}

#[test]
fn builtin_sets_certify_error_free() {
    let results = run_certify(&[]);
    assert_eq!(results.len(), 3);
    for r in &results {
        assert!(
            !r.certification.report.has_errors(),
            "{} must certify clean:\n{}",
            r.name,
            r.certification.report.render_human()
        );
        assert!(
            !r.certification.certificate.chains.is_empty(),
            "{} certifies end-to-end chains",
            r.name
        );
        assert!(
            r.certification
                .certificate
                .channels
                .iter()
                .all(|c| c.stable && c.latency_bound_ns.is_some()),
            "{} has only stable rings",
            r.name
        );
    }
    assert!(!any_errors(&results));
}

#[test]
fn certify_json_is_byte_stable() {
    let a = render_json(&run_certify(&[]));
    let b = render_json(&run_certify(&[]));
    assert_eq!(a, b, "certification must be deterministic");
    for marker in [
        "\"certificate\"",
        "\"queue_bound\"",
        "\"latency_bound_ns\"",
        "\"permille\"",
        "\"chains\"",
    ] {
        assert!(a.contains(marker), "report carries {marker}");
    }
}

#[test]
fn committed_fixtures_fire_their_designated_codes() {
    let cases = [
        (
            "fixtures/certify/queue_overflow.xml",
            HvCode::QueueBoundExceedsRing,
        ),
        (
            "fixtures/certify/utilization_overrun.xml",
            HvCode::UtilizationOverrun,
        ),
        (
            "fixtures/certify/ring_write_race.xml",
            HvCode::RingWriteRace,
        ),
    ];
    for (path, code) in cases {
        let results = run_certify(&[path]);
        let report = &results[0].certification.report;
        assert!(
            report.errors().any(|d| d.code == code),
            "{path} must fire {code:?}:\n{}",
            report.render_human()
        );
    }
}

#[test]
fn demo_and_tivo_replays_are_bracketed() {
    for (name, odfs) in [("demo", demo_certify_odfs()), ("tivo", tivo_certify_odfs())] {
        let cert = certify(name, None);
        assert!(!cert.report.has_errors(), "{name} certifies clean");
        let obs = observe_declared(&odfs);
        assert_bracketed(name, &cert, &obs);
    }
}

#[test]
fn stats_telemetry_is_bracketed_clean_and_faulted() {
    // Clean run against the un-widened certificate.
    let clean_cert = certify("stats", None);
    assert!(!clean_cert.report.has_errors());
    let clean_obs = stats_observation(None);
    assert_bracketed("stats/clean", &clean_cert, &clean_obs);

    // Faulted run against the overlay-widened certificate.
    let (_, overlay) = certify_set("stats").expect("built-in set");
    let overlay = overlay.expect("stats commits to a fault plan");
    let faulted_cert = certify("stats", Some(&overlay));
    assert!(!faulted_cert.report.has_errors());
    let plan = stats_demo_plan();
    let faulted_obs = stats_observation(Some(&plan));
    assert_bracketed("stats/faulted", &faulted_cert, &faulted_obs);

    // The overlay only ever widens: every faulted bound dominates its
    // clean counterpart.
    for (c, f) in clean_cert
        .certificate
        .channels
        .iter()
        .zip(&faulted_cert.certificate.channels)
    {
        assert!(
            f.latency_bound_ns >= c.latency_bound_ns,
            "{} widens",
            c.bind_name
        );
    }
    for (c, f) in clean_cert
        .certificate
        .devices
        .iter()
        .zip(&faulted_cert.certificate.devices)
    {
        assert!(f.permille >= c.permille, "{} widens", c.name);
    }
}
