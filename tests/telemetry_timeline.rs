//! Property tests for the windowed telemetry plane (tier 1):
//! conservation (window deltas reconcile with end-of-run totals under
//! arbitrary interleavings), timeline byte-identity under randomized
//! fault plans, and the documented cross-check between the two
//! percentile implementations ([`hydra::sim::stats::Samples`] keeps
//! every sample, [`hydra::obs::Histogram`] keeps power-of-two buckets —
//! both must land in the same bucket).

use proptest::prelude::*;

use hydra::obs::{Histogram, Recorder};
use hydra::sim::fault::{FaultKind, FaultPlan};
use hydra::sim::stats::Samples;
use hydra::sim::time::{SimDuration, SimTime};
use hydra::tivo::stats::run_stats_demo;

const TRACKS: [&str; 4] = ["a", "b", "c", "d"];

/// Builds a fault plan from parallel raw streams (the vendored proptest
/// has no tuple strategies): event `i` fires at `ats[i]` on device
/// `devs[i]`, with `kinds[i]` selecting the fault class and `vals[i]`
/// parameterizing it.
fn plan_from_raw(seed: u64, ats: &[u64], devs: &[usize], kinds: &[u8], vals: &[u64]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for (i, &at) in ats.iter().enumerate() {
        let kind = match kinds[i] % 4 {
            0 => FaultKind::Crash,
            1 => FaultKind::Stall {
                duration: SimDuration::from_nanos(vals[i]),
            },
            2 => FaultKind::LossBurst {
                frames: (vals[i] % 8 + 1) as u32,
            },
            _ => FaultKind::RingExhaustion {
                slots: (vals[i] % 31 + 1) as usize,
            },
        };
        plan = plan.with_event(SimTime::from_nanos(at), devs[i], kind);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: however counter increments interleave with window
    /// closes, once a final window seals the run the per-window deltas
    /// of every track sum to exactly its end-of-run total. Op codes
    /// 0..4 add `amounts[i]` to that track; code 4 closes a window.
    #[test]
    fn window_deltas_conserve_counter_totals(
        codes in proptest::collection::vec(0u8..5, 1..60),
        amounts in proptest::collection::vec(1u64..10_000, 60usize),
    ) {
        let rec = Recorder::new();
        let mut t = 0u64;
        for (i, &code) in codes.iter().enumerate() {
            if code < 4 {
                rec.counter_add("prop.counter", TRACKS[code as usize], amounts[i]);
            } else {
                t += 1_000;
                rec.sample_window(SimTime::from_nanos(t));
            }
        }
        // Seal whatever the last window left behind.
        t += 1_000;
        rec.sample_window(SimTime::from_nanos(t));
        let snap = rec.snapshot();
        for track in TRACKS {
            let summed: u64 = snap
                .windows
                .iter()
                .map(|w| w.delta("prop.counter", track))
                .sum();
            prop_assert_eq!(summed, snap.counter("prop.counter", track).unwrap_or(0));
        }
        // And the windows tile sim time with no gaps.
        for pair in snap.windows.windows(2) {
            prop_assert_eq!(pair[0].end_nanos, pair[1].start_nanos);
        }
    }

    /// The full stats scenario re-renders byte-identically under any
    /// fault plan — crashes, stalls, loss bursts and ring exhaustion
    /// perturb the timeline but never its determinism.
    #[test]
    fn stats_timeline_is_byte_identical_under_random_faults(
        seed in 1u64..u64::MAX,
        ats in proptest::collection::vec(0u64..10_000_000, 0..4),
        devs in proptest::collection::vec(1usize..4, 4usize),
        kinds in proptest::collection::vec(0u8..4, 4usize),
        vals in proptest::collection::vec(1u64..1_000_000, 4usize),
    ) {
        let plan = plan_from_raw(seed, &ats, &devs, &kinds, &vals);
        let (_, a) = run_stats_demo(Some(&plan));
        let (_, b) = run_stats_demo(Some(&plan));
        prop_assert_eq!(a, b);
    }

    /// The cross-check promised by the `Samples::percentile` docs: the
    /// exact keep-every-sample estimator and the bucketed telemetry
    /// estimator always agree on the power-of-two bucket containing the
    /// ceiling-nearest-rank order statistic.
    #[test]
    fn both_percentile_estimators_land_in_the_same_bucket(
        values in proptest::collection::vec(1u64..1_000_000, 1..200),
        pct in 1u64..=100,
    ) {
        let mut hist = Histogram::new();
        let mut samples = Samples::new();
        for &v in &values {
            hist.record(v);
            #[allow(clippy::cast_precision_loss)]
            samples.record(v as f64);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((pct * sorted.len() as u64).div_ceil(100)).max(1) as usize;
        let exact_rank_value = sorted[rank - 1];
        let estimate = hist.quantile(pct).expect("non-empty histogram");
        prop_assert_eq!(
            Histogram::bucket_index(estimate),
            Histogram::bucket_index(exact_rank_value),
            "estimate {} vs order statistic {}",
            estimate,
            exact_rank_value
        );
        // The sim-side estimator interpolates, but stays inside the
        // observed range — both agree on the support.
        #[allow(clippy::cast_precision_loss)]
        let exact = samples.percentile(pct as f64);
        prop_assert!(exact >= sorted[0] as f64);
        prop_assert!(exact <= *sorted.last().unwrap() as f64);
    }
}
