//! Differential proof that the calendar-queue scheduler is observably
//! identical to the `BinaryHeap` reference oracle.
//!
//! Every committed byte-identical artifact — metrics snapshots, Chrome
//! traces, fault-recovery reports, `BENCH_*.json` — rides on the engine
//! executing events in exactly the order the heap always did. These
//! property tests drive both schedulers with the *same* randomized
//! schedules (same-timestamp bursts, cancellations, nested scheduling,
//! fault-plan events on the demo deployment) and demand identical
//! observable behavior at every layer: raw pop order, execution logs,
//! snapshot bytes, trace bytes.

use proptest::prelude::*;

use hydra::core::call::Call;
use hydra::odf::odf::Guid;
use hydra::sim::engine::{SchedEntry, Scheduler};
use hydra::sim::fault::{FaultKind, FaultPlan};
use hydra::sim::time::{SimDuration, SimTime};
use hydra::sim::{BinaryHeapScheduler, CalendarQueue, EventId, SchedulerKind, Sim, SlabKey};
use hydra::tivo::demo::demo_deployment;

// -------------------------------------------------------------------
// Layer 1: raw Scheduler contract — identical pop streams.
// -------------------------------------------------------------------

/// One step of a raw scheduler workload: push a burst at an offset from
/// the last popped time, then pop a few.
#[derive(Debug, Clone)]
struct RawStep {
    /// Nanoseconds ahead of the current minimum to push at. Small range
    /// on purpose: collisions (same-instant bursts) must be common.
    offset: u64,
    /// How many entries to push at that instant.
    burst: usize,
    /// How many entries to pop afterwards.
    pops: usize,
}

/// The vendored proptest has no tuple strategies, so each step is one
/// random word decoded field-by-field (deterministically).
fn decode_raw(word: u64) -> RawStep {
    RawStep {
        offset: word % 5_000,
        burst: 1 + (word / 5_000 % 3) as usize,
        pops: (word / 15_000 % 4) as usize,
    }
}

fn raw_steps() -> impl Strategy<Value = Vec<RawStep>> {
    proptest::collection::vec(any::<u64>(), 1..120)
        .prop_map(|words| words.into_iter().map(decode_raw).collect())
}

fn drive_raw<S: Scheduler>(sched: &mut S, steps: &[RawStep]) -> Vec<(SimTime, u64)> {
    let key = SlabKey { slot: 0, gen: 0 };
    let mut seq = 0u64;
    let mut floor = 0u64; // monotone lower bound, like Sim's clock
    let mut popped = Vec::new();
    for step in steps {
        for _ in 0..step.burst {
            sched.push(SchedEntry {
                at: SimTime::from_nanos(floor + step.offset),
                seq,
                key,
            });
            seq += 1;
        }
        for _ in 0..step.pops {
            if let Some(e) = sched.pop() {
                floor = e.at.as_nanos();
                popped.push((e.at, e.seq));
            }
        }
    }
    while let Some(e) = sched.pop() {
        popped.push((e.at, e.seq));
    }
    popped
}

proptest! {
    #[test]
    fn raw_pop_streams_are_identical(steps in raw_steps()) {
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::new();
        let a = drive_raw(&mut heap, &steps);
        let b = drive_raw(&mut cal, &steps);
        prop_assert_eq!(a, b, "pop order must match the reference oracle");
    }
}

// -------------------------------------------------------------------
// Layer 2: full Sim — identical execution logs under bursts,
// cancellations, and nested same-instant scheduling.
// -------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SimOp {
    /// Schedule `burst` events at `now + offset_ns`, each logging its
    /// own tag. `nested` of them schedule a follow-up at the same
    /// instant from inside their own execution.
    Schedule {
        offset_ns: u64,
        burst: usize,
        nested: bool,
    },
    /// Cancel the `pick`-th previously returned [`EventId`] (modulo the
    /// number of live handles). Double-cancels are exercised naturally
    /// because handles are not removed from the list.
    Cancel { pick: usize },
}

/// One random word per op, decoded deterministically: one op in five is
/// a cancel, the rest schedule bursts (half of them nesting).
fn decode_sim_op(word: u64) -> SimOp {
    if word.is_multiple_of(5) {
        SimOp::Cancel {
            pick: (word / 5 % 64) as usize,
        }
    } else {
        SimOp::Schedule {
            offset_ns: word / 5 % 2_000,
            burst: 1 + (word / 10_000 % 3) as usize,
            nested: (word / 30_000).is_multiple_of(2),
        }
    }
}

fn sim_ops() -> impl Strategy<Value = Vec<SimOp>> {
    proptest::collection::vec(any::<u64>(), 1..80)
        .prop_map(|words| words.into_iter().map(decode_sim_op).collect())
}

fn drive_sim(kind: SchedulerKind, ops: &[SimOp]) -> (Vec<u64>, u64, u64) {
    let mut sim = Sim::with_scheduler(Vec::<u64>::new(), kind);
    let mut handles: Vec<EventId> = Vec::new();
    let mut tag = 0u64;
    for op in ops {
        match *op {
            SimOp::Schedule {
                offset_ns,
                burst,
                nested,
            } => {
                for b in 0..burst {
                    let my_tag = tag;
                    tag += 1;
                    let at = sim.now() + SimDuration::from_nanos(offset_ns);
                    let id = sim.schedule_at(at, move |s| {
                        s.model_mut().push(my_tag);
                        if nested && b == 0 {
                            // Same-instant follow-up from inside an
                            // event: must run after everything already
                            // queued for this instant.
                            s.schedule_now(move |s| s.model_mut().push(my_tag | (1 << 60)));
                        }
                    });
                    handles.push(id);
                }
            }
            SimOp::Cancel { pick } => {
                if !handles.is_empty() {
                    let id = handles[pick % handles.len()];
                    sim.cancel(id);
                }
            }
        }
        // Interleave execution with scheduling so cancels race events.
        sim.step();
    }
    sim.run();
    (
        sim.model().clone(),
        sim.now().as_nanos(),
        sim.events_executed(),
    )
}

proptest! {
    #[test]
    fn randomized_schedules_execute_identically(ops in sim_ops()) {
        let heap = drive_sim(SchedulerKind::BinaryHeap, &ops);
        let cal = drive_sim(SchedulerKind::Calendar, &ops);
        prop_assert_eq!(heap, cal, "execution log, clock, and event count must match");
    }
}

// -------------------------------------------------------------------
// Layer 3: the demo deployment — identical MetricsSnapshot bytes and
// Chrome-trace bytes when the runtime is driven from a Sim under a
// randomized fault plan.
// -------------------------------------------------------------------

fn drive_deployment(kind: SchedulerKind, crash_ms: u64, device: u32) -> (String, String, u64) {
    let mut sim = Sim::with_scheduler(demo_deployment(), kind);
    let plan = FaultPlan::new(42).with_event(
        SimTime::ZERO + SimDuration::from_millis(crash_ms),
        device as usize,
        FaultKind::Crash,
    );
    sim.model_mut().install_fault_plan(&plan);
    for tick in 0..=8u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(tick);
        // A same-instant burst per tick: health pulse, then an invoke on
        // the streamer, then a nested pump — FIFO order within the tick
        // is exactly what recovery traces depend on.
        sim.schedule_at(at, move |s| {
            let _ = s.model_mut().pulse(at);
        });
        sim.schedule_at(at, move |s| {
            if let Some(id) = s.model().get_offcode(Guid(1)) {
                let _ = s.model_mut().invoke(id, &Call::new(Guid(1), "frame"), at);
            }
            s.schedule_now(move |s| {
                s.model_mut().pump(at);
            });
        });
    }
    sim.run();
    let executed = sim.events_executed();
    let rt = sim.into_model();
    (
        rt.metrics_snapshot().to_string(),
        rt.trace_export(),
        executed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn demo_deployment_is_scheduler_independent(crash_ms in 1u64..7, device in 1u32..4) {
        let heap = drive_deployment(SchedulerKind::BinaryHeap, crash_ms, device);
        let cal = drive_deployment(SchedulerKind::Calendar, crash_ms, device);
        prop_assert_eq!(heap.2, cal.2, "event counts must match");
        prop_assert_eq!(&heap.0, &cal.0, "MetricsSnapshot bytes must match");
        prop_assert_eq!(&heap.1, &cal.1, "Chrome trace bytes must match");
    }
}

#[test]
fn committed_fault_plan_is_scheduler_independent() {
    // The committed NIC-crash schedule (the faults-gate scenario), as a
    // plain deterministic pin alongside the property tests.
    let heap = drive_deployment(SchedulerKind::BinaryHeap, 2, 1);
    let cal = drive_deployment(SchedulerKind::Calendar, 2, 1);
    assert_eq!(heap, cal);
    assert!(
        heap.1.contains("traceEvents"),
        "trace export is the Chrome trace-event JSON"
    );
}
