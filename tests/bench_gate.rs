//! The sim-time performance regression gate (tier 1).
//!
//! `budgets/bench_channel.json` is the committed baseline for the
//! channel data-path benchmarks, and `BENCH_channel.json` at the
//! workspace root is the committed rendering of the report itself.
//! Because every benchmark runs in simulated time, both are exact: a
//! code change that slows the batched (or single) path beyond the
//! per-scenario tolerances fails here — and in CI's `bench-gate` job —
//! instead of drifting silently.

use hydra::obs::{check_budget, parse_budget};
use hydra_bench::channel_bench::{bench_snapshot, check_bench, render_json, run_channel_bench};

const BASELINE: &str = include_str!("../budgets/bench_channel.json");
const COMMITTED_REPORT: &str = include_str!("../BENCH_channel.json");

#[test]
fn bench_results_stay_within_committed_baseline() {
    let violations = check_bench(&run_channel_bench(), BASELINE).expect("baseline parses");
    assert!(
        violations.is_empty(),
        "bench regressions:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn report_is_byte_identical_across_runs_and_matches_committed() {
    let a = render_json(&run_channel_bench());
    let b = render_json(&run_channel_bench());
    assert_eq!(a, b, "sim-time benches are deterministic");
    assert_eq!(
        a, COMMITTED_REPORT,
        "BENCH_channel.json is stale — regenerate with \
         `cargo run --release -p hydra-bench --bin repro -- bench > BENCH_channel.json`"
    );
}

#[test]
fn batched_throughput_beats_single_at_batch_eight_and_up() {
    let results = run_channel_bench();
    let single = results
        .iter()
        .find(|r| r.batch_size == 1)
        .expect("single scenario runs");
    for r in results.iter().filter(|r| r.batch_size >= 8) {
        assert!(
            r.throughput_bytes_per_sec > single.throughput_bytes_per_sec,
            "{} must beat single-message throughput ({} <= {})",
            r.name,
            r.throughput_bytes_per_sec,
            single.throughput_bytes_per_sec
        );
    }
}

#[test]
fn gate_fails_when_baseline_is_perturbed_beyond_tolerance() {
    // Perturb the baseline instead of the code: demand the batch8
    // scenario be faster than it is, with zero tolerance. The gate must
    // report exactly that line.
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let line = spec
        .counters
        .iter_mut()
        .find(|c| c.name == "bench.elapsed_ns" && c.label.as_deref() == Some("batch8"))
        .expect("baseline budgets batch8 elapsed time");
    line.expect /= 2;
    line.tolerance = 0;
    let snap = bench_snapshot(&run_channel_bench());
    let violations = check_budget(&snap, &spec);
    assert_eq!(violations.len(), 1, "exactly the perturbed line fails");
    assert_eq!(violations[0].name, "bench.elapsed_ns");
    assert_eq!(violations[0].label.as_deref(), Some("batch8"));
}

#[test]
fn gate_tolerance_absorbs_small_drift() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    for line in &mut spec.counters {
        line.expect += line.tolerance / 2;
    }
    let snap = bench_snapshot(&run_channel_bench());
    assert!(check_budget(&snap, &spec).is_empty());
}
