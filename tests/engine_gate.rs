//! The engine-core performance regression gate (tier 1).
//!
//! `budgets/bench_engine.json` is the committed baseline for the
//! scheduler hold model, the end-to-end churn simulation, and the demo
//! deployment's batched message loop; `BENCH_engine.json` at the
//! workspace root is the committed rendering of the report. The report
//! mixes deterministic sim fields with `wall_`-prefixed wall-clock
//! measurements, so the byte comparisons here (and in CI's
//! `engine-gate` job, which uses `grep -v '"wall_'`) strip exactly the
//! wall lines first. The calendar-vs-heap speedup is gated as a ratio:
//! the *committed* report must show at least 2x, and live runs must
//! never show the calendar losing to the heap.

use hydra::obs::{check_budget, parse_budget};
use hydra_bench::engine_bench::{
    check_engine_bench, engine_snapshot, render_json, run_engine_bench,
};
use hydra_bench::report::{read_u64, schema_version, sim_fields, SCHEMA_VERSION};

const BASELINE: &str = include_str!("../budgets/bench_engine.json");
const COMMITTED_REPORT: &str = include_str!("../BENCH_engine.json");

#[test]
fn engine_results_stay_within_committed_baseline() {
    let violations = check_engine_bench(&run_engine_bench(), BASELINE).expect("baseline parses");
    assert!(
        violations.is_empty(),
        "engine bench regressions:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn sim_fields_are_byte_identical_across_runs_and_match_committed() {
    let a = render_json(&run_engine_bench());
    let b = render_json(&run_engine_bench());
    assert_eq!(
        sim_fields(&a),
        sim_fields(&b),
        "sim fields are deterministic"
    );
    assert_eq!(
        sim_fields(&a),
        sim_fields(COMMITTED_REPORT),
        "BENCH_engine.json is stale — regenerate with \
         `cargo run --release -p hydra-bench --bin repro -- bench engine > BENCH_engine.json`"
    );
}

#[test]
fn committed_report_pins_the_headline_speedup() {
    // The acceptance bar lives in the committed artifact, not in a live
    // measurement: the checked-in release-build run must show the
    // calendar queue at >= 2x the heap's hold-model throughput.
    assert_eq!(schema_version(COMMITTED_REPORT), Some(SCHEMA_VERSION));
    let x100 = read_u64(COMMITTED_REPORT, "wall_calendar_vs_heap_x100")
        .expect("committed report carries the speedup ratio");
    assert!(
        x100 >= 200,
        "committed BENCH_engine.json must show >= 2x calendar-vs-heap ({x100} < 200)"
    );
}

#[test]
fn live_calendar_run_never_loses_to_the_heap() {
    // Lenient floor for live runs (debug builds, loaded CI machines):
    // both sides of the ratio are measured in the same process, so load
    // cancels — the calendar must at least match the heap.
    let bench = run_engine_bench();
    let x100 = bench.wall_speedup_x100();
    assert!(
        x100 >= 100,
        "calendar queue fell behind the binary heap ({x100} < 100)"
    );
}

#[test]
fn gate_fails_when_baseline_is_perturbed_beyond_tolerance() {
    // Perturb the baseline instead of the code: flip one bit of the
    // committed churn checksum with zero tolerance. The gate must report
    // exactly that line.
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let line = spec
        .counters
        .iter_mut()
        .find(|c| c.name == "bench.checksum" && c.label.as_deref() == Some("churn_calendar"))
        .expect("baseline budgets the calendar checksum");
    line.expect ^= 1;
    line.tolerance = 0;
    let snap = engine_snapshot(&run_engine_bench());
    let violations = check_budget(&snap, &spec);
    assert_eq!(violations.len(), 1, "exactly the perturbed line fails");
    assert_eq!(violations[0].name, "bench.checksum");
    assert_eq!(violations[0].label.as_deref(), Some("churn_calendar"));
}

#[test]
fn gate_tolerance_absorbs_small_drift() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    for line in &mut spec.counters {
        line.expect += line.tolerance / 2;
    }
    let snap = engine_snapshot(&run_engine_bench());
    assert!(check_budget(&snap, &spec).is_empty());
}
