//! Differential coverage for incremental layout repair: over random
//! constraint graphs and random deltas (device mask / device join),
//! [`LayoutGraph::repair`] must always land on the same objective value
//! as a from-scratch exact re-solve — the warm start and the frozen
//! complement are an optimization, never an approximation.

use hydra::core::device::DeviceId;
use hydra::core::layout::{GraphDelta, LayoutGraph, LayoutNode, NodeIdx, Objective};
use hydra::odf::odf::{ConstraintKind, Guid};
use hydra::sim::rng::DetRng;

fn node(guid: u64, compat: Vec<bool>, price: f64) -> LayoutNode {
    LayoutNode {
        guid: Guid(guid),
        bind_name: format!("n{guid}"),
        compat,
        price,
    }
}

/// A random graph over `k` devices (+ host) with `n` nodes, random
/// prices, and random constraint edges of every kind.
fn random_graph(rng: &mut DetRng, k: usize, n: usize) -> LayoutGraph {
    let mut g = LayoutGraph::new();
    for i in 0..n {
        let mut compat = vec![true];
        for _ in 0..k {
            compat.push(rng.chance(0.6));
        }
        g.add_node(node(i as u64 + 1, compat, 1.0 + rng.index(5) as f64));
    }
    for _ in 0..n {
        let a = NodeIdx(rng.index(n));
        let b = NodeIdx(rng.index(n));
        if a == b {
            continue;
        }
        let c = match rng.index(4) {
            0 => ConstraintKind::Link,
            1 => ConstraintKind::Pull,
            2 => ConstraintKind::Gang,
            _ => ConstraintKind::AsymGang,
        };
        g.add_edge(a, b, c);
    }
    g
}

fn random_objective(rng: &mut DetRng, k: usize) -> Objective {
    if rng.chance(0.5) {
        Objective::MaximizeOffloading
    } else {
        Objective::MaximizeBusUsage {
            capacities: (0..=k).map(|_| 3.0 + rng.index(8) as f64).collect(),
        }
    }
}

/// The objective value a placement achieves (offloaded count or bus
/// value, matching the objective under test).
fn value_of(g: &LayoutGraph, p: &hydra::core::layout::Placement, obj: &Objective) -> f64 {
    match obj {
        Objective::MaximizeOffloading => p.offloaded_count() as f64,
        Objective::MaximizeBusUsage { .. } => g.bus_value(p),
    }
}

/// Masking a random device: repair from the pre-mask optimum must be
/// feasible on the masked graph and objective-equal to a from-scratch
/// exact solve, across random graphs, objectives, and edge kinds.
#[test]
fn repair_after_mask_matches_scratch_on_random_graphs() {
    let mut rng = DetRng::new(7_031);
    for trial in 0..25 {
        let k = 2 + rng.index(3); // 2..4 devices + host
        let n = 3 + rng.index(5); // 3..7 nodes
        let mut g = random_graph(&mut rng, k, n);
        let obj = random_objective(&mut rng, k);
        let prev = g
            .resolve_ilp(&obj)
            .unwrap_or_else(|e| panic!("trial {trial}: pre-delta solve: {e}"));
        let failed = DeviceId(1 + rng.index(k) as u32);
        g.mask_device(failed)
            .unwrap_or_else(|e| panic!("trial {trial}: mask: {e}"));

        let (repaired, stats) = g
            .repair(&prev, &GraphDelta::MaskDevice(failed), &obj)
            .unwrap_or_else(|e| panic!("trial {trial}: repair: {e}"));
        let (scratch, _) = g
            .resolve_ilp_with_stats(&obj)
            .unwrap_or_else(|e| panic!("trial {trial}: scratch: {e}"));

        g.check(&repaired)
            .unwrap_or_else(|e| panic!("trial {trial}: repaired infeasible: {e}"));
        let rv = value_of(&g, &repaired, &obj);
        let sv = value_of(&g, &scratch, &obj);
        assert!(
            (rv - sv).abs() <= 1e-6,
            "trial {trial}: repair {rv} != scratch {sv} (stats {stats:?})"
        );
        // The dirty component never exceeds the graph.
        assert!(stats.repaired_nodes <= n as u64);
    }
}

/// A device joining: solve with the device absent from every node's
/// compatibility vector, then repair on the graph where it is available.
/// The repaired layout must match a from-scratch solve that can exploit
/// the newcomer.
#[test]
fn repair_after_join_matches_scratch_on_random_graphs() {
    let mut rng = DetRng::new(90_125);
    for trial in 0..25 {
        let k = 2 + rng.index(3);
        let n = 3 + rng.index(5);
        let after = random_graph(&mut rng, k, n);
        let obj = random_objective(&mut rng, k);
        let joined = DeviceId(1 + rng.index(k) as u32);

        // The pre-join graph: identical, except nobody can use `joined`.
        let mut before = LayoutGraph::new();
        for nd in after.nodes() {
            let mut compat = nd.compat.clone();
            compat[joined.idx()] = false;
            before.add_node(node(nd.guid.0, compat, nd.price));
        }
        for e in after.edges() {
            before.add_edge(e.from, e.to, e.constraint);
        }

        let prev = before
            .resolve_ilp(&obj)
            .unwrap_or_else(|e| panic!("trial {trial}: pre-join solve: {e}"));
        let (repaired, stats) = after
            .repair(&prev, &GraphDelta::DeviceJoin(joined), &obj)
            .unwrap_or_else(|e| panic!("trial {trial}: repair: {e}"));
        let (scratch, _) = after
            .resolve_ilp_with_stats(&obj)
            .unwrap_or_else(|e| panic!("trial {trial}: scratch: {e}"));

        after
            .check(&repaired)
            .unwrap_or_else(|e| panic!("trial {trial}: repaired infeasible: {e}"));
        let rv = value_of(&after, &repaired, &obj);
        let sv = value_of(&after, &scratch, &obj);
        assert!(
            (rv - sv).abs() <= 1e-6,
            "trial {trial}: repair {rv} != scratch {sv} (stats {stats:?})"
        );
    }
}

/// The fault-demo shape, exactly: a NIC-only streamer gang-bound to a
/// decoder that pulls a display (both GPU-capable). Masking the NIC must
/// cascade the whole pipeline to the host through the Gang and Pull
/// closures, matching scratch — and the dirty component must cover all
/// three pipeline nodes, not just the directly-evicted streamer.
#[test]
fn repair_closes_over_gang_and_pull_cascades() {
    // Devices: 1 = NIC, 2 = disk, 3 = GPU.
    let mut g = LayoutGraph::new();
    let streamer = g.add_node(node(1, vec![true, true, false, false], 4.0));
    let decoder = g.add_node(node(2, vec![true, false, false, true], 3.0));
    let display = g.add_node(node(3, vec![true, false, false, true], 2.0));
    let archiver = g.add_node(node(4, vec![true, false, true, false], 1.0));
    g.add_edge(streamer, decoder, ConstraintKind::Gang);
    g.add_edge(decoder, display, ConstraintKind::Pull);

    let obj = Objective::MaximizeOffloading;
    let prev = g.resolve_ilp(&obj).expect("pre-fault layout");
    assert_eq!(prev.device_of(streamer), DeviceId(1));
    assert_eq!(prev.device_of(archiver), DeviceId(2));

    g.mask_device(DeviceId(1)).expect("maskable");
    let (repaired, stats) = g
        .repair(&prev, &GraphDelta::MaskDevice(DeviceId(1)), &obj)
        .expect("repairs");
    let scratch = g.resolve_ilp(&obj).expect("scratch solves");

    assert_eq!(
        repaired.offloaded_count(),
        scratch.offloaded_count(),
        "objective-equal to scratch"
    );
    // Gang drags the decoder; Pull lets the display follow; all three
    // are in the dirty closure. The archiver is untouched and frozen.
    assert!(
        stats.repaired_nodes >= 3,
        "gang/pull closure covers the pipeline: {stats:?}"
    );
    assert_eq!(repaired.device_of(streamer), DeviceId::HOST);
    assert_eq!(repaired.device_of(decoder), DeviceId::HOST);
    assert_eq!(repaired.device_of(display), DeviceId::HOST);
    assert_eq!(repaired.device_of(archiver), DeviceId(2), "frozen in place");
    g.check(&repaired).expect("feasible");
}
