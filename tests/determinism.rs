//! Integration: whole-system determinism. Two runs with the same seed
//! must agree bit for bit; different seeds must actually differ.

use hydra::sim::time::SimDuration;
use hydra::tivo::client::{run_client, ClientConfig, ClientKind};
use hydra::tivo::server::{run_server, ServerConfig, ServerKind};

fn server_cfg(seed: u64) -> ServerConfig {
    let mut c = ServerConfig::paper(ServerKind::Simple, seed);
    c.duration = SimDuration::from_secs(8);
    c
}

#[test]
fn server_runs_replay_exactly() {
    let a = run_server(server_cfg(123));
    let b = run_server(server_cfg(123));
    assert_eq!(a.jitter_ms.values(), b.jitter_ms.values());
    assert_eq!(a.cpu_util.values(), b.cpu_util.values());
    assert_eq!(a.l2_miss_rate.values(), b.l2_miss_rate.values());
    assert_eq!(a.packets_delivered, b.packets_delivered);
}

#[test]
fn different_seeds_diverge() {
    let a = run_server(server_cfg(1));
    let b = run_server(server_cfg(2));
    assert_ne!(
        a.jitter_ms.values(),
        b.jitter_ms.values(),
        "seeds must matter"
    );
    // But the structure is stable: medians stay in the same millisecond.
    let (ma, mb) = (a.jitter_ms.summary().median, b.jitter_ms.summary().median);
    assert!((ma - mb).abs() < 1.0, "medians {ma} vs {mb}");
}

#[test]
fn client_runs_replay_exactly() {
    let mk = || {
        let mut c = ClientConfig::paper(ClientKind::Offloaded, 9);
        c.duration = SimDuration::from_secs(8);
        run_client(c)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.cpu_util.values(), b.cpu_util.values());
    assert_eq!(a.l2_miss_rate.values(), b.l2_miss_rate.values());
    assert_eq!(a.frames_decoded, b.frames_decoded);
    assert_eq!(a.bytes_stored, b.bytes_stored);
}

#[test]
fn rng_streams_are_stable_across_split_order() {
    use hydra::sim::rng::DetRng;
    let root = DetRng::new(77);
    // Children created in different orders see identical streams.
    let mut a1 = root.split(1);
    let mut b1 = root.split(2);
    let mut b2 = root.split(2);
    let mut a2 = root.split(1);
    for _ in 0..64 {
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_eq!(b1.next_u64(), b2.next_u64());
    }
}
