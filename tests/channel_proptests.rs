//! Property tests for the Channel Executive's provider auction and the
//! reliability contract of channels at capacity.

use bytes::Bytes;
use hydra::core::channel::{
    Buffering, ChannelConfig, ChannelError, ChannelExecutive, Reliability, RetryPolicy, SyncPolicy,
    Transport,
};
use hydra::core::device::DeviceId;
use hydra::sim::time::SimTime;
use proptest::prelude::*;

fn config(
    multicast: bool,
    reliable: bool,
    concurrent: bool,
    zero_copy: bool,
    capacity: usize,
    target: usize,
) -> ChannelConfig {
    ChannelConfig {
        transport: if multicast {
            Transport::Multicast
        } else {
            Transport::Unicast
        },
        reliability: if reliable {
            Reliability::Reliable
        } else {
            Reliability::Unreliable
        },
        sync: if concurrent {
            SyncPolicy::Concurrent
        } else {
            SyncPolicy::Sequential
        },
        buffering: if zero_copy {
            Buffering::ZeroCopy
        } else {
            Buffering::Copied
        },
        capacity,
        target: DeviceId(target as u32),
        retry: RetryPolicy::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The executive's pick is always a capable provider, and no capable
    /// provider advertises a strictly lower 1 kB latency.
    #[test]
    fn selection_is_capable_and_cheapest(
        multicast in any::<bool>(),
        reliable in any::<bool>(),
        concurrent in any::<bool>(),
        zero_copy in any::<bool>(),
        capacity in 1usize..=64,
        target in 0usize..4,
    ) {
        let cfg = config(multicast, reliable, concurrent, zero_copy, capacity, target);
        let mut e = ChannelExecutive::with_default_providers();
        let quotes = e.quotes(&cfg);
        prop_assert!(!quotes.is_empty(), "default providers cover every config");
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get(id).unwrap();
        let chosen = quotes
            .iter()
            .find(|(name, _, _)| name == ch.provider_name());
        prop_assert!(chosen.is_some(), "selected provider must be capable");
        let chosen_latency = chosen.unwrap().2;
        let min_latency = quotes.iter().map(|(_, _, l)| *l).min().unwrap();
        prop_assert_eq!(chosen_latency, min_latency);
        // The advertised cost on the channel matches the winning quote.
        prop_assert_eq!(ch.cost().latency(1024), chosen_latency);
        // Selection is counted per provider in the shared recorder.
        let snap = e.recorder().snapshot();
        prop_assert_eq!(
            snap.counter("channel.provider_selected", ch.provider_name()),
            Some(1)
        );
    }

    /// A reliable channel at capacity fails the send — it never drops.
    #[test]
    fn reliable_at_capacity_blocks_never_drops(
        capacity in 1usize..=8,
        extra in 1usize..=8,
        zero_copy in any::<bool>(),
        target in 1usize..4,
    ) {
        let cfg = config(false, true, false, zero_copy, capacity, target);
        let mut e = ChannelExecutive::with_default_providers();
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        for _ in 0..capacity {
            prop_assert!(ch.send(SimTime::ZERO, Bytes::from_static(b"m")).is_ok());
        }
        for _ in 0..extra {
            prop_assert_eq!(
                ch.send(SimTime::ZERO, Bytes::from_static(b"m")),
                Err(ChannelError::WouldBlock)
            );
        }
        prop_assert_eq!(ch.stats().sent, capacity as u64);
        prop_assert_eq!(ch.stats().dropped, 0);
        let snap = e.recorder().snapshot();
        prop_assert_eq!(snap.counter_total("channel.dropped"), 0);
        prop_assert_eq!(snap.counter_total("channel.sent"), capacity as u64);
    }

    /// An unreliable channel at capacity accepts the send but drops the
    /// message, counting every drop.
    #[test]
    fn unreliable_at_capacity_drops_and_counts(
        capacity in 1usize..=8,
        extra in 1usize..=8,
        zero_copy in any::<bool>(),
        target in 1usize..4,
    ) {
        let cfg = config(false, false, false, zero_copy, capacity, target);
        let mut e = ChannelExecutive::with_default_providers();
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        for _ in 0..capacity + extra {
            prop_assert!(ch.send(SimTime::ZERO, Bytes::from_static(b"m")).is_ok());
        }
        prop_assert_eq!(ch.stats().sent, capacity as u64);
        prop_assert_eq!(ch.stats().dropped, extra as u64);
        let snap = e.recorder().snapshot();
        prop_assert_eq!(snap.counter_total("channel.dropped"), extra as u64);
    }
}
