//! Property tests tying the static verifier to the solver pipeline:
//!
//! * any well-formed ODF set (unique GUIDs, resolved acyclic imports, a
//!   shared feasible device class) verifies with **zero errors**, and the
//!   exact ILP solver resolves its layout graph;
//! * targeted mutations of such a set — dangling an import, shrinking a
//!   device class to the empty set, adding a Gang back-edge — fire the
//!   matching `HVxxx` diagnostic every time.

use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::core::layout::{LayoutGraph, Objective};
use hydra::odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra::verify::{HvCode, Report, VerifyInput};
use proptest::prelude::*;

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

fn constraint_from(idx: u8) -> ConstraintKind {
    match idx % 4 {
        0 => ConstraintKind::Link,
        1 => ConstraintKind::Pull,
        2 => ConstraintKind::Gang,
        _ => ConstraintKind::AsymGang,
    }
}

fn testbed() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    reg
}

/// Decodes one packed `u64` into a candidate `(from, to, kind)` edge.
fn decode_edge(v: u64) -> (usize, usize, u8) {
    (
        (v % 6) as usize,
        ((v / 6) % 6) as usize,
        ((v / 36) % 4) as u8,
    )
}

/// A well-formed ODF set: node `i` has GUID `i+1`; every node targets the
/// network class (so every Pull has a common feasible device) plus a
/// random extra class; imports only point forward (`i -> i+1..n`), so the
/// constraint graph is acyclic.
fn valid_set(extra_classes: &[u8], edges: &[u64]) -> Vec<OdfDocument> {
    let n = extra_classes.len();
    let mut odfs: Vec<OdfDocument> = (0..n)
        .map(|i| {
            let mut odf = OdfDocument::new(format!("oc.N{i}"), Guid(i as u64 + 1))
                .with_target(class(class_ids::NETWORK));
            match extra_classes[i] % 3 {
                0 => {}
                1 => odf.targets.push(class(class_ids::STORAGE)),
                _ => odf.targets.push(class(class_ids::GPU)),
            }
            odf
        })
        .collect();
    for (a, b, kind) in edges.iter().copied().map(decode_edge) {
        let (from, to) = (a % n, b % n);
        if from >= to {
            continue; // forward edges only: keeps the import graph acyclic
        }
        let guid = Guid(to as u64 + 1);
        if odfs[from].imports.iter().any(|i| i.guid == guid) {
            continue;
        }
        odfs[from].imports.push(Import {
            file: String::new(),
            bind_name: format!("oc.N{to}"),
            guid,
            constraint: constraint_from(kind),
            priority: 0,
        });
    }
    odfs
}

fn verify_set(odfs: &[OdfDocument]) -> Report {
    let table = testbed().verify_table();
    hydra::verify::verify(&VerifyInput {
        odfs,
        devices: &table,
        demands: None,
        roots: None,
    })
}

fn has_code(report: &Report, code: HvCode) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid sets verify without errors and their layout graphs resolve.
    #[test]
    fn valid_sets_are_clean_and_solvable(
        extra in proptest::collection::vec(0u8..3, 1..6),
        edges in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let odfs = valid_set(&extra, &edges);
        let report = verify_set(&odfs);
        prop_assert!(
            !report.has_errors(),
            "valid set must verify clean: {}",
            report.render_human()
        );

        let reg = testbed();
        let graph = LayoutGraph::from_odfs(&odfs, &reg).expect("valid set builds a graph");
        let placement = graph.resolve_ilp(&Objective::MaximizeOffloading);
        prop_assert!(placement.is_ok(), "solver must accept a verified-clean set");
    }

    /// Dangling an import (the verifier's HV002) is always caught.
    #[test]
    fn dangling_import_fires_hv002(
        extra in proptest::collection::vec(0u8..3, 2..6),
        edges in proptest::collection::vec(any::<u64>(), 0..8),
        which in any::<u64>(),
    ) {
        let mut odfs = valid_set(&extra, &edges);
        // Guarantee at least one import to dangle (the random edges may
        // all have been skipped as backward or duplicate).
        if odfs.iter().all(|o| o.imports.is_empty()) {
            let n = odfs.len();
            odfs[0].imports.push(Import {
                file: String::new(),
                bind_name: format!("oc.N{}", n - 1),
                guid: Guid(n as u64),
                constraint: ConstraintKind::Link,
                priority: 0,
            });
        }
        let importers: Vec<usize> = (0..odfs.len())
            .filter(|&i| !odfs[i].imports.is_empty())
            .collect();
        let i = importers[(which as usize) % importers.len()];
        odfs[i].imports[0].guid = Guid(999); // no such Offcode in the set
        let report = verify_set(&odfs);
        prop_assert!(report.has_errors());
        prop_assert!(has_code(&report, HvCode::DanglingImport));
    }

    /// Shrinking a device class to the empty set (no installed device can
    /// match the spec) fires HV007 on that spec.
    #[test]
    fn empty_device_class_fires_hv007(
        extra in proptest::collection::vec(0u8..3, 1..6),
        edges in proptest::collection::vec(any::<u64>(), 0..8),
        which in any::<u64>(),
    ) {
        let mut odfs = valid_set(&extra, &edges);
        let i = (which as usize) % odfs.len();
        let mut impossible = class(class_ids::NETWORK);
        impossible.vendor = Some("NoSuchVendor".into());
        odfs[i].targets = vec![impossible];
        let report = verify_set(&odfs);
        prop_assert!(has_code(&report, HvCode::UnsatisfiableTargetSpec));
    }

    /// Adding a Gang back-edge to an acyclic chain creates a constraint
    /// cycle the verifier must reject (HV010).
    #[test]
    fn gang_back_edge_fires_hv010(
        extra in proptest::collection::vec(0u8..3, 2..6),
        edges in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let mut odfs = valid_set(&extra, &edges);
        let n = odfs.len();
        // Forward chain link so the back-edge closes a cycle even with no
        // random edges, then the back-edge itself.
        let forward: Vec<Import> = vec![Import {
            file: String::new(),
            bind_name: format!("oc.N{}", n - 1),
            guid: Guid(n as u64),
            constraint: ConstraintKind::Gang,
            priority: 0,
        }];
        odfs[0].imports.retain(|imp| imp.guid != Guid(n as u64));
        odfs[0].imports.extend(forward);
        odfs[n - 1].imports.retain(|imp| imp.guid != Guid(1));
        odfs[n - 1].imports.push(Import {
            file: String::new(),
            bind_name: "oc.N0".into(),
            guid: Guid(1),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
        let report = verify_set(&odfs);
        prop_assert!(report.has_errors());
        prop_assert!(has_code(&report, HvCode::GangCycle));
    }
}
