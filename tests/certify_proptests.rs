//! Property tests for the quantitative certification passes:
//!
//! * certification of any well-formed declared-traffic chain is
//!   **deterministic** — two runs emit byte-identical reports and
//!   certificates;
//! * for any chain the certifier accepts, replaying the declared
//!   arrival curves against real channels observes p99 latencies and
//!   queue depths **inside** the certified bounds (the differential,
//!   property-sized);
//! * seeded overload mutations always fire the matching diagnostic:
//!   an oversized burst fires `HV040`, an unserviceable rate `HV041`.

use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::odf::odf::{
    class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument, TrafficSpec,
};
use hydra::tivo::certify::{certify_service_table, observe_declared};
use hydra::verify::{Certification, CertifyInput, HvCode, VerifyInput};
use proptest::prelude::*;

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

fn certify(odfs: &[OdfDocument]) -> Certification {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    let table = reg.verify_table();
    let services = certify_service_table();
    hydra::verify::certify(&CertifyInput {
        verify: VerifyInput {
            odfs,
            devices: &table,
            demands: None,
            roots: None,
        },
        services: &services,
        overlay: None,
    })
}

/// One hop of a generated pipeline: the writer's declared curve plus
/// the serving node's target class (`None` = host-only).
#[derive(Debug, Clone)]
struct Hop {
    rate_per_sec: u64,
    burst: u64,
    max_bytes: u64,
    target: Option<u32>,
}

/// Derives one hop from a random seed (the vendored proptest has no
/// tuple strategies, so composite values unpack a `u64`).
fn hop(seed: u64) -> Hop {
    Hop {
        rate_per_sec: 500 + seed % 4_500,
        burst: 1 + (seed >> 16) % 2,
        max_bytes: [64, 1_024, 16_384][((seed >> 32) % 3) as usize],
        target: [
            None,
            Some(class_ids::NETWORK),
            Some(class_ids::STORAGE),
            Some(class_ids::GPU),
        ][((seed >> 48) % 4) as usize],
    }
}

/// A linear pipeline `chain.0 -> chain.1 -> ...`: every node but the
/// last declares its curve toward the next. Single-writer rings with
/// modest rates, so the set always certifies clean.
fn chain(seeds: &[u64]) -> Vec<OdfDocument> {
    let n = seeds.len();
    seeds
        .iter()
        .map(|&s| hop(s))
        .enumerate()
        .map(|(i, h)| {
            let mut odf = OdfDocument::new(format!("chain.{i}"), Guid(0x4000 + i as u64));
            if let Some(id) = h.target {
                odf = odf.with_target(class(id));
            }
            if i + 1 < n {
                odf = odf
                    .with_traffic(TrafficSpec {
                        rate_per_sec: h.rate_per_sec,
                        burst: h.burst,
                        max_bytes: h.max_bytes,
                    })
                    .with_import(Import {
                        file: String::new(),
                        bind_name: format!("chain.{}", i + 1),
                        guid: Guid(0x4000 + (i + 1) as u64),
                        constraint: ConstraintKind::Link,
                        priority: 0,
                    });
            }
            odf
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn certification_is_deterministic(seeds in proptest::collection::vec(any::<u64>(), 2..5)) {
        let odfs = chain(&seeds);
        let a = certify(&odfs);
        let b = certify(&odfs);
        prop_assert_eq!(a.report.to_json(), b.report.to_json());
        prop_assert_eq!(a.certificate.to_json(), b.certificate.to_json());
    }

    #[test]
    fn accepted_chains_bracket_their_replay(seeds in proptest::collection::vec(any::<u64>(), 2..4)) {
        let odfs = chain(&seeds);
        let cert = certify(&odfs);
        prop_assert!(!cert.report.has_errors(), "modest chains certify clean");
        let obs = observe_declared(&odfs);
        for ch in &obs.channels {
            let bound = cert.certificate.channel(&ch.ring).expect("certified ring");
            let latency = bound.latency_bound_ns.expect("stable ring");
            prop_assert!(
                ch.p99_ns <= latency,
                "{}: observed p99 {} escapes bound {}", ch.ring, ch.p99_ns, latency
            );
            prop_assert!(
                ch.peak_depth <= bound.queue_bound,
                "{}: observed depth {} escapes bound {}", ch.ring, ch.peak_depth, bound.queue_bound
            );
        }
    }

    #[test]
    fn oversized_bursts_always_fire_hv040(
        seeds in proptest::collection::vec(any::<u64>(), 2..4),
        burst in 100u64..400,
    ) {
        let mut odfs = chain(&seeds);
        let t = odfs[0].traffic.expect("writer declares traffic");
        odfs[0] = odfs[0].clone().with_traffic(TrafficSpec { burst, ..t });
        let cert = certify(&odfs);
        prop_assert!(
            cert.report.errors().any(|d| d.code == HvCode::QueueBoundExceedsRing),
            "burst {} must overflow the 64-entry ring:\n{}",
            burst,
            cert.report.render_human()
        );
    }

    #[test]
    fn unserviceable_rates_always_fire_hv041(seeds in proptest::collection::vec(any::<u64>(), 2..4)) {
        let mut odfs = chain(&seeds);
        let t = odfs[0].traffic.expect("writer declares traffic");
        odfs[0] = odfs[0].clone().with_traffic(TrafficSpec {
            rate_per_sec: 1_000_000,
            max_bytes: 16_384,
            ..t
        });
        let cert = certify(&odfs);
        prop_assert!(
            cert.report.errors().any(|d| d.code == HvCode::UnstableChannel),
            "a 1M msg/s 16 KiB feed cannot be stable:\n{}",
            cert.report.render_human()
        );
    }
}
