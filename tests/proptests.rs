//! Property-based tests over the workspace's core data structures and
//! invariants.

use bytes::Bytes;
use proptest::prelude::*;

use hydra::core::call::{Call, Value};
use hydra::hw::cache::{AccessKind, AccessOutcome, Cache, CacheConfig};
use hydra::ilp::model::{Direction, Problem, Sense};
use hydra::ilp::{solve_by_enumeration, solve_ilp, Outcome};
use hydra::link::object::{HofObject, Section, Symbol, SymbolKind};
use hydra::media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
use hydra::media::entropy::{
    decode_block, encode_block, get_varint, put_varint, zz_decode, zz_encode,
};
use hydra::media::frame::RawFrame;
use hydra::media::transform::{dequantize, forward, inverse, quantize};
use hydra::odf::odf::{ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra::odf::xml;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<u32>().prop_map(Value::U32),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|v| Value::Bytes(Bytes::from(v))),
        "[a-zA-Z0-9 _-]{0,64}".prop_map(Value::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- call marshaling ------------------------------------------------

    #[test]
    fn call_round_trips(
        guid in any::<u64>(),
        op in "[a-z_]{1,24}",
        ret in any::<u64>(),
        args in proptest::collection::vec(value_strategy(), 0..8),
    ) {
        let mut call = Call::new(Guid(guid), op).with_return_id(ret);
        call.args = args;
        let wire = call.encode();
        prop_assert_eq!(wire.len(), call.wire_size());
        let decoded = Call::decode(wire).expect("round trip");
        prop_assert_eq!(decoded, call);
    }

    #[test]
    fn call_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Call::decode(Bytes::from(raw));
    }

    // ---- varints / zigzag ----------------------------------------------

    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = bytes::BytesMut::new();
        put_varint(&mut buf, v);
        let mut raw = buf.freeze();
        prop_assert_eq!(get_varint(&mut raw).expect("valid varint"), v);
        prop_assert!(raw.is_empty());
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(zz_decode(zz_encode(v)), v);
    }

    // ---- transform / entropy --------------------------------------------

    #[test]
    fn transform_pair_is_identity(vals in proptest::collection::vec(-255i32..=255, 64)) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&vals);
        let original = block;
        forward(&mut block);
        inverse(&mut block);
        prop_assert_eq!(block, original);
    }

    #[test]
    fn quantize_error_bounded(
        vals in proptest::collection::vec(-20_000i32..=20_000, 64),
        q in 1u16..=64,
    ) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&vals);
        let original = block;
        quantize(&mut block, q);
        dequantize(&mut block, q);
        for (a, b) in original.iter().zip(&block) {
            prop_assert!((a - b).abs() <= i32::from(q) / 2 + 1);
        }
    }

    #[test]
    fn entropy_block_round_trips(vals in proptest::collection::vec(-1000i32..=1000, 64)) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&vals);
        let mut buf = bytes::BytesMut::new();
        encode_block(&mut buf, &block);
        let mut out = [0i32; 64];
        decode_block(&mut buf.freeze(), &mut out).expect("round trip");
        prop_assert_eq!(out, block);
    }

    #[test]
    fn entropy_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_block(&mut Bytes::from(raw), &mut [0i32; 64]);
    }

    // ---- codec -----------------------------------------------------------

    #[test]
    fn codec_lossless_at_q1(seed in 0u64..1000, n in 1u64..6) {
        let video = hydra::media::frame::SyntheticVideo::new(16, 16);
        let frames: Vec<RawFrame> = (0..n).map(|i| video.frame(seed + i)).collect();
        let stream = Encoder::new(CodecConfig { quantizer: 1, gop: GopConfig::ipp() })
            .encode_sequence(&frames);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for f in &stream {
            out.extend(dec.push(f).expect("valid stream"));
        }
        out.extend(dec.flush());
        out.sort_by_key(|(i, _)| *i);
        let decoded: Vec<RawFrame> = out.into_iter().map(|(_, f)| f).collect();
        prop_assert_eq!(decoded, frames);
    }

    // ---- cache ------------------------------------------------------------

    #[test]
    fn cache_hit_after_fill(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..64)) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 4,
        });
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
            // Immediately after an access the line must be present.
            prop_assert_eq!(cache.access(a, AccessKind::Read), AccessOutcome::Hit);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64 * 2);
        prop_assert!(stats.misses <= addrs.len() as u64);
        prop_assert!(cache.resident_lines() <= 16 * 1024 / 64);
    }

    #[test]
    fn cache_miss_count_bounded_by_unique_lines(
        addrs in proptest::collection::vec(0u64..1u64 << 14, 1..256),
    ) {
        // A cache at least as large as the address space never conflicts:
        // misses == unique lines touched.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        });
        let mut unique = std::collections::HashSet::new();
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
            unique.insert(a / 64);
        }
        prop_assert_eq!(cache.stats().misses, unique.len() as u64);
    }

    // ---- ODF / XML ---------------------------------------------------------

    #[test]
    fn odf_round_trips(
        guid in 1u64..1u64 << 48,
        name in "[a-zA-Z][a-zA-Z0-9.]{0,32}",
        n_imports in 0usize..4,
        n_targets in 0usize..3,
    ) {
        let mut odf = OdfDocument::new(name, Guid(guid));
        for i in 0..n_imports {
            odf = odf.with_import(Import {
                file: format!("/offcodes/dep{i}.odf"),
                bind_name: format!("dep{i}"),
                guid: Guid(guid + 1 + i as u64),
                constraint: match i % 4 {
                    0 => ConstraintKind::Link,
                    1 => ConstraintKind::Pull,
                    2 => ConstraintKind::Gang,
                    _ => ConstraintKind::AsymGang,
                },
                priority: (i % 250) as u8,
            });
        }
        for t in 0..n_targets {
            odf = odf.with_target(DeviceClassSpec {
                id: t as u32,
                name: format!("class{t}"),
                bus: if t % 2 == 0 { Some("pci".into()) } else { None },
                mac: None,
                vendor: None,
            });
        }
        let re = OdfDocument::parse(&odf.to_xml()).expect("round trip");
        prop_assert_eq!(re, odf);
    }

    #[test]
    fn xml_text_escaping_round_trips(text in "[ -~]{0,64}") {
        let el = xml::Element {
            name: "t".into(),
            attributes: vec![("a".into(), text.clone())],
            children: vec![xml::Node::Text(text.clone())],
        };
        let parsed = xml::parse(&el.to_xml()).expect("serializer output parses");
        prop_assert_eq!(parsed.attr("a").expect("attr present"), text.as_str());
        prop_assert_eq!(parsed.text(), text.trim());
    }

    #[test]
    fn xml_parse_never_panics(doc in "[ -~]{0,128}") {
        let _ = xml::parse(&doc);
    }

    // ---- HOF objects ---------------------------------------------------------

    #[test]
    fn hof_round_trips(
        name in "[a-z.]{1,24}",
        text_len in 0usize..512,
        data_len in 0usize..256,
        bss in 0u32..4096,
    ) {
        let obj = HofObject::new(name)
            .with_section(Section::text(vec![0xAB; text_len]))
            .with_section(Section::data(vec![0xCD; data_len]))
            .with_section(Section::bss(bss))
            .with_symbol(Symbol {
                name: "entry".into(),
                kind: SymbolKind::Defined { section: 0, offset: 0 },
            });
        let decoded = HofObject::decode(obj.encode()).expect("round trip");
        prop_assert_eq!(decoded, obj);
    }

    #[test]
    fn hof_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = HofObject::decode(Bytes::from(raw));
    }

    // ---- ILP -------------------------------------------------------------------

    #[test]
    fn bnb_matches_enumeration(
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = hydra::sim::rng::DetRng::new(seed);
        let mut p = Problem::new(if seed.is_multiple_of(2) { Direction::Maximize } else { Direction::Minimize });
        let vars: Vec<_> = (0..n).map(|i| p.add_binary(&format!("x{i}"))).collect();
        p.set_objective(vars.iter().map(|&v| (v, rng.normal(0.0, 3.0))).collect());
        for c in 0..2 + n / 2 {
            let terms: Vec<_> = vars.iter().map(|&v| (v, rng.normal(0.0, 2.0))).collect();
            let sense = if rng.chance(0.5) { Sense::Le } else { Sense::Ge };
            p.add_constraint(&format!("c{c}"), terms, sense, rng.normal(0.0, 2.0));
        }
        let exact = solve_ilp(&p).outcome;
        let brute = solve_by_enumeration(&p);
        match (&exact, &brute) {
            (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-6,
                    "bnb {} vs brute {}", a.objective, b.objective);
                prop_assert!(p.check_feasible(&a.values, 1e-6).is_ok());
            }
            (Outcome::Infeasible, Outcome::Infeasible) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }
}
