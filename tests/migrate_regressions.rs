//! Regression tests for the migration/teardown fixes: a migration must
//! never lose the Offcode, capacity must be prechecked before the source
//! is destroyed, every post-teardown failure leg must recover on the
//! host, and tearing an instance down must close its endpoints on every
//! channel it is connected to — not just its own OOB channel.

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use hydra::core::call::{Call, Value};
use hydra::core::channel::{
    Buffering, ChannelConfig, Reliability, RetryPolicy, SyncPolicy, Transport,
};
use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra::core::error::{MigrateError, MigrateLeg, RuntimeError};
use hydra::core::offcode::{Offcode, OffcodeCtx};
use hydra::core::runtime::{Runtime, RuntimeConfig};
use hydra::odf::odf::{class_ids, DeviceClassSpec, Guid, OdfDocument};
use hydra::sim::time::SimTime;
use proptest::prelude::*;

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

/// A snapshot-able counter whose restore/start legs can be made to fail a
/// programmed number of times (shared across instances via the factory).
#[derive(Debug)]
struct Counter {
    guid: Guid,
    name: String,
    count: u64,
    fail_restores: Rc<Cell<u32>>,
    fail_starts: Rc<Cell<u32>>,
}

impl Counter {
    fn boxed(guid: Guid, name: &str) -> Box<Counter> {
        Box::new(Counter {
            guid,
            name: name.to_owned(),
            count: 0,
            fail_restores: Rc::new(Cell::new(0)),
            fail_starts: Rc::new(Cell::new(0)),
        })
    }
}

impl Offcode for Counter {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        &self.name
    }
    fn start(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
        let left = self.fail_starts.get();
        if left > 0 {
            self.fail_starts.set(left - 1);
            return Err(RuntimeError::Rejected("injected start failure".into()));
        }
        Ok(())
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        match call.operation.as_str() {
            "get" => Ok(Value::U64(self.count)),
            _ => {
                self.count += 1;
                Ok(Value::U64(self.count))
            }
        }
    }
    fn snapshot(&self) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(&self.count.to_le_bytes()))
    }
    fn restore(&mut self, state: Bytes) -> Result<(), RuntimeError> {
        let left = self.fail_restores.get();
        if left > 0 {
            self.fail_restores.set(left - 1);
            return Err(RuntimeError::Rejected("injected restore failure".into()));
        }
        let raw: [u8; 8] = state
            .as_ref()
            .try_into()
            .map_err(|_| RuntimeError::Rejected("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(raw);
        Ok(())
    }
}

/// Registers the counter; returns the shared failure knobs.
fn register_counter(rt: &mut Runtime) -> (Rc<Cell<u32>>, Rc<Cell<u32>>) {
    let fail_restores = Rc::new(Cell::new(0u32));
    let fail_starts = Rc::new(Cell::new(0u32));
    let (fr, fs) = (Rc::clone(&fail_restores), Rc::clone(&fail_starts));
    let odf = OdfDocument::new("test.Counter", Guid(7))
        .with_target(class(class_ids::NETWORK))
        .with_target(class(class_ids::GPU));
    rt.register_offcode(odf, move || {
        Box::new(Counter {
            guid: Guid(7),
            name: "test.Counter".to_owned(),
            count: 0,
            fail_restores: Rc::clone(&fr),
            fail_starts: Rc::clone(&fs),
        })
    })
    .expect("fresh depot");
    (fail_restores, fail_starts)
}

fn bump(rt: &mut Runtime, guid: Guid, times: u64) {
    let id = rt.get_offcode(guid).expect("deployed");
    for _ in 0..times {
        rt.invoke(id, &Call::new(guid, "inc"), SimTime::ZERO)
            .expect("handled");
    }
}

fn read_count(rt: &mut Runtime, guid: Guid) -> u64 {
    let id = rt.get_offcode(guid).expect("deployed");
    match rt.invoke(id, &Call::new(guid, "get"), SimTime::from_millis(50)) {
        Ok(Value::U64(n)) => n,
        other => panic!("unexpected: {other:?}"),
    }
}

/// Satellite (b): migrating to a target without capacity must fail the
/// precheck *before* the source instance is destroyed. Pre-PR code tore
/// the source down first and silently host-fell-back, returning `Ok`.
#[test]
fn capacity_precheck_rejects_before_teardown() {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1, 2 MB
    let mut tiny = DeviceDescriptor::gpu();
    tiny.offcode_memory = 1024; // dev2: far below the object's load size
    reg.install(tiny);
    let mut rt = Runtime::new(reg, RuntimeConfig::default());
    register_counter(&mut rt);
    let id = rt.create_offcode(Guid(7), SimTime::ZERO).expect("deploys");
    let home = rt.device_of(id).expect("live");
    bump(&mut rt, Guid(7), 4);

    let err = rt
        .migrate(id, DeviceId(2), SimTime::from_millis(1))
        .expect_err("1 kB of device memory cannot hold the image");
    assert!(
        matches!(
            err,
            RuntimeError::Migrate(MigrateError::InsufficientCapacity { .. })
        ),
        "wrong error: {err}"
    );
    // The source instance was never touched.
    assert_eq!(rt.get_offcode(Guid(7)), Some(id), "same instance survives");
    assert_eq!(rt.device_of(id), Some(home), "still on its home device");
    assert_eq!(read_count(&mut rt, Guid(7)), 4, "state intact");
    assert!(rt.audit_connections().is_empty());
}

/// Satellite (a), restore leg: a restore failure at the target must not
/// lose the Offcode — it recovers on the host with the snapshot intact,
/// reported as a structured `FellBack` error. Pre-PR code returned a bare
/// `Rejected` with the instance and its state already destroyed.
#[test]
fn restore_failure_falls_back_to_host_with_state() {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::gpu()); // dev2
    let mut rt = Runtime::new(reg, RuntimeConfig::default());
    let (fail_restores, _) = register_counter(&mut rt);
    let id = rt.create_offcode(Guid(7), SimTime::ZERO).expect("deploys");
    let home = rt.device_of(id).expect("live");
    let target = if home == DeviceId(1) {
        DeviceId(2)
    } else {
        DeviceId(1)
    };
    bump(&mut rt, Guid(7), 5);

    fail_restores.set(1); // the target-side restore fails; the host one works
    let err = rt
        .migrate(id, target, SimTime::from_millis(1))
        .expect_err("restore leg fails");
    let RuntimeError::Migrate(MigrateError::FellBack { leg, fallback, .. }) = err else {
        panic!("wrong error: {err}");
    };
    assert_eq!(leg, MigrateLeg::Restore);
    assert_eq!(rt.get_offcode(Guid(7)), Some(fallback));
    assert_eq!(rt.device_of(fallback), Some(DeviceId::HOST));
    assert_eq!(read_count(&mut rt, Guid(7)), 5, "snapshot survived the leg");
    assert!(rt.audit_connections().is_empty());
}

/// Satellite (a), start leg: same contract when the phase hook fails
/// after restore succeeded.
#[test]
fn start_failure_falls_back_to_host_with_state() {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::gpu()); // dev2
    let mut rt = Runtime::new(reg, RuntimeConfig::default());
    let (_, fail_starts) = register_counter(&mut rt);
    let id = rt.create_offcode(Guid(7), SimTime::ZERO).expect("deploys");
    let home = rt.device_of(id).expect("live");
    let target = if home == DeviceId(1) {
        DeviceId(2)
    } else {
        DeviceId(1)
    };
    bump(&mut rt, Guid(7), 9);

    fail_starts.set(1); // the target-side start fails; the host one works
    let err = rt
        .migrate(id, target, SimTime::from_millis(1))
        .expect_err("start leg fails");
    let RuntimeError::Migrate(MigrateError::FellBack { leg, fallback, .. }) = err else {
        panic!("wrong error: {err}");
    };
    assert_eq!(leg, MigrateLeg::Start);
    assert_eq!(rt.device_of(fallback), Some(DeviceId::HOST));
    assert_eq!(read_count(&mut rt, Guid(7)), 9);
    assert!(rt.audit_connections().is_empty());
}

/// Satellite (a): migrating an Offcode with no snapshot support is a
/// structured rejection, not a teardown.
#[test]
fn non_migratable_offcode_is_rejected_up_front() {
    #[derive(Debug)]
    struct Plain;
    impl Offcode for Plain {
        fn guid(&self) -> Guid {
            Guid(8)
        }
        fn bind_name(&self) -> &'static str {
            "test.Plain"
        }
        fn handle_call(
            &mut self,
            _ctx: &mut OffcodeCtx,
            _call: &Call,
        ) -> Result<Value, RuntimeError> {
            Ok(Value::Unit)
        }
    }
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    let mut rt = Runtime::new(reg, RuntimeConfig::default());
    rt.register_offcode(
        OdfDocument::new("test.Plain", Guid(8)).with_target(class(class_ids::NETWORK)),
        || Box::new(Plain),
    )
    .expect("fresh depot");
    let id = rt.create_offcode(Guid(8), SimTime::ZERO).expect("deploys");
    let err = rt
        .migrate(id, DeviceId::HOST, SimTime::from_millis(1))
        .expect_err("no snapshot support");
    assert!(matches!(
        err,
        RuntimeError::Migrate(MigrateError::NotMigratable { .. })
    ));
    assert_eq!(rt.get_offcode(Guid(8)), Some(id), "nothing was torn down");
}

fn multicast_config(target: DeviceId) -> ChannelConfig {
    ChannelConfig {
        transport: Transport::Multicast,
        reliability: Reliability::Reliable,
        sync: SyncPolicy::Sequential,
        buffering: Buffering::Copied,
        capacity: 16,
        target,
        retry: RetryPolicy::none(),
    }
}

/// Satellite (c): tearing down an Offcode that is an endpoint on another
/// channel mid-send must close that endpoint (visible as an
/// `endpoint_closed` drop) and leave no dangling connection entries.
/// Pre-PR code only destroyed the instance's own OOB channel.
#[test]
fn teardown_closes_endpoints_on_foreign_channels() {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    let mut rt = Runtime::new(reg, RuntimeConfig::default());
    let (_, _) = register_counter(&mut rt);
    rt.register_offcode(
        OdfDocument::new("test.Second", Guid(9)).with_target(class(class_ids::NETWORK)),
        || Counter::boxed(Guid(9), "test.Second"),
    )
    .expect("fresh depot");
    let a = rt.create_offcode(Guid(7), SimTime::ZERO).expect("deploys");
    let b = rt.create_offcode(Guid(9), SimTime::ZERO).expect("deploys");
    let dev = rt.device_of(a).expect("live");
    assert_eq!(rt.device_of(b), Some(dev), "both share the device");

    let chan = rt.create_channel(multicast_config(dev)).expect("provider");
    rt.connect_offcode(chan, a).expect("connects");
    rt.connect_offcode(chan, b).expect("connects");
    // A message is pending in both endpoint queues when b dies.
    rt.send_call(chan, &Call::new(Guid(7), "inc"), SimTime::ZERO)
        .expect("accepted");

    assert!(rt.teardown(b));
    let snap = rt.metrics_snapshot();
    assert!(
        snap.counter_total("channel.endpoint_closed") >= 1,
        "b's endpoint on the shared channel was closed"
    );
    assert!(
        snap.events_kind("drop")
            .iter()
            .any(|d| d.name == "channel.endpoint_closed"),
        "the pending message's trace records the closure"
    );
    assert!(
        rt.audit_connections().is_empty(),
        "no dangling connection entries: {:?}",
        rt.audit_connections()
    );
    // The surviving endpoint still delivers.
    let delivered = rt.pump(SimTime::from_millis(10));
    assert!(
        delivered.iter().any(|d| d.handler == a),
        "a still receives on the shared channel: {delivered:?}"
    );
    // Removing the last endpoint retires the connection key too.
    assert!(rt.teardown(a));
    assert!(rt.audit_connections().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite (c): under arbitrary deploy → connect → teardown
    /// interleavings the connection table never holds an orphaned entry.
    #[test]
    fn random_lifecycles_never_dangle(ops in proptest::collection::vec(0u8..6, 1..40)) {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic());
        let mut rt = Runtime::new(reg, RuntimeConfig::default());
        for g in 0..3u64 {
            let guid = Guid(100 + g);
            let name = format!("test.P{g}");
            let odf = OdfDocument::new(name.clone(), guid)
                .with_target(class(class_ids::NETWORK));
            rt.register_offcode(odf, move || Counter::boxed(guid, &name))
                .expect("fresh depot");
        }
        let mut chan = None;
        for (step, op) in ops.iter().enumerate() {
            let guid = Guid(100 + u64::from(*op) % 3);
            match op % 6 {
                0 | 1 => {
                    // Deploy (idempotent: already-deployed guids reject).
                    let _ = rt.create_offcode(guid, SimTime::ZERO);
                }
                2 => {
                    if chan.is_none() {
                        chan = rt.create_channel(multicast_config(DeviceId(1))).ok();
                    }
                    if let (Some(c), Some(id)) = (chan, rt.get_offcode(guid)) {
                        let _ = rt.connect_offcode(c, id);
                    }
                }
                3 => {
                    if let Some(c) = chan {
                        let _ = rt.send_call(c, &Call::new(guid, "inc"), SimTime::ZERO);
                    }
                }
                _ => {
                    if let Some(id) = rt.get_offcode(guid) {
                        rt.teardown(id);
                    }
                }
            }
            prop_assert!(
                rt.audit_connections().is_empty(),
                "dangling entries after step {step}: {:?}",
                rt.audit_connections()
            );
        }
    }
}
