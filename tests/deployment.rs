//! Integration: the full deployment pipeline across crates — XML ODFs in,
//! running offcodes out, with resources cleaned up on teardown.

use bytes::Bytes;
use hydra::core::call::{Call, Value};
use hydra::core::channel::ChannelConfig;
use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra::core::error::RuntimeError;
use hydra::core::offcode::{Offcode, OffcodeCtx};
use hydra::core::runtime::{Lifecycle, Runtime, RuntimeConfig};
use hydra::hw::cpu::Cycles;
use hydra::odf::odf::{Guid, OdfDocument};
use hydra::sim::time::SimTime;

#[derive(Debug)]
struct Echo {
    guid: Guid,
    name: String,
}

impl Offcode for Echo {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        &self.name
    }
    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        ctx.charge(Cycles::new(10));
        Ok(call.args.first().cloned().unwrap_or(Value::Unit))
    }
}

fn machine() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic());
    reg.install(DeviceDescriptor::smart_disk());
    reg.install(DeviceDescriptor::gpu());
    reg
}

/// The paper's Figure 4 ODF drives a real deployment.
#[test]
fn xml_odf_to_running_offcode() {
    let socket_odf = r"<offcode>
      <package>
        <bindname>hydra.net.utils.Socket</bindname>
        <GUID>7070714</GUID>
      </package>
      <sw-env>
        <import>
          <file>/offcodes/checksum.xdf</file>
          <bindname>hydra.net.utils.Checksum</bindname>
          <reference type=Pull pri=0/>
          <GUID>6060843</GUID>
        </import>
      </sw-env>
      <targets>
        <device-class id=0x0001>
          <name>Network Device</name>
          <bus>pci</bus>
          <mac>ethernet</mac>
          <vendor>3COM</vendor>
        </device-class>
      </targets>
    </offcode>";
    let checksum_odf = r"<offcode>
      <package>
        <bindname>hydra.net.utils.Checksum</bindname>
        <GUID>6060843</GUID>
      </package>
      <targets>
        <device-class id=0x0001><name>Network Device</name></device-class>
      </targets>
    </offcode>";

    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    for xml in [socket_odf, checksum_odf] {
        let odf = OdfDocument::parse(xml).expect("paper ODF parses");
        let guid = odf.guid;
        let name = odf.bind_name.clone();
        rt.register_offcode(odf, move || {
            Box::new(Echo {
                guid,
                name: name.clone(),
            })
        })
        .expect("fresh GUIDs");
    }

    let socket = rt
        .create_offcode(Guid(7070714), SimTime::ZERO)
        .expect("deploys");
    let checksum = rt.get_offcode(Guid(6060843)).expect("import deployed too");
    // Pull constraint: same device, and it is the NIC.
    assert_eq!(rt.device_of(socket), Some(DeviceId(1)));
    assert_eq!(rt.device_of(socket), rt.device_of(checksum));
    for d in rt.deployments() {
        assert_eq!(d.state, Lifecycle::Started);
    }
}

#[test]
fn invoke_and_channel_paths_agree() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    let odf = OdfDocument::new("echo", Guid(5)).with_target(hydra::odf::odf::DeviceClassSpec {
        id: hydra::odf::odf::class_ids::GPU,
        name: "GPU".into(),
        bus: None,
        mac: None,
        vendor: None,
    });
    rt.register_offcode(odf, || {
        Box::new(Echo {
            guid: Guid(5),
            name: "echo".into(),
        })
    })
    .expect("registers");
    let id = rt.create_offcode(Guid(5), SimTime::ZERO).expect("deploys");
    let device = rt.device_of(id).expect("placed");
    assert_eq!(device, DeviceId(3));

    let chan = rt
        .create_channel(ChannelConfig::figure3(device))
        .expect("provider exists");
    rt.connect_offcode(chan, id).expect("connects");
    let call = Call::new(Guid(5), "echo")
        .with_arg(Value::Bytes(Bytes::from_static(b"payload")))
        .with_return_id(1);
    let at = rt.send_call(chan, &call, SimTime::ZERO).expect("sends");
    let dispatched = rt.pump(at);
    let direct = rt.invoke(id, &call, at).expect("invokes");
    assert_eq!(dispatched.len(), 1);
    assert_eq!(dispatched[0].result.as_ref().ok(), Some(&direct));
    // Work booked on the GPU only.
    assert!(rt.device_work(DeviceId(3)).get() > 0);
    assert_eq!(rt.device_work(DeviceId::HOST).get(), 0);
}

#[test]
fn teardown_cascades_resources() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.register_offcode(OdfDocument::new("a", Guid(1)), || {
        Box::new(Echo {
            guid: Guid(1),
            name: "a".into(),
        })
    })
    .expect("registers");
    let id = rt.create_offcode(Guid(1), SimTime::ZERO).expect("deploys");
    let chan = rt
        .create_channel(ChannelConfig::oob(rt.device_of(id).expect("placed")))
        .expect("channel");
    rt.connect_offcode(chan, id).expect("connects");
    let live = rt.resources().len();
    assert!(rt.teardown(id));
    assert!(rt.resources().len() < live);
    // The instance is gone; further use errors cleanly.
    assert!(matches!(
        rt.invoke(id, &Call::new(Guid(1), "x"), SimTime::ZERO),
        Err(RuntimeError::NoSuchInstance(_))
    ));
    // Re-deployment works after teardown.
    let id2 = rt
        .create_offcode(Guid(1), SimTime::ZERO)
        .expect("redeploys");
    assert_ne!(id, id2);
}

#[test]
fn host_fallback_when_devices_are_full() {
    let mut reg = DeviceRegistry::new();
    let mut nic = DeviceDescriptor::programmable_nic();
    nic.offcode_memory = 100; // too small for any offcode
    reg.install(nic);
    // The static verifier would reject this up front (HV020: the NIC is
    // overcommitted); disable it to reach the load-time fallback path.
    let config = RuntimeConfig {
        verify_deployments: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(reg, config);
    let odf = OdfDocument::new("big", Guid(9)).with_target(hydra::odf::odf::DeviceClassSpec {
        id: hydra::odf::odf::class_ids::NETWORK,
        name: "nic".into(),
        bus: None,
        mac: None,
        vendor: None,
    });
    rt.register_offcode(odf, || {
        Box::new(Echo {
            guid: Guid(9),
            name: "big".into(),
        })
    })
    .expect("registers");
    let id = rt
        .create_offcode(Guid(9), SimTime::ZERO)
        .expect("falls back");
    assert_eq!(rt.device_of(id), Some(DeviceId::HOST));
}

/// §5's motivating scenario: "in multi-user environments, reusing the
/// same Offcode in several applications may substantially complicate the
/// offloading layout design." Two applications import the same Checksum
/// Offcode; the second deployment must reuse the first instance rather
/// than duplicate it.
#[test]
fn two_applications_share_one_offcode_instance() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    let shared_class = hydra::odf::odf::DeviceClassSpec {
        id: hydra::odf::odf::class_ids::NETWORK,
        name: "nic".into(),
        bus: None,
        mac: None,
        vendor: None,
    };
    let shared = OdfDocument::new("shared.Checksum", Guid(100)).with_target(shared_class.clone());
    let app_a = OdfDocument::new("app.A", Guid(1))
        .with_target(shared_class.clone())
        .with_import(hydra::odf::odf::Import {
            file: String::new(),
            bind_name: "shared.Checksum".into(),
            guid: Guid(100),
            constraint: hydra::odf::odf::ConstraintKind::Pull,
            priority: 0,
        });
    let app_b = OdfDocument::new("app.B", Guid(2))
        .with_target(shared_class)
        .with_import(hydra::odf::odf::Import {
            file: String::new(),
            bind_name: "shared.Checksum".into(),
            guid: Guid(100),
            constraint: hydra::odf::odf::ConstraintKind::Link,
            priority: 0,
        });
    for (odf, guid, name) in [
        (shared, Guid(100), "shared.Checksum"),
        (app_a, Guid(1), "app.A"),
        (app_b, Guid(2), "app.B"),
    ] {
        let name = name.to_owned();
        rt.register_offcode(odf, move || {
            Box::new(Echo {
                guid,
                name: name.clone(),
            })
        })
        .expect("fresh GUIDs");
    }
    let a = rt
        .create_offcode(Guid(1), SimTime::ZERO)
        .expect("app A deploys");
    let shared_after_a = rt.get_offcode(Guid(100)).expect("shared deployed");
    let b = rt
        .create_offcode(Guid(2), SimTime::ZERO)
        .expect("app B deploys");
    let shared_after_b = rt.get_offcode(Guid(100)).expect("still deployed");
    // One shared instance, not two.
    assert_eq!(shared_after_a, shared_after_b);
    assert_eq!(rt.deployments().len(), 3);
    assert_ne!(a, b);
    // A's Pull held: app A sits with the shared instance.
    assert_eq!(rt.device_of(a), rt.device_of(shared_after_a));
}

#[derive(Debug)]
struct StatefulCounter {
    count: u64,
}

impl Offcode for StatefulCounter {
    fn guid(&self) -> Guid {
        Guid(0xC0DE)
    }
    fn bind_name(&self) -> &'static str {
        "test.Counter"
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        match call.operation.as_str() {
            "incr" => {
                self.count += 1;
                Ok(Value::U64(self.count))
            }
            other => Err(RuntimeError::UnknownOperation(other.to_owned())),
        }
    }
    fn snapshot(&self) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(&self.count.to_le_bytes()))
    }
    fn restore(&mut self, state: Bytes) -> Result<(), RuntimeError> {
        let raw: [u8; 8] = state[..]
            .try_into()
            .map_err(|_| RuntimeError::Rejected("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(raw);
        Ok(())
    }
}

/// Migration with state: the FarGo-heritage relocation (§7) carried over
/// the snapshot/restore hooks.
#[test]
fn migration_preserves_offcode_state() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    let odf = OdfDocument::new("test.Counter", Guid(0xC0DE))
        .with_target(hydra::odf::odf::DeviceClassSpec {
            id: hydra::odf::odf::class_ids::NETWORK,
            name: "nic".into(),
            bus: None,
            mac: None,
            vendor: None,
        })
        .with_target(hydra::odf::odf::DeviceClassSpec {
            id: hydra::odf::odf::class_ids::GPU,
            name: "gpu".into(),
            bus: None,
            mac: None,
            vendor: None,
        });
    rt.register_offcode(odf, || Box::new(StatefulCounter { count: 0 }))
        .expect("registers");
    let id = rt
        .create_offcode(Guid(0xC0DE), SimTime::ZERO)
        .expect("deploys");
    assert_eq!(rt.device_of(id), Some(DeviceId(1)), "starts on the NIC");
    let incr = Call::new(Guid(0xC0DE), "incr");
    for _ in 0..5 {
        rt.invoke(id, &incr, SimTime::ZERO).expect("counts");
    }
    // Migrate NIC -> GPU.
    let id2 = rt
        .migrate(id, DeviceId(3), SimTime::from_millis(1))
        .expect("gpu is a compatible target");
    assert_eq!(rt.device_of(id2), Some(DeviceId(3)));
    assert!(
        matches!(
            rt.invoke(id, &incr, SimTime::from_millis(1)),
            Err(RuntimeError::NoSuchInstance(_))
        ),
        "old instance is gone"
    );
    // State survived: the next increment continues from 5.
    assert_eq!(
        rt.invoke(id2, &incr, SimTime::from_millis(1))
            .expect("counts"),
        Value::U64(6)
    );
}

#[test]
fn migration_to_incompatible_device_is_rejected() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    let odf = OdfDocument::new("test.Counter", Guid(0xC0DE)).with_target(
        hydra::odf::odf::DeviceClassSpec {
            id: hydra::odf::odf::class_ids::NETWORK,
            name: "nic".into(),
            bus: None,
            mac: None,
            vendor: None,
        },
    );
    rt.register_offcode(odf, || Box::new(StatefulCounter { count: 0 }))
        .expect("registers");
    let id = rt
        .create_offcode(Guid(0xC0DE), SimTime::ZERO)
        .expect("deploys");
    // The smart disk is not in the ODF's target classes.
    assert!(matches!(
        rt.migrate(id, DeviceId(2), SimTime::ZERO),
        Err(RuntimeError::Migrate(
            hydra::core::error::MigrateError::IncompatibleTarget { .. }
        ))
    ));
    // Still deployed and functional at the original site.
    assert_eq!(rt.device_of(id), Some(DeviceId(1)));
}

#[test]
fn non_migratable_offcodes_stay_put() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.register_offcode(OdfDocument::new("echo", Guid(1)), || {
        Box::new(Echo {
            guid: Guid(1),
            name: "echo".into(),
        })
    })
    .expect("registers");
    let id = rt.create_offcode(Guid(1), SimTime::ZERO).expect("deploys");
    assert!(matches!(
        rt.migrate(id, DeviceId(1), SimTime::ZERO),
        Err(RuntimeError::Migrate(
            hydra::core::error::MigrateError::NotMigratable { .. }
        ))
    ));
    assert!(rt.device_of(id).is_some(), "untouched on refusal");
}

#[test]
fn channel_to_wrong_device_is_rejected() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.register_offcode(
        OdfDocument::new("echo", Guid(1)).with_target(hydra::odf::odf::DeviceClassSpec {
            id: hydra::odf::odf::class_ids::NETWORK,
            name: "nic".into(),
            bus: None,
            mac: None,
            vendor: None,
        }),
        || {
            Box::new(Echo {
                guid: Guid(1),
                name: "echo".into(),
            })
        },
    )
    .expect("registers");
    let id = rt
        .create_offcode(Guid(1), SimTime::ZERO)
        .expect("deploys to nic");
    // A channel whose far endpoint is the GPU cannot connect a NIC Offcode.
    let chan = rt
        .create_channel(ChannelConfig::figure3(DeviceId(3)))
        .expect("channel");
    assert!(matches!(
        rt.connect_offcode(chan, id),
        Err(RuntimeError::Rejected(_))
    ));
}

/// Figure 3's `GetOffcode(rt, "hydra.ChannelExecutive", ...)` pattern:
/// runtime services are reachable as pseudo-Offcodes by bind name.
#[test]
fn pseudo_offcodes_are_reachable_by_name() {
    let mut rt = Runtime::new(machine(), RuntimeConfig::default());
    rt.install_pseudo_offcodes(SimTime::ZERO).expect("installs");
    let heap_guid = rt.lookup_bind_name("hydra.Heap").expect("registered");
    let heap = rt.get_offcode(heap_guid).expect("deployed");
    // Allocate 64 bytes through the pseudo-Offcode.
    let alloc = Call::new(heap_guid, "alloc").with_arg(Value::U64(64));
    let Value::U64(addr) = rt.invoke(heap, &alloc, SimTime::ZERO).expect("allocates") else {
        panic!("alloc returns an address");
    };
    assert!(addr > 0);
    let rt_guid = rt.lookup_bind_name("hydra.Runtime").expect("registered");
    let info = rt.get_offcode(rt_guid).expect("deployed");
    let version = rt
        .invoke(info, &Call::new(rt_guid, "version"), SimTime::ZERO)
        .expect("responds");
    assert!(matches!(version, Value::Str(s) if s.contains("hydra")));
}
