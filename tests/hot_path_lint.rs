//! Source-level regression lint: no `HashMap<Guid, …>` on hot paths.
//!
//! GUID-keyed `HashMap`s hash a `u64` on every lookup and iterate in
//! nondeterministic order — both properties this codebase has had to
//! engineer out of the send/recv/dispatch paths (dense-id `Vec` tables
//! in the channel executive, `BTreeMap`s where ordered iteration leaks
//! into reports). This lint pins the status quo: the only permitted
//! `HashMap<Guid` uses are the runtime's *control-plane* tables (the
//! Offcode depot and the deployed-instance index, touched per
//! deployment, not per message) and the layout builder (runs once per
//! solve). Adding one anywhere else — in particular in `channel.rs`,
//! `call.rs`, or any per-message module — fails this test and should be
//! a dense index or `BTreeMap` instead.

use std::fs;
use std::path::{Path, PathBuf};

/// Files allowed to hold `HashMap<Guid` — control-plane only.
const ALLOWLIST: &[&str] = &[
    "crates/hydra-core/src/runtime.rs",
    "crates/hydra-core/src/layout.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn guid_keyed_hashmaps_stay_off_the_hot_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    assert!(sources.len() > 50, "the crate tree was scanned");

    let mut violations = Vec::new();
    for path in sources {
        let rel = path
            .strip_prefix(root)
            .expect("source under workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path).expect("source file is readable");
        for (i, line) in text.lines().enumerate() {
            if line.contains("HashMap<Guid") && !ALLOWLIST.contains(&rel.as_str()) {
                violations.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "GUID-keyed HashMaps on non-allowlisted paths (use a dense index \
         or BTreeMap, or extend the allowlist with a control-plane \
         justification):\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_allowlist_is_not_stale() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in ALLOWLIST {
        let text = fs::read_to_string(root.join(rel)).expect("allowlisted file exists");
        assert!(
            text.contains("HashMap<Guid"),
            "{rel} no longer uses HashMap<Guid — drop it from the allowlist"
        );
    }
}
