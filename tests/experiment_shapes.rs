//! Integration: the paper's qualitative claims, asserted as invariants of
//! the full experiment harness. These are the "shape" checks of DESIGN.md
//! §4 — who wins, by roughly what factor, where crossovers fall.

use hydra::sim::time::SimDuration;
use hydra::tivo::client::ClientKind;
use hydra::tivo::experiments::{
    fig1, fig10_tab3, fig9_tab2, ilp_vs_greedy, tab4_client, SuiteConfig,
};
use hydra::tivo::server::ServerKind;

fn cfg() -> SuiteConfig {
    SuiteConfig {
        duration: SimDuration::from_secs(20),
        seed: 42,
    }
}

#[test]
fn figure_1_shape() {
    let f = fig1();
    // Ratio decreasing with size; receive above transmit everywhere;
    // small packets saturate the CPU.
    for w in f.receive.windows(2) {
        assert!(w[1].ghz_per_gbps < w[0].ghz_per_gbps);
    }
    for (t, r) in f.transmit.iter().zip(&f.receive) {
        assert!(r.ghz_per_gbps > t.ghz_per_gbps);
    }
    assert_eq!(f.receive[0].cpu_utilization, 1.0);
    // At 1 kB (the TiVoPC packet size) the host burns on the order of a
    // GHz per Gbps on receive — the paper's motivation for offload.
    let kb = f
        .receive
        .iter()
        .find(|p| p.packet_bytes == 1024)
        .expect("1 kB point in sweep");
    assert!(kb.ghz_per_gbps > 0.5);
}

#[test]
fn table_2_and_figure_9_shape() {
    let r = fig9_tab2(&cfg());
    let stat = |kind: ServerKind| {
        r.runs
            .iter()
            .find(|x| x.kind == kind)
            .expect("scenario present")
            .jitter_ms
            .summary()
    };
    let simple = stat(ServerKind::Simple);
    let sendfile = stat(ServerKind::Sendfile);
    let offloaded = stat(ServerKind::Offloaded);
    // Medians land in the paper's millisecond bins: ~7 / ~6 / 5.
    assert!((simple.median - 7.0).abs() < 0.7, "{}", simple.median);
    assert!((sendfile.median - 6.0).abs() < 0.7, "{}", sendfile.median);
    assert!(
        (offloaded.median - 5.0).abs() < 0.05,
        "{}",
        offloaded.median
    );
    // Offloaded jitter is an order of magnitude tighter.
    assert!(offloaded.std_dev * 10.0 < simple.std_dev);
    assert!(offloaded.std_dev * 10.0 < sendfile.std_dev);
    // Figure 9's CDF: virtually all offloaded gaps inside 4.9–5.1 ms.
    let h = r
        .runs
        .iter()
        .find(|x| x.kind == ServerKind::Offloaded)
        .expect("offloaded run")
        .jitter_ms
        .histogram(4.9, 5.1, 2);
    assert!(h.underflow() + h.overflow() < h.total() / 100);
}

#[test]
fn table_3_and_figure_10_shape() {
    let r = fig10_tab3(&cfg());
    let util = |kind: ServerKind| {
        r.runs
            .iter()
            .find(|x| x.kind == kind)
            .expect("scenario present")
            .cpu_util
            .summary()
            .mean
    };
    let idle = util(ServerKind::Idle);
    // Ordering: simple > sendfile > offloaded == idle.
    assert!(util(ServerKind::Simple) > util(ServerKind::Sendfile));
    assert!(util(ServerKind::Sendfile) > idle + 0.01);
    assert!((util(ServerKind::Offloaded) - idle).abs() < 0.004);
    // Magnitudes near the paper's: idle ~2.9%, simple ~7.5%.
    assert!((idle - 0.029).abs() < 0.012, "idle {idle}");
    assert!((util(ServerKind::Simple) - 0.075).abs() < 0.02);
    // L2: simple a few percent above idle; offloaded at idle.
    let n_simple = r.normalized_l2(ServerKind::Simple);
    assert!((1.02..1.2).contains(&n_simple), "simple L2 {n_simple}");
    assert!((r.normalized_l2(ServerKind::Offloaded) - 1.0).abs() < 0.02);
    assert!(r.normalized_l2(ServerKind::Sendfile) < n_simple);
}

#[test]
fn table_4_shape() {
    let r = tab4_client(&cfg());
    let util = |kind: ClientKind| {
        r.runs
            .iter()
            .find(|x| x.kind == kind)
            .expect("scenario present")
            .cpu_util
            .summary()
            .mean
    };
    let idle = util(ClientKind::Idle);
    assert!(util(ClientKind::UserSpace) > idle + 0.02);
    assert!((util(ClientKind::Offloaded) - idle).abs() < 0.004);
    // "the non-offloaded client generates 12% more misses"
    let n_user = r.normalized_l2(ClientKind::UserSpace);
    assert!((1.05..1.25).contains(&n_user), "user-space L2 {n_user}");
    assert!((r.normalized_l2(ClientKind::Offloaded) - 1.0).abs() < 0.02);
}

#[test]
fn section_5_shape() {
    let r = ilp_vs_greedy(42, 20);
    for c in &r.cases {
        assert!(c.ilp_value >= c.greedy_value - 1e-9, "ILP never worse");
    }
    assert!(
        r.improvement_fraction() > 0.1,
        "complex layouts where greedy is suboptimal must exist"
    );
}
