//! Property tests for the cost-adaptive provider selection: online
//! auctions must be byte-reproducible, bracketed by the static
//! providers, and predictable when the profile is cold.

use bytes::Bytes;
use hydra::core::channel::{
    AdaptivePolicy, ChannelConfig, ChannelProvider, KernelCopyProvider, ZeroCopyDmaProvider,
};
use hydra::core::device::DeviceId;
use hydra::core::providers::{
    install_cost_adaptive, install_extras, DoorbellBatchProvider, PioProvider,
};
use hydra::core::ChannelExecutive;
use hydra::sim::fault::{FaultKind, FaultPlan};
use hydra::sim::time::{SimDuration, SimTime};
use hydra_tivo::demo::demo_deployment;
use proptest::prelude::*;

/// Message sizes the generators draw from: spans all three regimes.
const SIZES: &[usize] = &[64, 256, 1024, 4096, 16_384, 65_536];

/// One generated traffic step: a size index and the gap to the next
/// send, in nanoseconds.
type Step = (usize, u64);

/// Replays `traffic` (under `plan`, if any) on a fresh demo runtime's
/// adaptive channel and returns a full transcript: per-send outcomes,
/// the final provider, the switch count, and the complete metrics
/// snapshot JSON (which embeds the channel cost profiles).
fn adaptive_transcript(traffic: &[Step], plan: Option<&FaultPlan>) -> String {
    let mut rt = demo_deployment();
    install_extras(rt.executive_mut());
    if let Some(p) = plan {
        rt.install_fault_plan(p);
    }
    let chan = rt
        .create_channel_adaptive(
            ChannelConfig::figure3(DeviceId(1)),
            AdaptivePolicy::default(),
        )
        .expect("adaptive channel on the NIC");
    let ep = {
        let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
        ch.connect_endpoint().expect("fresh channel has room")
    };

    let mut transcript = String::new();
    let mut now = SimTime::ZERO;
    for &(size_idx, gap_ns) in traffic {
        let size = SIZES[size_idx % SIZES.len()];
        // Health pulses propagate ring wedging from the fault plan.
        if plan.is_some() {
            let _ = rt.pulse(now);
        }
        let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
        match ch.send(now, Bytes::from(vec![0x3Cu8; size])) {
            Ok(at) => transcript.push_str(&format!("ok {size} {}\n", at.as_nanos())),
            Err(e) => {
                transcript.push_str(&format!("err {size} {e:?}\n"));
                // A wedged ring stays full until delivered messages
                // drain; pull what is already deliverable.
                let drained = ch.recv_batch(now, ep, usize::MAX).len();
                transcript.push_str(&format!("drained {drained}\n"));
            }
        }
        now = now.saturating_add(SimDuration::from_nanos(gap_ns));
    }
    let ch = rt.executive_mut().get_mut(chan).expect("channel is live");
    transcript.push_str(&format!(
        "final {} switches {}\n",
        ch.provider_name(),
        ch.provider_switches()
    ));
    transcript.push_str(&rt.metrics_snapshot().to_json());
    transcript
}

/// The unloaded-latency argmin over the adaptive candidate set, with
/// the registration-order tie-break — what a cold bucket must pick.
fn static_default_for(cfg: &ChannelConfig, bytes: usize) -> &'static str {
    let quotes: Vec<(&'static str, u64)> = vec![
        (
            "zero-copy-dma",
            ZeroCopyDmaProvider.cost(cfg).latency(bytes).as_nanos(),
        ),
        (
            "kernel-copy",
            KernelCopyProvider.cost(cfg).latency(bytes).as_nanos(),
        ),
        (
            "pio",
            PioProvider::coherent_interconnect()
                .cost(cfg)
                .latency(bytes)
                .as_nanos(),
        ),
        (
            "doorbell-batch",
            DoorbellBatchProvider.cost(cfg).latency(bytes).as_nanos(),
        ),
    ];
    let best = quotes.iter().map(|&(_, l)| l).min().unwrap();
    quotes.iter().find(|&&(_, l)| l == best).unwrap().0
}

/// Builds the case's fault plan: none, a firmware stall, or a wedged
/// ring on the NIC, from three scalar draws (the vendored proptest shim
/// has no tuple strategies).
fn fault_plan_for(kind: usize, at_ns: u64, magnitude: u64) -> Option<FaultPlan> {
    let at = SimTime::from_nanos(at_ns);
    match kind {
        0 => None,
        1 => Some(FaultPlan::new(7).with_event(
            at,
            1,
            FaultKind::Stall {
                duration: SimDuration::from_micros(1 + magnitude % 50),
            },
        )),
        _ => Some(FaultPlan::new(7).with_event(
            at,
            1,
            FaultKind::RingExhaustion {
                slots: (1 + magnitude % 31) as usize,
            },
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two identical runs — same traffic, same fault plan — produce a
    /// byte-identical transcript, including the full metrics-snapshot
    /// JSON with its embedded channel cost profiles.
    #[test]
    fn online_selection_is_byte_reproducible(
        size_picks in proptest::collection::vec(0usize..SIZES.len(), 1..48),
        gaps in proptest::collection::vec(0u64..5_000, 48),
        fault_kind in 0usize..3,
        fault_at in 1u64..200_000,
        fault_magnitude in 0u64..64,
    ) {
        let traffic: Vec<Step> = size_picks
            .iter()
            .zip(&gaps)
            .map(|(&s, &g)| (s, g))
            .collect();
        let plan = fault_plan_for(fault_kind, fault_at, fault_magnitude);
        let a = adaptive_transcript(&traffic, plan.as_ref());
        let b = adaptive_transcript(&traffic, plan.as_ref());
        prop_assert_eq!(a, b);
    }

    /// A burst on the adaptive channel never takes longer (in sim time)
    /// than the same burst forced onto the worst static provider.
    #[test]
    fn adaptive_cost_is_bracketed_by_the_static_providers(
        size_idx in 0usize..SIZES.len(),
        count in 1usize..48,
    ) {
        let size = SIZES[size_idx];
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let burst = |forced: Option<&str>| -> u64 {
            let mut e = ChannelExecutive::new();
            install_cost_adaptive(&mut e);
            let id = match forced {
                Some(p) => e.create_channel_forced(cfg, p).unwrap(),
                None => e.create_channel_adaptive(cfg, AdaptivePolicy::default()).unwrap(),
            };
            let ch = e.get_mut(id).unwrap();
            ch.connect_endpoint().unwrap();
            let mut last = SimTime::ZERO;
            for _ in 0..count {
                last = ch.send(SimTime::ZERO, Bytes::from(vec![0u8; size])).unwrap();
            }
            last.as_nanos()
        };
        let adaptive = burst(None);
        let worst = ["pio", "doorbell-batch", "zero-copy-dma"]
            .iter()
            .map(|p| burst(Some(p)))
            .max()
            .unwrap();
        prop_assert!(
            adaptive <= worst,
            "{count} x {size} B: adaptive {adaptive} ns > worst static {worst} ns"
        );
    }

    /// A cold profile (fewer samples than the policy floor) must fall
    /// back to the static argmin of the unloaded latency for that
    /// bucket — no oscillation, at most the one initial re-selection.
    #[test]
    fn cold_bucket_uses_the_static_default(size_idx in 0usize..SIZES.len()) {
        let size = SIZES[size_idx];
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut e = ChannelExecutive::new();
        install_cost_adaptive(&mut e);
        let id = e.create_channel_adaptive(cfg, AdaptivePolicy::default()).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from(vec![0u8; size])).unwrap();
        prop_assert_eq!(ch.provider_name(), static_default_for(&cfg, size));
        prop_assert!(ch.provider_switches() <= 1);
    }
}

/// An adaptive channel that never carried a message still reports a
/// well-formed (empty-profile) entry in the metrics snapshot.
#[test]
fn cold_adaptive_channel_appears_in_the_snapshot() {
    let mut rt = demo_deployment();
    install_extras(rt.executive_mut());
    rt.create_channel_adaptive(
        ChannelConfig::figure3(DeviceId(1)),
        AdaptivePolicy::default(),
    )
    .expect("adaptive channel on the NIC");
    let snap = rt.metrics_snapshot();
    let entry = snap
        .channels
        .iter()
        .find(|c| c.adaptive)
        .expect("snapshot lists the adaptive channel");
    assert_eq!(entry.messages, 0);
    assert_eq!(entry.switches, 0);
    assert!(entry.buckets.is_empty());
    assert!(snap.to_json().contains("\"adaptive\":true"));
}
