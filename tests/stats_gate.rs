//! The telemetry-timeline regression gate (tier 1).
//!
//! `budgets/demo_stats.json` is the committed baseline for the stats
//! scenario's counters — message traffic on both channels plus the
//! busy-time totals every utilization window is carved from. Message
//! counts are exact (tolerance 0); busy-time counters carry ~10%
//! tolerance so device timing models can be re-tuned without touching
//! this file. The rendered timeline itself is additionally byte-diffed
//! here and by the CI stats-gate.

use hydra::devices::{DEVICE_BUSY_NS, LINK_BUSY_NS};
use hydra::obs::{check_budget, parse_budget};
use hydra::tivo::stats::{run_stats_demo, stats_demo_plan};

const BASELINE: &str = include_str!("../budgets/demo_stats.json");

#[test]
fn stats_scenario_stays_within_committed_budget() {
    let spec = parse_budget(BASELINE).expect("committed baseline parses");
    assert_eq!(spec.name, "demo-stats");
    let (snap, _) = run_stats_demo(None);
    let violations = check_budget(&snap, &spec);
    assert!(
        violations.is_empty(),
        "budget violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn stats_report_is_byte_identical_across_runs() {
    let (_, a) = run_stats_demo(None);
    let (_, b) = run_stats_demo(None);
    assert_eq!(a, b, "clean timeline must be byte-stable");
    let plan = stats_demo_plan();
    let (_, fa) = run_stats_demo(Some(&plan));
    let (_, fb) = run_stats_demo(Some(&plan));
    assert_eq!(fa, fb, "faulted timeline must be byte-stable");
}

#[test]
fn every_window_reports_utilization_and_every_channel_a_profile() {
    let (snap, json) = run_stats_demo(None);
    assert_eq!(snap.windows.len(), 10, "ten 1 ms windows over 10 ms");
    for (i, w) in snap.windows.iter().enumerate() {
        assert_eq!(w.index as usize, i);
        if i > 0 {
            assert_eq!(
                w.start_nanos,
                snap.windows[i - 1].end_nanos,
                "windows are contiguous"
            );
        }
        assert!(
            w.utilization_permille(DEVICE_BUSY_NS, "host").unwrap_or(0) > 0,
            "window {i}: the periodic host load registers"
        );
    }
    // The wire-occupancy counter reconciles: window deltas never exceed
    // the end-of-run total (the remainder landed after the last tick).
    let summed: u64 = snap
        .windows
        .iter()
        .map(|w| w.delta(LINK_BUSY_NS, "device-2"))
        .sum();
    let total = snap.counter(LINK_BUSY_NS, "device-2").unwrap_or(0);
    assert!(summed <= total && total > 0, "{summed} <= {total}");
    // Both channels render a cost profile with at least one size bucket.
    assert!(json.contains("\"provider\": \"zero-copy-dma\""));
    assert!(json.contains("\"provider\": \"kernel-copy\""));
}
