//! The recovery solver-scaling gate (tier 1).
//!
//! Incremental repair exists so a single-device failure does not pay a
//! full from-scratch ILP. This gate pins that property on the committed
//! fault-demo scenario two ways:
//!
//! 1. **Strict scaling**: on the demo's recovery graph, the repair
//!    search explores strictly fewer branch-and-bound nodes than a
//!    from-scratch exact solve of the same post-failure problem — while
//!    landing on an objective-equal layout.
//! 2. **Committed budget**: `budgets/demo_recovery.json` freezes the
//!    demo's recovery counters (`recover.repaired_nodes`,
//!    `solver.nodes_explored{repair}`, …) with tolerance 0, so a change
//!    that silently degrades repair into a full re-solve fails CI
//!    instead of drifting unnoticed.

use hydra::core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra::core::layout::{GraphDelta, LayoutGraph, Objective};
use hydra::obs::{check_budget, parse_budget};
use hydra::tivo::faults::{fault_demo_odfs, fault_demo_plan, run_fault_demo};

const BASELINE: &str = include_str!("../budgets/demo_recovery.json");

fn demo_registry() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::smart_disk()); // dev2
    reg.install(DeviceDescriptor::gpu()); // dev3
    reg
}

/// The demo's recovery re-layout must search strictly less than a
/// from-scratch solve of the identical post-failure problem, at equal
/// objective value. The repair path proves its spliced candidate
/// optimal against the LP-relaxation bound, so the common single-device
/// failure pays zero branch-and-bound nodes.
#[test]
fn recovery_repair_searches_strictly_less_than_scratch() {
    let reg = demo_registry();
    let mut g = LayoutGraph::from_odfs(&fault_demo_odfs(), &reg).expect("demo graph builds");
    let obj = Objective::MaximizeOffloading;
    let prev = g.resolve_ilp(&obj).expect("pre-fault layout");
    g.mask_device(DeviceId(1)).expect("NIC maskable");

    let (repaired, repair_stats) = g
        .repair(&prev, &GraphDelta::MaskDevice(DeviceId(1)), &obj)
        .expect("repair succeeds");
    let (scratch, scratch_stats) = g
        .resolve_ilp_with_stats(&obj)
        .expect("scratch solve succeeds");

    assert_eq!(
        repaired.offloaded_count(),
        scratch.offloaded_count(),
        "repair must be objective-equal to scratch"
    );
    assert!(
        repair_stats.nodes < scratch_stats.nodes,
        "repair explored {} nodes, scratch {} — repair must search strictly less",
        repair_stats.nodes,
        scratch_stats.nodes
    );
    assert_eq!(
        repair_stats.repaired_nodes, 3,
        "the gang/pull pipeline is the dirty component; the archiver stays frozen"
    );
}

/// The demo's recovery counters stay on the committed baseline.
#[test]
fn recovery_counters_stay_within_committed_budget() {
    let spec = parse_budget(BASELINE).expect("committed baseline parses");
    assert_eq!(spec.name, "demo-recovery");
    let (rt, _) = run_fault_demo(&fault_demo_plan());
    let snap = rt.metrics_snapshot();
    let violations = check_budget(&snap, &spec);
    assert!(
        violations.is_empty(),
        "recovery budget violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The gate actually bites: perturbing one baseline entry produces
/// exactly that one violation.
#[test]
fn perturbed_baseline_trips_exactly_one_violation() {
    let mut spec = parse_budget(BASELINE).expect("committed baseline parses");
    let line = spec
        .counters
        .iter_mut()
        .find(|c| c.name == "solver.nodes_explored")
        .expect("baseline pins the repair search size");
    line.expect += 100;
    let (rt, _) = run_fault_demo(&fault_demo_plan());
    let violations = check_budget(&rt.metrics_snapshot(), &spec);
    assert_eq!(
        violations.len(),
        1,
        "exactly the perturbed line must trip: {violations:?}"
    );
    assert_eq!(violations[0].name, "solver.nodes_explored");
}
