//! ILP-vs-greedy parity on small layout graphs (≤ 6 Offcodes).
//!
//! The paper motivates the exact ILP formulation by noting the greedy
//! heuristic "is not always optimal". These tests pin the weaker — but
//! universal — direction: the exact objective is never *worse* than
//! greedy's on any feasible instance, and the branch-and-bound search
//! statistics stay sane.

use hydra::core::device::DeviceId;
use hydra::core::layout::{LayoutGraph, LayoutNode, NodeIdx, Objective};
use hydra::odf::odf::{ConstraintKind, Guid};
use proptest::prelude::*;

const DEVICES: usize = 4; // host + 3 programmable devices

fn node(guid: u64, compat_bits: u8, price: f64) -> LayoutNode {
    // Bit k of `compat_bits` enables device k+1; the host is always on.
    let mut compat = vec![true];
    for k in 0..DEVICES - 1 {
        compat.push(compat_bits >> k & 1 == 1);
    }
    LayoutNode {
        guid: Guid(guid),
        bind_name: format!("n{guid}"),
        compat,
        price,
    }
}

/// Builds a graph of `n` nodes with the given compat masks and a chain of
/// constraint edges `i -> i+1`.
fn chain_graph(masks: &[u8], constraints: &[ConstraintKind]) -> LayoutGraph {
    let mut g = LayoutGraph::new();
    for (i, &m) in masks.iter().enumerate() {
        g.add_node(node(i as u64 + 1, m, 1.0 + i as f64));
    }
    for (i, &c) in constraints
        .iter()
        .enumerate()
        .take(masks.len().saturating_sub(1))
    {
        g.add_edge(NodeIdx(i), NodeIdx(i + 1), c);
    }
    g
}

fn constraint_from(idx: u8) -> ConstraintKind {
    match idx % 4 {
        0 => ConstraintKind::Link,
        1 => ConstraintKind::Pull,
        2 => ConstraintKind::Gang,
        _ => ConstraintKind::AsymGang,
    }
}

fn offloaded(placement: &[DeviceId]) -> usize {
    placement.iter().filter(|d| !d.is_host()).count()
}

#[test]
fn exact_beats_or_ties_greedy_on_fixed_instances() {
    let cases: Vec<(Vec<u8>, Vec<ConstraintKind>)> = vec![
        // Single node, one compatible device.
        (vec![0b001], vec![]),
        // Pull chain that must collapse onto one device.
        (vec![0b010, 0b010], vec![ConstraintKind::Pull]),
        // Gang pair with disjoint device options: both offloadable.
        (vec![0b001, 0b100], vec![ConstraintKind::Gang]),
        // A node with no devices forces its Gang peer onto the host; the
        // third node stays independent.
        (
            vec![0b000, 0b011, 0b100],
            vec![ConstraintKind::Gang, ConstraintKind::Link],
        ),
        // AsymGang chain across heterogeneous devices.
        (
            vec![0b001, 0b010, 0b100, 0b111],
            vec![
                ConstraintKind::AsymGang,
                ConstraintKind::AsymGang,
                ConstraintKind::Pull,
            ],
        ),
        // Six offcodes, mixed constraints.
        (
            vec![0b001, 0b001, 0b010, 0b110, 0b100, 0b111],
            vec![
                ConstraintKind::Gang,
                ConstraintKind::Link,
                ConstraintKind::Pull,
                ConstraintKind::AsymGang,
                ConstraintKind::Link,
            ],
        ),
    ];
    for (masks, constraints) in cases {
        let g = chain_graph(&masks, &constraints);
        let objective = Objective::MaximizeOffloading;
        let (exact, stats) = g
            .resolve_ilp_with_stats(&objective)
            .expect("host-everything is always feasible");
        g.check(&exact).expect("exact placement is feasible");
        // A provably host-only instance is answered by the verifier's
        // narrowing pre-check without any search at all.
        assert!(
            stats.presolved || stats.nodes >= 1,
            "at least the root LP node is explored"
        );
        assert!(
            stats.pruned <= stats.nodes,
            "cannot prune more than explored"
        );

        let greedy = g.resolve_greedy(&objective);
        if g.check(&greedy).is_ok() {
            assert!(
                offloaded(&exact.0) >= offloaded(&greedy.0),
                "ILP offloaded {} < greedy {} on masks {masks:?}",
                offloaded(&exact.0),
                offloaded(&greedy.0),
            );
        }
    }
}

#[test]
fn bus_usage_objective_parity() {
    // Two devices with tight capacity; prices 1..=4. Greedy packs by
    // descending price and can strand capacity the ILP uses fully.
    let mut g = LayoutGraph::new();
    for i in 0..4u64 {
        g.add_node(node(i + 1, 0b011, (i + 1) as f64));
    }
    let objective = Objective::MaximizeBusUsage {
        capacities: vec![0.0, 4.0, 3.0, 0.0],
    };
    let (exact, stats) = g.resolve_ilp_with_stats(&objective).unwrap();
    g.check(&exact).expect("exact placement is feasible");
    assert!(stats.nodes >= 1, "offloadable instance must search");
    assert!(!stats.presolved);
    let greedy = g.resolve_greedy(&objective);
    if g.check(&greedy).is_ok() {
        assert!(g.bus_value(&exact) >= g.bus_value(&greedy) - 1e-9);
    }
    // Capacity 4 + 3 admits price mass 7 of the available 1+2+3+4.
    assert!(g.bus_value(&exact) >= 7.0 - 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random chains of up to 6 Offcodes: the exact solver is feasible,
    /// its statistics are sane, and it never offloads fewer Offcodes than
    /// the greedy heuristic (when greedy lands on a feasible placement).
    #[test]
    fn exact_never_worse_than_greedy(
        masks in proptest::collection::vec(0u8..8, 1..7),
        ckinds in proptest::collection::vec(0u8..4, 6),
    ) {
        let constraints: Vec<ConstraintKind> =
            ckinds.iter().map(|&c| constraint_from(c)).collect();
        let g = chain_graph(&masks, &constraints);
        let objective = Objective::MaximizeOffloading;
        let (exact, stats) = g
            .resolve_ilp_with_stats(&objective)
            .expect("host-everything satisfies every chain instance");
        prop_assert!(g.check(&exact).is_ok());
        prop_assert!(stats.presolved || stats.nodes >= 1);
        prop_assert!(stats.pruned <= stats.nodes);
        if stats.presolved {
            // The pre-check may only skip the search when the answer is
            // all-host, and that answer must be optimal.
            prop_assert!(offloaded(&exact.0) == 0);
            prop_assert!(stats.nodes == 0);
        }

        let greedy = g.resolve_greedy(&objective);
        if g.check(&greedy).is_ok() {
            prop_assert!(
                offloaded(&exact.0) >= offloaded(&greedy.0),
                "ILP {} vs greedy {} on masks {:?}",
                offloaded(&exact.0),
                offloaded(&greedy.0),
                masks
            );
        }
    }
}
