//! Integration: the media path across crates — encode, packetize, carry
//! over the simulated network, store on the NAS, read back, reassemble,
//! decode — with bit-exact and quality assertions.

use bytes::Bytes;
use hydra::media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
use hydra::media::frame::{psnr, RawFrame, SyntheticVideo};
use hydra::media::stream::{Chunker, Reassembler};
use hydra::net::link::LinkSpec;
use hydra::net::nfs::{NasServer, NfsRequest, NfsResponse};
use hydra::net::packet::{MacAddr, Packet, Port, Protocol};
use hydra::net::switch::{ForwardOutcome, Switch};
use hydra::sim::time::SimTime;

fn movie(n: u64) -> (Vec<RawFrame>, Vec<hydra::media::codec::EncodedFrame>) {
    let video = SyntheticVideo::new(48, 32);
    let frames: Vec<_> = (0..n).map(|i| video.frame(i)).collect();
    let encoded = Encoder::new(CodecConfig {
        quantizer: 1,
        gop: GopConfig::ibbp(),
    })
    .encode_sequence(&frames);
    (frames, encoded)
}

#[test]
fn stream_survives_the_switch() {
    let (frames, encoded) = movie(9);
    let mut chunker = Chunker::new(256);
    let mut switch = Switch::new(LinkSpec::gigabit(), 256);
    let server = switch.add_port(MacAddr(1));
    let _client = switch.add_port(MacAddr(2));
    let mut reassembler = Reassembler::new();
    let mut decoder = Decoder::new();
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    for f in &encoded {
        for chunk in chunker.chunk_frame(f) {
            let pkt = Packet::new(
                MacAddr(1),
                Port(5000),
                MacAddr(2),
                Port(6000),
                Protocol::Udp,
                chunk.encode(),
            );
            match switch.forward(now, server, &pkt) {
                ForwardOutcome::Deliver { arrival, .. } => {
                    now = arrival;
                    let c = hydra::media::stream::Chunk::decode(pkt.payload.clone())
                        .expect("chunk survives");
                    if let Some(frame) = reassembler.push(c).expect("reassembles") {
                        out.extend(decoder.push(&frame).expect("decodes"));
                    }
                }
                other => panic!("switch refused: {other:?}"),
            }
        }
    }
    out.extend(decoder.flush());
    out.sort_by_key(|(i, _)| *i);
    let decoded: Vec<RawFrame> = out.into_iter().map(|(_, f)| f).collect();
    assert_eq!(decoded, frames, "q=1 end-to-end must be lossless");
    assert_eq!(switch.stats().dropped, 0);
}

#[test]
fn recording_on_nas_replays_identically() {
    let (_, encoded) = movie(6);
    // Serialize all frames to one byte stream and store it on the NAS.
    let wire: Vec<u8> = encoded
        .iter()
        .flat_map(|f| hydra::media::stream::FrameWire::encode(f).to_vec())
        .collect();
    let mut nas = NasServer::default();
    let (resp, _) = nas.handle(&NfsRequest::Create {
        path: "/dvr/movie".into(),
    });
    let NfsResponse::Handle(fh) = resp else {
        panic!()
    };
    for (i, block) in wire.chunks(4096).enumerate() {
        let (r, _) = nas.handle(&NfsRequest::Write {
            fh,
            offset: i as u64 * 4096,
            data: Bytes::copy_from_slice(block),
        });
        assert!(matches!(r, NfsResponse::Written(_)));
    }
    // Read it all back and re-parse the frames.
    let mut read_back = Vec::new();
    let mut offset = 0u64;
    loop {
        let (r, _) = nas.handle(&NfsRequest::Read {
            fh,
            offset,
            len: 4096,
        });
        let NfsResponse::Data(d) = r else { panic!() };
        if d.is_empty() {
            break;
        }
        offset += d.len() as u64;
        read_back.extend_from_slice(&d);
    }
    assert_eq!(read_back, wire);
    let mut raw = Bytes::from(read_back);
    let mut replayed = Vec::new();
    while !raw.is_empty() {
        let frame = hydra::media::stream::FrameWire::decode(raw.clone()).expect("parses");
        let consumed = hydra::media::stream::FrameWire::encode(&frame).len();
        raw = raw.slice(consumed..);
        replayed.push(frame);
    }
    assert_eq!(replayed, encoded);
}

#[test]
fn lossy_chain_quality_is_monotone_in_quantizer() {
    let video = SyntheticVideo::new(48, 32);
    let frames: Vec<_> = (0..5).map(|i| video.frame(i)).collect();
    let quality = |q: u16| -> f64 {
        let encoded = Encoder::new(CodecConfig {
            quantizer: q,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&frames);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for f in &encoded {
            out.extend(dec.push(f).expect("decodes"));
        }
        out.extend(dec.flush());
        out.sort_by_key(|(i, _)| *i);
        out.iter()
            .map(|(i, f)| psnr(&frames[*i as usize], f))
            .fold(f64::INFINITY, f64::min)
    };
    let q2 = quality(2);
    let q8 = quality(8);
    let q32 = quality(32);
    assert!(q2 >= q8, "psnr q2 {q2} < q8 {q8}");
    assert!(q8 >= q32, "psnr q8 {q8} < q32 {q32}");
    assert!(q32 > 20.0, "even q32 should be watchable, got {q32}");
}

#[test]
fn packet_loss_drops_frames_but_not_the_pipeline() {
    let (_, encoded) = movie(8);
    let mut chunker = Chunker::new(200);
    let mut reassembler = Reassembler::new();
    let mut decoder = Decoder::new();
    let mut delivered = 0u64;
    let mut lost_frames = 0u64;
    for (i, f) in encoded.iter().enumerate() {
        let chunks = chunker.chunk_frame(f);
        let drop_one = i == 3 && chunks.len() > 1;
        let mut completed = false;
        for (j, c) in chunks.into_iter().enumerate() {
            if drop_one && j == 0 {
                continue; // the network ate it
            }
            if let Some(frame) = reassembler.push(c).expect("reassembly is robust") {
                // A frame referencing a lost anchor may fail to decode;
                // the decoder reports rather than corrupting state.
                match decoder.push(&frame) {
                    Ok(out) => delivered += out.len() as u64,
                    Err(_) => lost_frames += 1,
                }
                completed = true;
            }
        }
        if !completed {
            lost_frames += 1;
        }
    }
    delivered += decoder.flush().len() as u64;
    assert!(lost_frames >= 1, "the dropped chunk must cost a frame");
    assert!(delivered >= 5, "most frames still play, got {delivered}");
    assert_eq!(reassembler.pending(), 1);
    assert_eq!(reassembler.expire_before(u32::MAX), 1);
}
