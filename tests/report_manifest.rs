//! The stale-report failsafe (tier 1): every committed `BENCH_*.json`
//! at the workspace root must be a report `repro` knows how to
//! regenerate (`hydra_bench::BENCHES`) and must have a matching budget
//! baseline under `budgets/`. A bench someone adds without wiring the
//! selector — or a report left behind after a bench is removed — fails
//! here (and in CI's report-manifest job) instead of rotting silently.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use hydra_bench::report::{schema_version, SCHEMA_VERSION};
use hydra_bench::{run_bench, BENCHES};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// `BENCH_*.json` files actually committed at the workspace root. The
/// match is deliberately case-sensitive: it mirrors the shell glob the
/// CI report-manifest job walks.
#[allow(clippy::case_sensitive_file_extension_comparisons)]
fn committed_reports() -> BTreeSet<String> {
    fs::read_dir(workspace_root())
        .expect("workspace root lists")
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect()
}

#[test]
fn every_committed_report_has_a_manifest_row() {
    let manifest: BTreeSet<String> = BENCHES.iter().map(|(_, f)| (*f).to_owned()).collect();
    let committed = committed_reports();
    let orphans: Vec<&String> = committed.difference(&manifest).collect();
    assert!(
        orphans.is_empty(),
        "committed BENCH_*.json without a repro selector (stale?): {orphans:?}"
    );
}

#[test]
fn every_manifest_row_has_its_artifacts_committed() {
    let root = workspace_root();
    for (name, report_file) in BENCHES {
        let report = root.join(report_file);
        assert!(
            report.is_file(),
            "{report_file}: manifest row '{name}' has no committed report \
             (regenerate with `repro -- bench {name} > {report_file}`)"
        );
        let budget = root.join("budgets").join(format!("bench_{name}.json"));
        assert!(
            budget.is_file(),
            "budgets/bench_{name}.json: manifest row '{name}' has no budget baseline"
        );
        let rendered = fs::read_to_string(&report).expect("committed report reads");
        assert_eq!(
            schema_version(&rendered),
            Some(SCHEMA_VERSION),
            "{report_file}: committed report schema is not version {SCHEMA_VERSION}"
        );
    }
}

#[test]
fn every_manifest_row_dispatches_through_run_bench() {
    for (name, _) in BENCHES {
        let json = run_bench(name).unwrap_or_else(|| panic!("run_bench({name:?}) must dispatch"));
        assert_eq!(
            schema_version(&json),
            Some(SCHEMA_VERSION),
            "bench '{name}' renders the shared schema"
        );
    }
    assert_eq!(run_bench("nonexistent"), None);
}
